"""Quickstart: preprocess a graph on the AutoGNN simulator and run inference.

Loads a scaled synthetic stand-in of the ogbn-arxiv dataset, runs the full
hardware preprocessing workflow (edge ordering, data reshaping, unique random
selection, subgraph reindexing), verifies the result against the software
reference pipeline, and feeds the sampled subgraph to a GraphSAGE model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AutoGNNDevice, DEFAULT_HARDWARE
from repro.gnn import EmbeddingTable, InferenceEngine, build_model
from repro.graph import load_dataset
from repro.preprocessing import PreprocessingConfig, preprocess


def main() -> None:
    # 1. Load a graph (a synthetic stand-in of ogbn-arxiv at 1/1000 scale).
    graph = load_dataset("AX")
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"average degree {graph.avg_degree:.1f}")

    # 2. Preprocess on the AutoGNN device model.
    device = AutoGNNDevice(DEFAULT_HARDWARE)
    config = PreprocessingConfig(k=10, num_layers=2, batch_size=64, seed=0)
    accelerated = device.preprocess(graph, config)
    result = accelerated.result
    timing = accelerated.timing

    print("\nAutoGNN preprocessing")
    print(f"  hardware            : {DEFAULT_HARDWARE.key()}")
    for task, cycles in timing.breakdown().items():
        print(f"  {task:<12} cycles : {cycles}")
    print(f"  total latency       : {timing.total_seconds * 1e6:.1f} us @ 300 MHz")
    print(f"  sampled subgraph    : {result.num_sampled_nodes} nodes, "
          f"{result.num_sampled_edges} edges")

    # 3. Verify against the pure-software reference pipeline.
    reference = preprocess(graph, k=10, num_layers=2, batch_size=64, seed=0)
    assert np.array_equal(reference.csc.indptr, result.csc.indptr)
    assert np.array_equal(reference.csc.indices, result.csc.indices)
    print("  CSC conversion matches the software reference")

    # 4. Run GraphSAGE inference on the sampled, reindexed subgraph.
    embeddings = EmbeddingTable.random(graph.num_nodes, dim=64, seed=1)
    model = build_model("graphsage", in_dim=64, hidden_dim=64, num_layers=2)
    engine = InferenceEngine(model)
    inference = engine.run(result.subgraph_csc, embeddings, reindex=result.reindex)

    print("\nGNN inference on the sampled subgraph")
    print(f"  output embeddings   : {inference.outputs.shape}")
    print(f"  modelled GPU latency: {inference.latency_seconds * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
