"""Compare the seven GNN serving systems of the paper on every dataset.

Builds the CPU / GPU / GSamp / FPGA / AutoPre / StatPre / DynPre services and
models one end-to-end inference pass per Table II dataset at full paper scale,
printing latency, speedup over CPU and the preprocessing share — the data
behind Figs. 5 and 18.

Run with:  python examples/end_to_end_comparison.py
"""

from __future__ import annotations

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.graph.datasets import DATASET_ORDER
from repro.system import WorkloadProfile
from repro.system.service import build_services

SYSTEMS = ["CPU", "GPU", "GSamp", "FPGA", "AutoPre", "StatPre", "DynPre"]


def main() -> None:
    services = build_services()
    rows = []
    speedups = {name: [] for name in SYSTEMS}

    for key in DATASET_ORDER:
        workload = WorkloadProfile.from_dataset(key)
        reports = {}
        for name in SYSTEMS:
            services[name].serve(workload)          # let DynPre adapt
            reports[name] = services[name].serve(workload)
        cpu = reports["CPU"].total_seconds
        row = [key]
        for name in SYSTEMS:
            total = reports[name].total_seconds
            speedups[name].append(cpu / total)
            row.append(round(total * 1e3, 1))
        row.append(round(100 * reports["GPU"].preprocessing_share, 1))
        rows.append(row)

    rows.append(
        ["geomean speedup vs CPU"]
        + [round(geometric_mean(speedups[name]), 2) for name in SYSTEMS]
        + [""]
    )
    print(format_table(
        "End-to-end GNN service latency (ms) per dataset",
        ["dataset"] + SYSTEMS + ["GPU preproc %"],
        rows,
    ))
    print("\nPaper reference speedups over CPU: GPU 3.4x, GSamp 4.1x, FPGA 4.5x, "
          "AutoPre 7.3x, StatPre 8.4x, DynPre 9.0x")


if __name__ == "__main__":
    main()
