"""Explore the UPE/SCR design space with the cost model and the simulator.

Sweeps the staged bitstream library for three datasets, shows which
configuration the Table I cost model selects, validates the model against the
cycle-level simulator on a scaled synthetic graph, and reports the partial
reconfiguration cost of switching between the chosen configurations — the
workflow behind Figs. 22-24.

Run with:  python examples/hardware_design_space.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core import (
    AutoGNNDevice,
    CostModel,
    ReconfigurationController,
    WorkloadParams,
    generate_bitstream_library,
)
from repro.core.config import scaled_default_config
from repro.graph import load_dataset
from repro.preprocessing import PreprocessingConfig
from repro.system import WorkloadProfile


def main() -> None:
    library = generate_bitstream_library()
    model = CostModel()
    print(f"Bitstream library: {len(library.upe_variants)} UPE variants, "
          f"{len(library.scr_variants)} SCR variants "
          f"({library.total_bytes / (1 << 20):.0f} MB staged in device DRAM)")

    # 1. Which configuration does the cost model pick for each dataset?
    rows = []
    chosen = {}
    for key in ("AX", "SO", "AM"):
        params = WorkloadProfile.from_dataset(key).to_cost_params()
        config, estimate = model.best_configuration(params, library.configurations())
        chosen[key] = config
        rows.append(
            [
                key,
                f"{config.num_upes}x{config.upe_width}",
                f"{config.num_scrs}x{config.scr_width}",
                int(estimate.ordering_cycles),
                int(estimate.selecting_cycles),
                int(estimate.reshaping_cycles),
            ]
        )
    print(format_table(
        "Cost-model choice per dataset (Table I applied to the bitstream library)",
        ["dataset", "UPE (count x width)", "SCR (slots x width)",
         "ordering cycles", "selecting cycles", "reshaping cycles"],
        rows,
    ))

    # 2. Validate the cost model against the cycle-level simulator (scaled AX).
    graph = load_dataset("AX", scale=1 / 2000)
    device = AutoGNNDevice(scaled_default_config())
    run = device.preprocess(graph, PreprocessingConfig(batch_size=32, k=10, num_layers=2))
    params = WorkloadParams(
        num_nodes=graph.num_nodes, num_edges=graph.num_edges, k=10, num_layers=2, batch_size=32
    )
    estimate = model.estimate(params, device.config)
    print("\nCost model vs simulator (scaled AX, default configuration)")
    for task, simulated in run.timing.breakdown().items():
        estimated = estimate.breakdown()[task]
        accuracy = 100 * (1 - abs(simulated - estimated) / max(simulated, 1))
        print(f"  {task:<12} simulated {simulated:>8d}  estimated {int(estimated):>8d}  "
              f"accuracy {accuracy:5.1f}%")

    # 3. What does it cost to hop between the chosen configurations?
    controller = ReconfigurationController(library, chosen["AX"])
    for key in ("SO", "AM"):
        event = controller.reconfigure(chosen[key])
        if event is None:
            print(f"\nSwitching to the {key} configuration: already loaded")
        else:
            print(f"\nSwitching to the {key} configuration reprograms {event.regions} "
                  f"in {event.latency_seconds * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
