"""Serve a continuously growing social graph with runtime reconfiguration.

Replays an update stream on a StackOverflow-like graph (the SO dataset grows
by ~0.52 % per day), lets AGNN-lib profile each snapshot, decide whether the
staged bitstreams should be swapped, and compares the fixed-configuration
StatPre system against the reconfigurable DynPre system over time — the
scenario behind Figs. 7, 28 and 30.

Run with:  python examples/dynamic_graph_serving.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.graph import load_dataset
from repro.graph.dynamic import DAILY_GROWTH_RATE, GraphUpdateStream
from repro.system import AGNNLib, WorkloadProfile
from repro.system.service import GNNService
from repro.system.variants import DynPreSystem, StatPreSystem

DAYS = 10
PASSES_PER_DAY = 20


def main() -> None:
    base = load_dataset("SO", scale=1 / 5000)
    print(f"Base graph: {base.num_nodes} nodes, {base.num_edges} edges")

    agnn = AGNNLib()
    upload_seconds = agnn.upload_graph(base)
    print(f"Initial upload through DMA-main: {upload_seconds * 1e3:.2f} ms")

    stat = GNNService(StatPreSystem())
    dyn = GNNService(DynPreSystem())

    stream = GraphUpdateStream(base, growth_rate=DAILY_GROWTH_RATE["SO"] * 50, seed=0)
    rows = []
    graph = base
    for day, batch in enumerate(stream.generate(DAYS)):
        graph = graph.add_edges(batch.src, batch.dst, num_nodes=graph.num_nodes + batch.new_nodes)
        incremental = agnn.upload_graph(graph)
        workload = WorkloadProfile.from_graph(graph, batch_size=256, update_fraction=batch.num_edges / graph.num_edges)

        decision = agnn.evaluate_reconfiguration(workload)
        stat_total = sum(stat.serve(workload).total_seconds for _ in range(PASSES_PER_DAY))
        dyn_total = sum(dyn.serve(workload).total_seconds for _ in range(PASSES_PER_DAY))
        rows.append(
            [
                day,
                graph.num_edges,
                round(incremental * 1e3, 3),
                "yes" if decision.reconfigure else "no",
                round(stat_total * 1e3, 2),
                round(dyn_total * 1e3, 2),
            ]
        )

    print(format_table(
        f"Serving a growing SO-like graph ({PASSES_PER_DAY} passes per step)",
        ["step", "edges", "update upload ms", "reconfigure?", "StatPre ms", "DynPre ms"],
        rows,
    ))
    print("\nDynPre adapts the UPE/SCR configuration as the graph grows; the fixed")
    print("StatPre configuration slowly drifts away from the optimum.")


if __name__ == "__main__":
    main()
