"""SLO-aware serving control plane: admission control and autoscaling.

The control plane layers three deterministic policies on top of the sharded
cluster's online event loop (:meth:`~repro.serving.cluster.ShardedServiceCluster.serve_online`):

* :class:`SLOPolicy` — per-workload latency objectives (a default plus
  per-workload-name overrides), and — for multi-tenant clusters — per-tenant
  :class:`TenantQuota`\\ s (guaranteed rate, excess weight, SLO override,
  hard rate limit) plus an optional shared excess budget.
* :class:`AdmissionController` — sheds a request at arrival when its
  predicted sojourn (the chosen shard's queued backlog, i.e. queue depth
  times the calibrated per-batch cost, plus the request's own estimated
  service time) would violate the workload's SLO.  Every decision is
  recorded, so the prediction invariant (admit ⇔ predicted ≤ SLO) is
  testable after the fact.  With tenant quotas configured the controller is
  tiered: a hard ``limit_rps`` cap sheds first; traffic within a tenant's
  ``guaranteed_rps`` token bucket is always admitted (quota conservation —
  a tenant inside its guarantee is never shed); the remainder rides the
  SLO prediction, and overloaded *excess* traffic is shed proportionally
  to each tenant's weighted share of the policy's ``excess_rps`` budget
  (weighted shedding) instead of first-come-first-served.
* :class:`Autoscaler` — grows or shrinks the active shard set from observed
  queue depth with hysteresis (several consecutive breaches are required
  before acting) and a warm-up penalty on newly activated shards (an AutoGNN
  shard must program its bitstreams before it can serve).

Everything here is pure simulated-time bookkeeping: no wall clock, no
randomness, so controlled runs are exactly reproducible.  The policies are
engine-agnostic: both the reference event loop and the fast engine
(:mod:`repro.serving.engine`) drive the same controller objects with the
same observation sequences, which is what keeps controlled runs
byte-identical across engines.  For 100k-request runs the per-decision log
can be disabled (``AdmissionController(record_decisions=False)``) — the
verdicts themselves are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional

from repro.serving.requests import DEFAULT_TENANT
from repro.system.workload import QUALITY_DEGRADED, WorkloadProfile


@dataclass(frozen=True)
class TenantQuota:
    """Rate/share quota of one tenant on a shared cluster.

    Attributes:
        guaranteed_rps: request rate the tenant is always entitled to.
            Traffic within this token bucket is admitted unconditionally —
            a tenant inside its guarantee is never shed, which is the quota
            conservation invariant the property tests pin (the operator is
            responsible for keeping the sum of guarantees within cluster
            capacity, like any oversubscription-free reservation scheme).
        weight: share of the policy's ``excess_rps`` budget this tenant gets
            when the cluster is overloaded (weighted shedding: excess
            traffic beyond the guarantee is admitted in proportion to
            weight, everything above that is shed).
        slo_seconds: per-tenant latency objective; overrides both the
            per-workload and default SLO when set.
        limit_rps: hard offered-rate cap; arrivals beyond it are shed even
            when the cluster is idle (``None`` disables the cap).
        burst_seconds: token-bucket depth, in seconds of accrual at the
            bucket's rate — a tenant may burst ``rate * burst_seconds``
            requests after an idle stretch before its steady rate applies.
            The credit is additionally clamped to
            :data:`MAX_BURST_TOKENS` requests, so a long-silent
            high-guarantee tenant cannot flood an unbounded instantaneous
            burst past its steady ``guaranteed_rps`` on return.
        no_degrade: a tenant that bought out of the degraded tier — its
            requests are never admitted at degraded quality (the degraded
            prediction tier is skipped; the verdict falls through to the
            excess budget / shed).  Full-quality admission is unaffected.
        degraded_utility: per-tenant floor on the SLO-weighted value of one
            degraded completion, in ``[0, 1]``.  Goodput scoring uses
            ``max(policy.degraded_utility, quota.degraded_utility)`` for the
            tenant (see :meth:`DegradationPolicy.utility_for`), so a paying
            tenant's degraded completions are never scored below its floor.
            ``None`` defers to the policy-wide knob.
    """

    guaranteed_rps: float = 0.0
    weight: float = 1.0
    slo_seconds: Optional[float] = None
    limit_rps: Optional[float] = None
    burst_seconds: float = 1.0
    no_degrade: bool = False
    degraded_utility: Optional[float] = None

    def __post_init__(self) -> None:
        if self.guaranteed_rps < 0:
            raise ValueError("guaranteed_rps must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.slo_seconds is not None and self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive")
        if self.limit_rps is not None and self.limit_rps <= 0:
            raise ValueError("limit_rps must be positive")
        if self.burst_seconds <= 0:
            raise ValueError("burst_seconds must be positive")
        if self.degraded_utility is not None and not 0.0 <= self.degraded_utility <= 1.0:
            raise ValueError("degraded_utility must be in [0, 1]")

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form."""
        return {
            "guaranteed_rps": self.guaranteed_rps,
            "weight": self.weight,
            "slo_seconds": self.slo_seconds,
            "limit_rps": self.limit_rps,
            "burst_seconds": self.burst_seconds,
            "no_degrade": self.no_degrade,
            "degraded_utility": self.degraded_utility,
        }


#: Quota applied to tenants without an explicit entry: no guarantee, no cap,
#: unit weight — exactly the pre-tenancy admission behaviour.
DEFAULT_TENANT_QUOTA = TenantQuota()


@dataclass(frozen=True)
class SLOPolicy:
    """Per-workload latency objectives in simulated seconds, plus the
    per-tenant quota table of a multi-tenant cluster.

    Attributes:
        default_slo_seconds: objective applied to workloads without an override.
        per_workload: overrides keyed by ``WorkloadProfile.name``.
        per_tenant: :class:`TenantQuota` overrides keyed by tenant name;
            tenants without an entry get :data:`DEFAULT_TENANT_QUOTA`.
        excess_rps: operator-granted overflow budget shared by the
            *quota-listed* tenants' excess (beyond-guarantee) traffic
            during overload, split proportionally to quota weights
            (unlisted tenants get no slice — they would otherwise each
            mint a fresh budget).  0 (the default) sheds all overloaded
            excess traffic.
    """

    default_slo_seconds: float
    per_workload: Mapping[str, float] = field(default_factory=dict)
    per_tenant: Mapping[str, TenantQuota] = field(default_factory=dict)
    excess_rps: float = 0.0

    def __post_init__(self) -> None:
        if self.default_slo_seconds <= 0:
            raise ValueError("default_slo_seconds must be positive")
        for name, slo in self.per_workload.items():
            if slo <= 0:
                raise ValueError(f"SLO for workload {name!r} must be positive")
        if self.excess_rps < 0:
            raise ValueError("excess_rps must be non-negative")

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota of ``tenant`` (the permissive default when unlisted)."""
        return self.per_tenant.get(tenant, DEFAULT_TENANT_QUOTA)

    def slo_for(self, workload: WorkloadProfile, tenant: Optional[str] = None) -> float:
        """The latency objective of ``workload`` (tenant override wins)."""
        if tenant is not None:
            quota = self.per_tenant.get(tenant)
            if quota is not None and quota.slo_seconds is not None:
                return quota.slo_seconds
        return self.per_workload.get(workload.name, self.default_slo_seconds)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (overrides sorted for byte stability)."""
        return {
            "default_slo_seconds": self.default_slo_seconds,
            "per_workload": {k: self.per_workload[k] for k in sorted(self.per_workload)},
            "per_tenant": {
                k: self.per_tenant[k].as_dict() for k in sorted(self.per_tenant)
            },
            "excess_rps": self.excess_rps,
        }


@dataclass(frozen=True)
class DegradationPolicy:
    """Quality-latency degradation knobs for graceful overload handling.

    When admission predicts an SLO violation at full quality, the request is
    re-priced at a cheaper execution profile —
    :meth:`~repro.system.workload.WorkloadProfile.degrade` with these knobs —
    and admitted at the degraded tier when *that* prediction meets the SLO.
    Overload then has three outcomes (full, degraded, shed) instead of two.

    Attributes:
        k_factor: factor applied to the neighbours sampled per node
            (``k``), in ``(0, 1]``.
        min_k: lower clamp on the degraded ``k``.
        layer_drop: sampling hops removed from the degraded profile.
        min_layers: lower clamp on the degraded layer count.
        degraded_utility: SLO-weighted value of one degraded completion
            relative to a full-quality one, in ``[0, 1]`` — used by goodput
            scoring (``full + degraded_utility * degraded``), not by the
            admission verdict itself.
    """

    k_factor: float = 0.5
    min_k: int = 1
    layer_drop: int = 1
    min_layers: int = 1
    degraded_utility: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.k_factor <= 1.0:
            raise ValueError("k_factor must be in (0, 1]")
        if self.min_k < 1:
            raise ValueError("min_k must be >= 1")
        if self.layer_drop < 0:
            raise ValueError("layer_drop must be >= 0")
        if self.min_layers < 1:
            raise ValueError("min_layers must be >= 1")
        if not 0.0 <= self.degraded_utility <= 1.0:
            raise ValueError("degraded_utility must be in [0, 1]")

    def apply(self, workload: WorkloadProfile) -> WorkloadProfile:
        """The degraded execution profile of ``workload`` (idempotent)."""
        if workload.quality == QUALITY_DEGRADED:
            return workload
        return workload.degrade(
            k_factor=self.k_factor,
            min_k=self.min_k,
            layer_drop=self.layer_drop,
            min_layers=self.min_layers,
        )

    def utility_for(self, quota: Optional[TenantQuota]) -> float:
        """The effective degraded utility for a tenant under ``quota``.

        A quota's :attr:`TenantQuota.degraded_utility` is a *floor*: the
        tenant's degraded completions are scored at
        ``max(policy.degraded_utility, quota.degraded_utility)``, so a
        per-tenant override can only raise the value of degraded work,
        never silently discount a paying tenant below the policy-wide knob.
        """
        if quota is None or quota.degraded_utility is None:
            return self.degraded_utility
        return max(self.degraded_utility, quota.degraded_utility)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form."""
        return {
            "k_factor": self.k_factor,
            "min_k": self.min_k,
            "layer_drop": self.layer_drop,
            "min_layers": self.min_layers,
            "degraded_utility": self.degraded_utility,
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission-control verdict, recorded at request arrival.

    Attributes:
        request_id: the request the verdict applies to.
        seconds: simulated arrival time at which the verdict was made.
        predicted_sojourn: backlog + estimated service time at that instant.
        slo_seconds: the workload's latency objective.
        admitted: whether the request entered the cluster.
        tenant: the requesting tenant.
        reason: which admission tier produced the verdict — ``"predicted"``
            / ``"overload"`` for the SLO prediction (the only tier of a
            quota-free policy), ``"guaranteed"`` for the tenant's guaranteed
            token bucket, ``"degraded"`` for the degraded-quality
            prediction, ``"weighted-excess"`` for the shared overflow
            budget and ``"rate-limit"`` for the hard per-tenant cap.
        degraded: whether the request was admitted at the degraded quality
            tier (``reason == "degraded"``); ``predicted_sojourn`` is then
            the degraded-profile prediction.
    """

    request_id: int
    seconds: float
    predicted_sojourn: float
    slo_seconds: float
    admitted: bool
    tenant: str = DEFAULT_TENANT
    reason: str = "predicted"
    degraded: bool = False


#: Hard cap on a token bucket's burst credit, in requests.  ``burst_seconds``
#: scales a bucket's depth with its rate (``rate * burst_seconds``), so
#: without an absolute ceiling a high-rate tenant that goes silent
#: accumulates an effectively unbounded instantaneous burst allowance and
#: floods far past its ``guaranteed_rps`` the moment it returns.  The clamp
#: bounds that post-idle flood while leaving every small-rate bucket (and
#: the steady-state refill behaviour) untouched.
MAX_BURST_TOKENS = 64.0


class _TokenBucket:
    """Deterministic token bucket (simulated time, no wall clock).

    Starts full, so a tenant gets its burst allowance immediately; refills
    continuously at ``rate`` tokens per simulated second up to ``capacity``
    (itself clamped to :data:`MAX_BURST_TOKENS` by the controller).
    """

    __slots__ = ("rate", "capacity", "tokens", "last_seconds")

    def __init__(self, rate: float, capacity: float, now_seconds: float) -> None:
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self.last_seconds = now_seconds

    def take(self, now_seconds: float) -> bool:
        """Consume one token if available at ``now_seconds``."""
        elapsed = now_seconds - self.last_seconds
        if elapsed > 0:
            self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
            self.last_seconds = now_seconds
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Predictive, tenant-aware admission control against an :class:`SLOPolicy`.

    Without tenant quotas a request is admitted iff its predicted sojourn —
    the backlog of the least-loaded active shard (queue depth × calibrated
    per-batch cost, as accumulated in the shard's busy horizon) plus the
    request's own estimated service seconds — does not exceed its SLO.

    With quotas (``policy.per_tenant``) the verdict is tiered, in order:

    1. **rate limit** — a tenant above its hard ``limit_rps`` cap is shed
       regardless of load;
    2. **guaranteed** — traffic within the tenant's ``guaranteed_rps``
       token bucket is admitted unconditionally (a tenant inside its
       guarantee is never shed);
    3. **prediction** — remaining traffic is admitted when the predicted
       sojourn meets the (tenant-aware) SLO;
    4. **weighted excess** — overloaded excess traffic draws on the
       policy's shared ``excess_rps`` budget in proportion to quota
       weights; what the budget cannot cover is shed.  With the default
       budget of 0 every overloaded excess request is shed, which makes
       per-tenant shed counts proportional to each tenant's excess over its
       guarantee — weighted shedding instead of arrival-order shedding.

    All tiers are pure simulated-time bookkeeping on the arrival sequence,
    so both serving engines drive identical decisions.  The decision log
    can be disabled (``record_decisions=False``) for memory-bounded
    100k-request runs — verdicts are unaffected.

    ``batch_aware=True`` opts into batching-aware admission: the serving
    loops then predict with the *marginal* cost of joining the batch
    already forming for the request's compatibility key (merged-batch cost
    minus the forming batch's cost) instead of the conservative standalone
    per-request estimate.  The controller itself only carries the flag; the
    loops own the estimate because only they see the open batches.

    ``degradation`` (a :class:`DegradationPolicy`) inserts a degraded-quality
    prediction tier between the full-quality prediction and the weighted
    excess budget: a request whose full-quality prediction violates the SLO
    is re-priced at its cheaper :meth:`DegradationPolicy.apply` profile and
    admitted *degraded* when that prediction fits.  The loops pass the
    degraded-profile estimate in (only they see the open batches); the
    controller owns the tier ordering and the verdict.  A tenant whose quota
    sets ``no_degrade`` has bought out of the tier: :meth:`degraded_profile`
    returns ``None`` for it and :meth:`decide` never admits it degraded.
    """

    def __init__(
        self,
        policy: SLOPolicy,
        record_decisions: bool = True,
        batch_aware: bool = False,
        degradation: Optional[DegradationPolicy] = None,
    ) -> None:
        self.policy = policy
        self.record_decisions = record_decisions
        self.batch_aware = batch_aware
        self.degradation = degradation
        self.decisions: List[AdmissionDecision] = []
        self._guaranteed: Dict[str, Optional[_TokenBucket]] = {}
        self._limits: Dict[str, Optional[_TokenBucket]] = {}
        self._excess: Dict[str, Optional[_TokenBucket]] = {}
        self._degraded_profiles: Dict[WorkloadProfile, Optional[WorkloadProfile]] = {}
        weights = [quota.weight for quota in policy.per_tenant.values()]
        self._total_weight = sum(weights) if weights else 1.0

    def degraded_profile(
        self, workload: WorkloadProfile, tenant: Optional[str] = None
    ) -> Optional[WorkloadProfile]:
        """The memoized degraded profile of ``workload`` for ``tenant``.

        ``None`` when no degradation policy is configured, when degrading
        would not change the execution (already at the floor), or when the
        tenant's quota sets :attr:`TenantQuota.no_degrade` — the loops then
        skip the degraded tier entirely for that request.  The memo is keyed
        by workload only; the tenant buy-out is a cheap table lookup.
        """
        if self.degradation is None:
            return None
        if tenant is not None and self.policy.quota_for(tenant).no_degrade:
            return None
        if workload not in self._degraded_profiles:
            degraded = self.degradation.apply(workload)
            cheaper = (degraded.k, degraded.num_layers) != (workload.k, workload.num_layers)
            self._degraded_profiles[workload] = degraded if cheaper else None
        return self._degraded_profiles[workload]

    def reset(self) -> None:
        """Drop all token-bucket state (start of a serving run).

        Both serving engines call this when a run begins, mirroring
        ``Autoscaler.start``: simulated clocks restart at every run, so
        buckets anchored to a previous run's timeline must not leak into
        the next one (a depleted guarantee would otherwise shed
        within-guarantee traffic and break quota conservation).  The
        decision log is an audit trail and is deliberately kept.
        """
        self._guaranteed.clear()
        self._limits.clear()
        self._excess.clear()

    def _bucket(
        self, table: Dict[str, Optional[_TokenBucket]], tenant: str,
        rate: Optional[float], burst_seconds: float, now_seconds: float,
    ) -> Optional[_TokenBucket]:
        if tenant not in table:
            if rate is None or rate <= 0:
                table[tenant] = None
            else:
                capacity = max(1.0, min(rate * burst_seconds, MAX_BURST_TOKENS))
                table[tenant] = _TokenBucket(rate, capacity, now_seconds)
        return table[tenant]

    def decide(
        self,
        request,
        now_seconds: float,
        backlog_seconds: float,
        service_estimate_seconds: float,
        degraded_estimate_seconds: Optional[float] = None,
    ) -> AdmissionDecision:
        """Admit or shed ``request`` given the cluster's current backlog.

        ``degraded_estimate_seconds`` — the estimated service seconds of the
        request's degraded profile, supplied by the serving loop when a
        degradation policy is configured — enables the degraded-quality
        prediction tier; ``None`` keeps the verdict binary (admit/shed).
        """
        predicted = max(backlog_seconds, 0.0) + max(service_estimate_seconds, 0.0)
        tenant = request.tenant
        slo = self.policy.slo_for(request.workload, tenant)
        quota = self.policy.quota_for(tenant)
        limit = self._bucket(
            self._limits, tenant, quota.limit_rps, quota.burst_seconds, now_seconds
        )
        guaranteed = self._bucket(
            self._guaranteed, tenant, quota.guaranteed_rps, quota.burst_seconds,
            now_seconds,
        )
        degraded_tier = False
        if limit is not None and not limit.take(now_seconds):
            admitted, reason = False, "rate-limit"
        elif guaranteed is not None and guaranteed.take(now_seconds):
            admitted, reason = True, "guaranteed"
        elif predicted <= slo:
            admitted, reason = True, "predicted"
        elif (
            degraded_estimate_seconds is not None
            and not quota.no_degrade
            and max(backlog_seconds, 0.0) + max(degraded_estimate_seconds, 0.0) <= slo
        ):
            predicted = max(backlog_seconds, 0.0) + max(degraded_estimate_seconds, 0.0)
            admitted, reason, degraded_tier = True, "degraded", True
        else:
            # Only quota-listed tenants share the excess budget: an unlisted
            # tenant minting its own weight-1 slice would oversubscribe the
            # "shared" excess_rps by a full budget per tenant.
            excess_rate = None
            if self.policy.excess_rps > 0 and tenant in self.policy.per_tenant:
                excess_rate = (
                    self.policy.excess_rps * quota.weight / self._total_weight
                )
            excess = self._bucket(
                self._excess, tenant, excess_rate, quota.burst_seconds, now_seconds
            )
            if excess is not None and excess.take(now_seconds):
                admitted, reason = True, "weighted-excess"
            else:
                admitted, reason = False, "overload"
        decision = AdmissionDecision(
            request_id=request.request_id,
            seconds=now_seconds,
            predicted_sojourn=predicted,
            slo_seconds=slo,
            admitted=admitted,
            tenant=tenant,
            reason=reason,
            degraded=degraded_tier,
        )
        if self.record_decisions:
            self.decisions.append(decision)
        return decision


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler action on the active shard set.

    Attributes:
        seconds: simulated time of the action.
        active_shards: shard count in effect from this instant.
        reason: ``"init"``, ``"scale-up"`` or ``"scale-down"``.
        migrated: requests whose planned-but-unstarted batches were drained
            off the leaving shard and re-dispatched among the survivors
            (scale-down events on a draining scaler; 0 otherwise).
        completed: requests still in flight on the leaving shard at the
            scale-down instant, left to run to completion.
    """

    seconds: float
    active_shards: int
    reason: str
    migrated: int = 0
    completed: int = 0


class Autoscaler:
    """Queue-depth autoscaler with hysteresis and warm-up awareness.

    The event loop reports the observed queue depth (requests waiting in
    open batches plus requests in flight on the shards) at every arrival.
    When the per-active-shard depth stays above ``scale_up_depth`` for
    ``hysteresis_observations`` consecutive observations, one shard is
    activated; when it stays below ``scale_down_depth`` for as many
    observations, one is drained.  Depths inside the dead band reset both
    streaks, which is what makes the shard count stable under constant load.

    Args:
        min_shards: lower bound of the active set (>= 1).
        max_shards: upper bound of the active set (>= ``min_shards``).
        scale_up_depth: per-shard queue depth that starts an up streak.
        scale_down_depth: per-shard queue depth that starts a down streak
            (must be strictly below ``scale_up_depth`` to form a dead band).
        hysteresis_observations: consecutive breaches required to act.
        warmup_seconds: warm-up charged to a newly activated shard; ``None``
            defers to the shard's own ``warmup_seconds`` (bitstream load for
            the AutoGNN variants, 0 for the software baselines).
        shed_memory_seconds: how long a *shed* arrival keeps counting as
            demand pressure in the queue-depth signal.  Without it, heavy
            shedding hides overload from the autoscaler entirely (rejected
            requests never enter the queue), and the cluster can wedge at
            ``min_shards`` while shedding nearly everything.
        guaranteed_scale_up_depth: optional per-shard queue depth of
            *guaranteed-tier* requests (tenants with ``guaranteed_rps > 0``
            in the run's SLO policy) that also starts an up streak and
            blocks scale-down.  A small guaranteed backlog then scales the
            cluster even while the global depth looks healthy, so paying
            tenants are not starved behind best-effort load.  ``None``
            keeps the scaler global-depth-only.
        drain: drain-and-migrate on voluntary scale-down (the default).
            The serving loops then defer commits through a
            :class:`~repro.serving.faults.DrainPlanner`: a scale-down hands
            the leaving shard's planned-but-unstarted backlog to the
            survivors, in-flight work runs to completion, and the event's
            ``migrated`` / ``completed`` counts are recorded via
            :meth:`record_drain`.  ``drain=False`` restores the drain-less
            commit-at-dispatch behaviour (the pre-drain baseline the
            elastic-scaling bench compares against).
    """

    def __init__(
        self,
        min_shards: int = 1,
        max_shards: int = 8,
        scale_up_depth: float = 4.0,
        scale_down_depth: float = 1.0,
        hysteresis_observations: int = 3,
        warmup_seconds: Optional[float] = None,
        shed_memory_seconds: float = 1.0,
        guaranteed_scale_up_depth: Optional[float] = None,
        drain: bool = True,
    ) -> None:
        if min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if max_shards < min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if scale_down_depth < 0 or scale_up_depth <= scale_down_depth:
            raise ValueError("need 0 <= scale_down_depth < scale_up_depth")
        if hysteresis_observations < 1:
            raise ValueError("hysteresis_observations must be >= 1")
        if warmup_seconds is not None and warmup_seconds < 0:
            raise ValueError("warmup_seconds must be non-negative")
        if shed_memory_seconds < 0:
            raise ValueError("shed_memory_seconds must be non-negative")
        if guaranteed_scale_up_depth is not None and guaranteed_scale_up_depth <= 0:
            raise ValueError("guaranteed_scale_up_depth must be > 0")
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.scale_up_depth = scale_up_depth
        self.scale_down_depth = scale_down_depth
        self.hysteresis_observations = hysteresis_observations
        self.warmup_seconds = warmup_seconds
        self.shed_memory_seconds = shed_memory_seconds
        self.guaranteed_scale_up_depth = guaranteed_scale_up_depth
        self.drain = drain
        self.active = min_shards
        self.events: List[ScalingEvent] = []
        self._above = 0
        self._below = 0

    @property
    def tenant_aware(self) -> bool:
        """Whether the scaler watches guaranteed-tier pressure separately."""
        return self.guaranteed_scale_up_depth is not None

    def start(self, now_seconds: float = 0.0) -> int:
        """Reset to the initial active set and record the starting point."""
        self.active = self.min_shards
        self._above = 0
        self._below = 0
        self.events = [ScalingEvent(now_seconds, self.active, "init")]
        return self.active

    def observe(
        self,
        now_seconds: float,
        queue_depth: float,
        guaranteed_depth: Optional[float] = None,
    ) -> int:
        """Feed one queue-depth observation; returns the new active count.

        ``guaranteed_depth`` (guaranteed-tier requests currently queueing)
        only matters on a tenant-aware scaler: breaching
        ``guaranteed_scale_up_depth`` per shard starts an up streak even
        when the global depth is calm, and any guaranteed pressure at or
        above the down threshold vetoes a down streak.
        """
        per_shard = queue_depth / max(self.active, 1)
        guaranteed_per_shard = 0.0
        if self.guaranteed_scale_up_depth is not None and guaranteed_depth is not None:
            guaranteed_per_shard = guaranteed_depth / max(self.active, 1)
        breach_up = per_shard > self.scale_up_depth or (
            self.guaranteed_scale_up_depth is not None
            and guaranteed_per_shard > self.guaranteed_scale_up_depth
        )
        if breach_up:
            self._above += 1
            self._below = 0
        elif per_shard < self.scale_down_depth and guaranteed_per_shard < self.scale_down_depth:
            self._below += 1
            self._above = 0
        else:
            self._above = 0
            self._below = 0
        if self._above >= self.hysteresis_observations and self.active < self.max_shards:
            self.active += 1
            self._above = 0
            self._below = 0
            self.events.append(ScalingEvent(now_seconds, self.active, "scale-up"))
        elif self._below >= self.hysteresis_observations and self.active > self.min_shards:
            self.active -= 1
            self._above = 0
            self._below = 0
            self.events.append(ScalingEvent(now_seconds, self.active, "scale-down"))
        return self.active

    def record_drain(self, migrated: int, completed: int) -> None:
        """Attach drain outcomes to the most recent scaling event.

        The serving loops call this right after the scale-down they just
        observed: ``migrated`` planned requests re-picked a surviving
        shard, ``completed`` were in flight on the leaving shard and ran
        to completion.
        """
        if not self.events:
            return
        last = self.events[-1]
        self.events[-1] = replace(
            last,
            migrated=last.migrated + migrated,
            completed=last.completed + completed,
        )

    def timeline(self) -> List[ScalingEvent]:
        """The scaling history, oldest first."""
        return list(self.events)


class ServingController:
    """Bundle an SLO, admission control and an autoscaler for one cluster.

    Convenience facade over
    :meth:`~repro.serving.cluster.ShardedServiceCluster.serve_online`: builds
    the admission controller from the policy and wires everything into the
    cluster's event loop.  ``slo=None`` disables shedding (the run is then
    only scored against the SLO if one is given), ``autoscaler=None`` keeps
    every shard active throughout, and ``faults`` (a
    :class:`~repro.serving.faults.FaultSchedule`) injects shard
    crash/recover/slowdown events into every run this controller serves.
    """

    def __init__(
        self,
        cluster,
        slo: Optional[SLOPolicy] = None,
        autoscaler: Optional[Autoscaler] = None,
        record_decisions: bool = True,
        batch_aware: bool = False,
        faults=None,
        degradation: Optional[DegradationPolicy] = None,
    ) -> None:
        if autoscaler is not None and autoscaler.max_shards > cluster.num_shards:
            raise ValueError(
                f"autoscaler max_shards ({autoscaler.max_shards}) exceeds the "
                f"cluster's shard count ({cluster.num_shards})"
            )
        self.cluster = cluster
        self.slo = slo
        self.autoscaler = autoscaler
        self.faults = faults
        self.admission = (
            AdmissionController(
                slo,
                record_decisions=record_decisions,
                batch_aware=batch_aware,
                degradation=degradation,
            )
            if slo is not None
            else None
        )

    def serve(self, source):
        """Drive ``source`` through the cluster under this control plane."""
        from repro.serving.config import ServingConfig

        return self.cluster.serve_online(
            source,
            config=ServingConfig(
                slo=self.slo,
                controller=self.admission,
                autoscaler=self.autoscaler,
                faults=self.faults,
            ),
        )
