"""SLO-aware serving control plane: admission control and autoscaling.

The control plane layers three deterministic policies on top of the sharded
cluster's online event loop (:meth:`~repro.serving.cluster.ShardedServiceCluster.serve_online`):

* :class:`SLOPolicy` — per-workload latency objectives (a default plus
  per-workload-name overrides).
* :class:`AdmissionController` — sheds a request at arrival when its
  predicted sojourn (the chosen shard's queued backlog, i.e. queue depth
  times the calibrated per-batch cost, plus the request's own estimated
  service time) would violate the workload's SLO.  Every decision is
  recorded, so the prediction invariant (admit ⇔ predicted ≤ SLO) is
  testable after the fact.
* :class:`Autoscaler` — grows or shrinks the active shard set from observed
  queue depth with hysteresis (several consecutive breaches are required
  before acting) and a warm-up penalty on newly activated shards (an AutoGNN
  shard must program its bitstreams before it can serve).

Everything here is pure simulated-time bookkeeping: no wall clock, no
randomness, so controlled runs are exactly reproducible.  The policies are
engine-agnostic: both the reference event loop and the fast engine
(:mod:`repro.serving.engine`) drive the same controller objects with the
same observation sequences, which is what keeps controlled runs
byte-identical across engines.  For 100k-request runs the per-decision log
can be disabled (``AdmissionController(record_decisions=False)``) — the
verdicts themselves are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.system.workload import WorkloadProfile


@dataclass(frozen=True)
class SLOPolicy:
    """Per-workload latency objectives in simulated seconds.

    Attributes:
        default_slo_seconds: objective applied to workloads without an override.
        per_workload: overrides keyed by ``WorkloadProfile.name``.
    """

    default_slo_seconds: float
    per_workload: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.default_slo_seconds <= 0:
            raise ValueError("default_slo_seconds must be positive")
        for name, slo in self.per_workload.items():
            if slo <= 0:
                raise ValueError(f"SLO for workload {name!r} must be positive")

    def slo_for(self, workload: WorkloadProfile) -> float:
        """The latency objective of ``workload``."""
        return self.per_workload.get(workload.name, self.default_slo_seconds)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (overrides sorted for byte stability)."""
        return {
            "default_slo_seconds": self.default_slo_seconds,
            "per_workload": {k: self.per_workload[k] for k in sorted(self.per_workload)},
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission-control verdict, recorded at request arrival.

    Attributes:
        request_id: the request the verdict applies to.
        seconds: simulated arrival time at which the verdict was made.
        predicted_sojourn: backlog + estimated service time at that instant.
        slo_seconds: the workload's latency objective.
        admitted: whether the request entered the cluster.
    """

    request_id: int
    seconds: float
    predicted_sojourn: float
    slo_seconds: float
    admitted: bool


class AdmissionController:
    """Predictive admission control against an :class:`SLOPolicy`.

    A request is admitted iff its predicted sojourn — the backlog of the
    least-loaded active shard (queue depth × calibrated per-batch cost, as
    accumulated in the shard's busy horizon) plus the request's own
    estimated service seconds — does not exceed its workload's SLO.  The
    controller is stateless apart from the decision log, which
    ``record_decisions=False`` disables for memory-bounded 100k-request
    runs — both the controller's log and the serving loops'
    ``ClusterReport.decisions`` honour the flag (verdicts are unchanged;
    only the logs are skipped).
    """

    def __init__(self, policy: SLOPolicy, record_decisions: bool = True) -> None:
        self.policy = policy
        self.record_decisions = record_decisions
        self.decisions: List[AdmissionDecision] = []

    def decide(
        self,
        request,
        now_seconds: float,
        backlog_seconds: float,
        service_estimate_seconds: float,
    ) -> AdmissionDecision:
        """Admit or shed ``request`` given the cluster's current backlog."""
        predicted = max(backlog_seconds, 0.0) + max(service_estimate_seconds, 0.0)
        slo = self.policy.slo_for(request.workload)
        decision = AdmissionDecision(
            request_id=request.request_id,
            seconds=now_seconds,
            predicted_sojourn=predicted,
            slo_seconds=slo,
            admitted=predicted <= slo,
        )
        if self.record_decisions:
            self.decisions.append(decision)
        return decision


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler action on the active shard set.

    Attributes:
        seconds: simulated time of the action.
        active_shards: shard count in effect from this instant.
        reason: ``"init"``, ``"scale-up"`` or ``"scale-down"``.
    """

    seconds: float
    active_shards: int
    reason: str


class Autoscaler:
    """Queue-depth autoscaler with hysteresis and warm-up awareness.

    The event loop reports the observed queue depth (requests waiting in
    open batches plus requests in flight on the shards) at every arrival.
    When the per-active-shard depth stays above ``scale_up_depth`` for
    ``hysteresis_observations`` consecutive observations, one shard is
    activated; when it stays below ``scale_down_depth`` for as many
    observations, one is drained.  Depths inside the dead band reset both
    streaks, which is what makes the shard count stable under constant load.

    Args:
        min_shards: lower bound of the active set (>= 1).
        max_shards: upper bound of the active set (>= ``min_shards``).
        scale_up_depth: per-shard queue depth that starts an up streak.
        scale_down_depth: per-shard queue depth that starts a down streak
            (must be strictly below ``scale_up_depth`` to form a dead band).
        hysteresis_observations: consecutive breaches required to act.
        warmup_seconds: warm-up charged to a newly activated shard; ``None``
            defers to the shard's own ``warmup_seconds`` (bitstream load for
            the AutoGNN variants, 0 for the software baselines).
        shed_memory_seconds: how long a *shed* arrival keeps counting as
            demand pressure in the queue-depth signal.  Without it, heavy
            shedding hides overload from the autoscaler entirely (rejected
            requests never enter the queue), and the cluster can wedge at
            ``min_shards`` while shedding nearly everything.
    """

    def __init__(
        self,
        min_shards: int = 1,
        max_shards: int = 8,
        scale_up_depth: float = 4.0,
        scale_down_depth: float = 1.0,
        hysteresis_observations: int = 3,
        warmup_seconds: Optional[float] = None,
        shed_memory_seconds: float = 1.0,
    ) -> None:
        if min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if max_shards < min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if scale_down_depth < 0 or scale_up_depth <= scale_down_depth:
            raise ValueError("need 0 <= scale_down_depth < scale_up_depth")
        if hysteresis_observations < 1:
            raise ValueError("hysteresis_observations must be >= 1")
        if warmup_seconds is not None and warmup_seconds < 0:
            raise ValueError("warmup_seconds must be non-negative")
        if shed_memory_seconds < 0:
            raise ValueError("shed_memory_seconds must be non-negative")
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.scale_up_depth = scale_up_depth
        self.scale_down_depth = scale_down_depth
        self.hysteresis_observations = hysteresis_observations
        self.warmup_seconds = warmup_seconds
        self.shed_memory_seconds = shed_memory_seconds
        self.active = min_shards
        self.events: List[ScalingEvent] = []
        self._above = 0
        self._below = 0

    def start(self, now_seconds: float = 0.0) -> int:
        """Reset to the initial active set and record the starting point."""
        self.active = self.min_shards
        self._above = 0
        self._below = 0
        self.events = [ScalingEvent(now_seconds, self.active, "init")]
        return self.active

    def observe(self, now_seconds: float, queue_depth: float) -> int:
        """Feed one queue-depth observation; returns the new active count."""
        per_shard = queue_depth / max(self.active, 1)
        if per_shard > self.scale_up_depth:
            self._above += 1
            self._below = 0
        elif per_shard < self.scale_down_depth:
            self._below += 1
            self._above = 0
        else:
            self._above = 0
            self._below = 0
        if self._above >= self.hysteresis_observations and self.active < self.max_shards:
            self.active += 1
            self._above = 0
            self._below = 0
            self.events.append(ScalingEvent(now_seconds, self.active, "scale-up"))
        elif self._below >= self.hysteresis_observations and self.active > self.min_shards:
            self.active -= 1
            self._above = 0
            self._below = 0
            self.events.append(ScalingEvent(now_seconds, self.active, "scale-down"))
        return self.active

    def timeline(self) -> List[ScalingEvent]:
        """The scaling history, oldest first."""
        return list(self.events)


class ServingController:
    """Bundle an SLO, admission control and an autoscaler for one cluster.

    Convenience facade over
    :meth:`~repro.serving.cluster.ShardedServiceCluster.serve_online`: builds
    the admission controller from the policy and wires everything into the
    cluster's event loop.  ``slo=None`` disables shedding (the run is then
    only scored against the SLO if one is given), ``autoscaler=None`` keeps
    every shard active throughout.
    """

    def __init__(
        self,
        cluster,
        slo: Optional[SLOPolicy] = None,
        autoscaler: Optional[Autoscaler] = None,
        record_decisions: bool = True,
    ) -> None:
        if autoscaler is not None and autoscaler.max_shards > cluster.num_shards:
            raise ValueError(
                f"autoscaler max_shards ({autoscaler.max_shards}) exceeds the "
                f"cluster's shard count ({cluster.num_shards})"
            )
        self.cluster = cluster
        self.slo = slo
        self.autoscaler = autoscaler
        self.admission = (
            AdmissionController(slo, record_decisions=record_decisions)
            if slo is not None
            else None
        )

    def serve(self, source):
        """Drive ``source`` through the cluster under this control plane."""
        return self.cluster.serve_online(
            source,
            slo=self.slo,
            admission=self.admission,
            autoscaler=self.autoscaler,
        )
