"""Batch scheduler: coalesce compatible requests into batched preprocessing.

Requests whose workloads agree on everything except the seed-batch size (see
:meth:`~repro.system.workload.WorkloadProfile.batch_key`) can share one
preprocessing pass: their seed sets are concatenated, so the batched pass is
the same workload with the batch sizes summed — exactly what the vectorized
samplers' batch APIs (``CSCGraph.in_neighbors_batch``) exploit on the
functional path, and what the analytic models price through ``batch_size``.

The scheduler implements the classic size-or-timeout policy: a batch closes
as soon as it reaches ``max_batch_size`` (ready at the filling request's
arrival) or when ``max_wait_seconds`` elapse after its first request arrived
(ready at that deadline), whichever comes first.  With ``max_batch_size=1``
every request becomes its own batch, ready at its own arrival, which is the
contract the 1-shard identity test leans on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.serving.requests import InferenceRequest, RequestTrace
from repro.system.workload import WorkloadProfile


@dataclass
class RequestBatch:
    """A group of compatible requests served by one preprocessing pass.

    Attributes:
        requests: member requests in arrival order.
        ready_seconds: simulated time at which the batch closed and became
            dispatchable (arrival of the filling request, or the batching
            timeout deadline).
    """

    requests: List[InferenceRequest]
    ready_seconds: float

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def key(self) -> Hashable:
        """The compatibility key all member workloads share."""
        return self.requests[0].workload.batch_key

    @property
    def workload(self) -> WorkloadProfile:
        """The merged workload of the batch: member batch sizes summed."""
        base = self.requests[0].workload
        total = sum(request.workload.batch_size for request in self.requests)
        return base.with_batch_size(total)

    @property
    def first_arrival_seconds(self) -> float:
        """Arrival time of the earliest member request."""
        return self.requests[0].arrival_seconds

    def batching_delay(self, request: InferenceRequest) -> float:
        """Time ``request`` spent waiting for its batch to close."""
        return self.ready_seconds - request.arrival_seconds


class BatchScheduler:
    """Size-or-timeout batching over a request trace.

    Args:
        max_batch_size: maximum requests coalesced into one pass (>= 1).
        max_wait_seconds: how long the first request of a batch may wait for
            companions before the batch closes anyway (>= 0; 0 disables
            cross-request batching unless arrivals coincide exactly).
        tenant_weights: enables weighted-fair batch formation.  A mapping of
            tenant name to weight; a tenant's slot quantum per batch is its
            weighted share of ``max_batch_size`` (unlisted tenants weigh
            1.0 against the listed total).  ``None`` (the default) keeps
            the plain FIFO fill — single-tenant behaviour is unchanged.
            See :class:`TenantFairBatcher` for the deficit round-robin
            mechanics.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_wait_seconds: float = 0.0,
        tenant_weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        if tenant_weights is not None:
            for tenant, weight in tenant_weights.items():
                if weight <= 0:
                    raise ValueError(f"weight for tenant {tenant!r} must be positive")
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.tenant_weights = dict(tenant_weights) if tenant_weights is not None else None

    @property
    def fair(self) -> bool:
        """Whether weighted-fair (tenant-aware) batch formation is enabled."""
        return self.tenant_weights is not None

    def fair_batcher(self) -> "TenantFairBatcher":
        """A fresh fair-batching state machine for one serving run."""
        if not self.fair:
            raise ValueError("fair_batcher() requires tenant_weights")
        return TenantFairBatcher(self)

    def schedule(self, trace: RequestTrace) -> List[RequestBatch]:
        """Group the trace into batches, ordered by the time they close.

        Deterministic: depends only on the trace and the scheduler's
        parameters, never on cluster state, so the same trace produces the
        same batches regardless of how many shards later serve them.  In
        fair mode the batches come from :class:`TenantFairBatcher`, in
        closure order (the same order the online loops dispatch).
        """
        if self.fair:
            return self._schedule_fair(trace)
        open_batches: Dict[Hashable, Tuple[List[InferenceRequest], float]] = {}
        closed: List[RequestBatch] = []

        def close(key: Hashable, ready_seconds: float) -> None:
            members, _ = open_batches.pop(key)
            closed.append(RequestBatch(requests=members, ready_seconds=ready_seconds))

        for request in trace:
            now = request.arrival_seconds
            # Timers of batches whose deadline passed before this arrival fire
            # first, in deadline order, so ready times stay monotone.
            expired = sorted(
                (deadline, key)
                for key, (_, deadline) in open_batches.items()
                if deadline <= now
            )
            for deadline, key in expired:
                close(key, deadline)

            key = request.workload.batch_key
            if key not in open_batches:
                open_batches[key] = ([], now + self.max_wait_seconds)
            members, deadline = open_batches[key]
            members.append(request)
            if len(members) >= self.max_batch_size:
                close(key, now)

        # Remaining batches wait out their timers (the trace has ended, so no
        # filler request can close them early).
        for deadline, key in sorted(
            (deadline, key) for key, (_, deadline) in open_batches.items()
        ):
            close(key, deadline)

        closed.sort(key=lambda batch: (batch.ready_seconds, batch.requests[0].request_id))
        return closed

    def _schedule_fair(self, trace: RequestTrace) -> List[RequestBatch]:
        """Offline fair-mode scheduling: drive the batcher over the trace.

        Event order matches the online loops exactly — deadlines at or
        before an arrival fire first — so an uncontrolled online replay of
        the same trace forms identical batches.
        """
        batcher = self.fair_batcher()
        closed: List[RequestBatch] = []
        for request in trace:
            now = request.arrival_seconds
            while True:
                expiring = batcher.peek_deadline()
                if expiring is None or expiring[0] > now:
                    break
                closed.extend(batcher.fire_deadline(expiring))
            closed.extend(batcher.add(request, now))
        while True:
            expiring = batcher.peek_deadline()
            if expiring is None:
                break
            closed.extend(batcher.fire_deadline(expiring))
        return closed

    def schedule_fast(self, trace: RequestTrace) -> List[RequestBatch]:
        """Array-level batch formation, equivalent to :meth:`schedule`.

        Batch membership under the size-or-timeout policy is independent per
        compatibility key: a key's arrival subsequence chunks greedily — a
        batch opened at ``t0`` absorbs same-key arrivals strictly before
        ``t0 + max_wait_seconds`` (an arrival exactly at the deadline fires
        the timer first and starts the next batch, like the event loop's
        tie-break) up to ``max_batch_size``, closing at the filling member's
        arrival or at the deadline.  Each chunk boundary is one
        ``searchsorted`` on the key's timestamp array instead of a per-event
        sweep over all open batches, and the closed batches are sorted by
        the same ``(ready, first request id)`` order ``schedule`` produces
        — the reference/fast equivalence suite asserts batch-for-batch
        equality between the two.

        Fair mode has no array-level fast path (membership depends on the
        deficit state, not just per-key arrival order), so it delegates to
        the shared batcher sweep — both engines then run the identical
        code, which keeps them byte-identical by construction.
        """
        if self.fair:
            return self._schedule_fair(trace)
        arrivals, workload_index, pool, _, _, _ = trace.arrays()
        requests = trace.requests
        key_of_slot = [workload.batch_key for workload in pool]
        groups: Dict[Hashable, List[int]] = {}
        for position, slot in enumerate(workload_index.tolist()):
            groups.setdefault(key_of_slot[slot], []).append(position)

        closed: List[RequestBatch] = []
        wait = self.max_wait_seconds
        cap = self.max_batch_size
        for positions in groups.values():
            times = arrivals[np.asarray(positions, dtype=np.int64)]
            member_times = times.tolist()
            count = len(positions)
            start = 0
            while start < count:
                deadline = member_times[start] + wait
                boundary = int(np.searchsorted(times, deadline, side="left"))
                boundary = max(boundary, start + 1)
                if boundary - start >= cap:
                    end = start + cap
                    ready = member_times[end - 1]
                else:
                    end = boundary
                    ready = deadline
                closed.append(
                    RequestBatch(
                        requests=[requests[p] for p in positions[start:end]],
                        ready_seconds=ready,
                    )
                )
                start = end
        closed.sort(key=lambda batch: (batch.ready_seconds, batch.requests[0].request_id))
        return closed


@dataclass
class _OpenFairBatch:
    """One forming batch of the fair batcher (per compatibility key)."""

    members: List[InferenceRequest] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    deadline: float = 0.0


class TenantFairBatcher:
    """Weighted-fair (deficit round-robin) batch formation for one run.

    The plain size-or-timeout policy fills batches strictly first-come,
    first-served, so one heavy tenant's burst occupies every slot of every
    forming batch and a batch-compatible light tenant queues behind the
    whole burst.  The fair batcher bounds that: each tenant holds a *slot
    quantum* per batch — its weighted share of ``max_batch_size`` — backed
    by a per-tenant **deficit counter** that is granted one quantum every
    time a batch opens (capped at two quanta so idle tenants cannot hoard
    entitlement).  An arriving request joins the open batch only while its
    tenant has deficit credit; beyond that it waits in its tenant's
    FIFO spill queue.

    When a batch closes (size or timeout), spilled requests reseed the next
    batch by deficit round-robin over tenants in sorted-name order.  The
    reseed is **work-conserving**: if every spilling tenant has exhausted
    its credit and slots remain, the leftover slots are filled round-robin
    anyway — fairness shapes slot *allocation under contention*, it never
    idles capacity (a lone heavy tenant batches exactly as in FIFO mode).
    A reseeded batch that fills to the cap closes immediately at the same
    instant and cascades.

    Everything is event-local and deterministic, so the offline scheduler
    sweep and both online engines drive one identical state machine.
    """

    def __init__(self, scheduler: BatchScheduler) -> None:
        if scheduler.tenant_weights is None:
            raise ValueError("TenantFairBatcher requires tenant_weights")
        self.cap = scheduler.max_batch_size
        self.wait = scheduler.max_wait_seconds
        self.weights = dict(scheduler.tenant_weights)
        self._total_weight = sum(self.weights.values()) or 1.0
        self._open: Dict[Hashable, _OpenFairBatch] = {}
        self._spill: Dict[Hashable, Dict[str, Deque[InferenceRequest]]] = {}
        self._deficit: Dict[Hashable, Dict[str, float]] = {}
        self._pending = 0

    # ------------------------------------------------------------- quanta
    def quantum(self, tenant: str) -> float:
        """Slot entitlement of ``tenant`` per batch (>= 1 slot)."""
        weight = self.weights.get(tenant, 1.0)
        return max(1.0, self.cap * weight / self._total_weight)

    @property
    def pending_count(self) -> int:
        """Requests waiting in open batches or spill queues."""
        return self._pending

    def open_members(self, key: Hashable) -> Optional[List[InferenceRequest]]:
        """Members of the forming batch for ``key`` (None when no batch)."""
        batch = self._open.get(key)
        return batch.members if batch is not None else None

    def can_join(self, key: Hashable, tenant: str) -> bool:
        """Whether a ``tenant`` arrival would join ``key``'s forming batch.

        False when the tenant's spill queue is non-empty, the batch is
        full, or the tenant's deficit credit is exhausted — exactly the
        conditions under which :meth:`add` would spill the request.  Used
        by batching-aware admission so a request headed for the spill
        queue is priced at its full standalone cost, not the marginal
        merged-batch increment it will not get.
        """
        batch = self._open.get(key)
        if batch is None or len(batch.members) >= self.cap:
            return False
        spill = self._spill.get(key)
        if spill is not None and spill.get(tenant):
            return False
        return self._credit(key, tenant) >= 1.0

    # ------------------------------------------------------------- events
    def _grant(self, key: Hashable) -> None:
        """Grant one quantum of deficit to every tenant known to ``key``."""
        deficits = self._deficit.setdefault(key, {})
        spill = self._spill.get(key, {})
        for tenant in set(deficits) | set(spill):
            quantum = self.quantum(tenant)
            if spill.get(tenant):
                deficits[tenant] = min(
                    deficits.get(tenant, 0.0) + quantum, 2.0 * quantum
                )
            else:
                deficits[tenant] = quantum

    def _credit(self, key: Hashable, tenant: str) -> float:
        deficits = self._deficit.setdefault(key, {})
        if tenant not in deficits:
            deficits[tenant] = self.quantum(tenant)
        return deficits[tenant]

    def add(self, request: InferenceRequest, now: float) -> List[RequestBatch]:
        """Feed one arrival; returns the batches it caused to close."""
        key = request.workload.batch_key
        batch = self._open.get(key)
        if batch is None:
            batch = _OpenFairBatch(deadline=now + self.wait)
            self._open[key] = batch
            self._grant(key)
        tenant = request.tenant
        spill = self._spill.setdefault(key, {})
        queue = spill.get(tenant)
        self._pending += 1
        if (
            (queue is None or not queue)
            and len(batch.members) < self.cap
            and self._credit(key, tenant) >= 1.0
        ):
            self._deficit[key][tenant] -= 1.0
            batch.members.append(request)
            batch.counts[tenant] = batch.counts.get(tenant, 0) + 1
            if len(batch.members) >= self.cap:
                return self._close(key, now)
            return []
        if queue is None:
            queue = deque()
            spill[tenant] = queue
        queue.append(request)
        return []

    def peek_deadline(self) -> Optional[Tuple[float, int, Hashable]]:
        """Earliest ``(deadline, first member id, key)`` among open batches."""
        best: Optional[Tuple[float, int, Hashable]] = None
        for key, batch in self._open.items():
            entry = (batch.deadline, batch.members[0].request_id, key)
            if best is None or entry[:2] < best[:2]:
                best = entry
        return best

    def fire_deadline(
        self, expiring: Optional[Tuple[float, int, Hashable]] = None
    ) -> List[RequestBatch]:
        """Close the batch whose deadline is earliest (cascading reseeds).

        Callers that already hold the :meth:`peek_deadline` result pass it
        in to skip a second scan over the open batches.
        """
        if expiring is None:
            expiring = self.peek_deadline()
        if expiring is None:
            raise ValueError("no open batch to expire")
        deadline, _, key = expiring
        return self._close(key, deadline)

    def _close(self, key: Hashable, ready: float) -> List[RequestBatch]:
        """Close the open batch for ``key`` at ``ready`` and reseed."""
        closed: List[RequestBatch] = []
        batch = self._open.pop(key)
        self._pending -= len(batch.members)
        closed.append(RequestBatch(requests=batch.members, ready_seconds=ready))
        spill = self._spill.get(key)
        while spill and any(spill.values()):
            reseed = _OpenFairBatch(deadline=ready + self.wait)
            self._open[key] = reseed
            self._grant(key)
            deficits = self._deficit[key]
            tenants = sorted(t for t, queue in spill.items() if queue)
            # Credit-respecting passes first, then work-conserving fill.
            for respect_credit in (True, False):
                progressed = True
                while progressed and len(reseed.members) < self.cap:
                    progressed = False
                    for tenant in tenants:
                        queue = spill.get(tenant)
                        if not queue or len(reseed.members) >= self.cap:
                            continue
                        if respect_credit and deficits.get(tenant, 0.0) < 1.0:
                            continue
                        if respect_credit:
                            deficits[tenant] -= 1.0
                        reseed.members.append(queue.popleft())
                        reseed.counts[tenant] = reseed.counts.get(tenant, 0) + 1
                        progressed = True
                if len(reseed.members) >= self.cap:
                    break
            if len(reseed.members) >= self.cap:
                self._open.pop(key)
                self._pending -= len(reseed.members)
                closed.append(RequestBatch(requests=reseed.members, ready_seconds=ready))
                continue
            # Partially reseeded batch stays open until its own deadline.
            break
        if not self._open.get(key):
            # No forming batch left: clear the key's bookkeeping so tenants
            # start from a fresh quantum next time traffic appears.
            self._open.pop(key, None)
            if spill is not None and not any(spill.values()):
                self._spill.pop(key, None)
                self._deficit.pop(key, None)
        return closed
