"""Batch scheduler: coalesce compatible requests into batched preprocessing.

Requests whose workloads agree on everything except the seed-batch size (see
:meth:`~repro.system.workload.WorkloadProfile.batch_key`) can share one
preprocessing pass: their seed sets are concatenated, so the batched pass is
the same workload with the batch sizes summed — exactly what the vectorized
samplers' batch APIs (``CSCGraph.in_neighbors_batch``) exploit on the
functional path, and what the analytic models price through ``batch_size``.

The scheduler implements the classic size-or-timeout policy: a batch closes
as soon as it reaches ``max_batch_size`` (ready at the filling request's
arrival) or when ``max_wait_seconds`` elapse after its first request arrived
(ready at that deadline), whichever comes first.  With ``max_batch_size=1``
every request becomes its own batch, ready at its own arrival, which is the
contract the 1-shard identity test leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.serving.requests import InferenceRequest, RequestTrace
from repro.system.workload import WorkloadProfile


@dataclass
class RequestBatch:
    """A group of compatible requests served by one preprocessing pass.

    Attributes:
        requests: member requests in arrival order.
        ready_seconds: simulated time at which the batch closed and became
            dispatchable (arrival of the filling request, or the batching
            timeout deadline).
    """

    requests: List[InferenceRequest]
    ready_seconds: float

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def key(self) -> Hashable:
        """The compatibility key all member workloads share."""
        return self.requests[0].workload.batch_key

    @property
    def workload(self) -> WorkloadProfile:
        """The merged workload of the batch: member batch sizes summed."""
        base = self.requests[0].workload
        total = sum(request.workload.batch_size for request in self.requests)
        return base.with_batch_size(total)

    @property
    def first_arrival_seconds(self) -> float:
        """Arrival time of the earliest member request."""
        return self.requests[0].arrival_seconds

    def batching_delay(self, request: InferenceRequest) -> float:
        """Time ``request`` spent waiting for its batch to close."""
        return self.ready_seconds - request.arrival_seconds


class BatchScheduler:
    """Size-or-timeout batching over a request trace.

    Args:
        max_batch_size: maximum requests coalesced into one pass (>= 1).
        max_wait_seconds: how long the first request of a batch may wait for
            companions before the batch closes anyway (>= 0; 0 disables
            cross-request batching unless arrivals coincide exactly).
    """

    def __init__(self, max_batch_size: int = 8, max_wait_seconds: float = 0.0) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds

    def schedule(self, trace: RequestTrace) -> List[RequestBatch]:
        """Group the trace into batches, ordered by the time they close.

        Deterministic: depends only on the trace and the scheduler's two
        parameters, never on cluster state, so the same trace produces the
        same batches regardless of how many shards later serve them.
        """
        open_batches: Dict[Hashable, Tuple[List[InferenceRequest], float]] = {}
        closed: List[RequestBatch] = []

        def close(key: Hashable, ready_seconds: float) -> None:
            members, _ = open_batches.pop(key)
            closed.append(RequestBatch(requests=members, ready_seconds=ready_seconds))

        for request in trace:
            now = request.arrival_seconds
            # Timers of batches whose deadline passed before this arrival fire
            # first, in deadline order, so ready times stay monotone.
            expired = sorted(
                (deadline, key)
                for key, (_, deadline) in open_batches.items()
                if deadline <= now
            )
            for deadline, key in expired:
                close(key, deadline)

            key = request.workload.batch_key
            if key not in open_batches:
                open_batches[key] = ([], now + self.max_wait_seconds)
            members, deadline = open_batches[key]
            members.append(request)
            if len(members) >= self.max_batch_size:
                close(key, now)

        # Remaining batches wait out their timers (the trace has ended, so no
        # filler request can close them early).
        for deadline, key in sorted(
            (deadline, key) for key, (_, deadline) in open_batches.items()
        ):
            close(key, deadline)

        closed.sort(key=lambda batch: (batch.ready_seconds, batch.requests[0].request_id))
        return closed

    def schedule_fast(self, trace: RequestTrace) -> List[RequestBatch]:
        """Array-level batch formation, equivalent to :meth:`schedule`.

        Batch membership under the size-or-timeout policy is independent per
        compatibility key: a key's arrival subsequence chunks greedily — a
        batch opened at ``t0`` absorbs same-key arrivals strictly before
        ``t0 + max_wait_seconds`` (an arrival exactly at the deadline fires
        the timer first and starts the next batch, like the event loop's
        tie-break) up to ``max_batch_size``, closing at the filling member's
        arrival or at the deadline.  Each chunk boundary is one
        ``searchsorted`` on the key's timestamp array instead of a per-event
        sweep over all open batches, and the closed batches are sorted by
        the same ``(ready, first request id)`` order ``schedule`` produces
        — the reference/fast equivalence suite asserts batch-for-batch
        equality between the two.
        """
        arrivals, workload_index, pool, _ = trace.arrays()
        requests = trace.requests
        key_of_slot = [workload.batch_key for workload in pool]
        groups: Dict[Hashable, List[int]] = {}
        for position, slot in enumerate(workload_index.tolist()):
            groups.setdefault(key_of_slot[slot], []).append(position)

        closed: List[RequestBatch] = []
        wait = self.max_wait_seconds
        cap = self.max_batch_size
        for positions in groups.values():
            times = arrivals[np.asarray(positions, dtype=np.int64)]
            member_times = times.tolist()
            count = len(positions)
            start = 0
            while start < count:
                deadline = member_times[start] + wait
                boundary = int(np.searchsorted(times, deadline, side="left"))
                boundary = max(boundary, start + 1)
                if boundary - start >= cap:
                    end = start + cap
                    ready = member_times[end - 1]
                else:
                    end = boundary
                    ready = deadline
                closed.append(
                    RequestBatch(
                        requests=[requests[p] for p in positions[start:end]],
                        ready_seconds=ready,
                    )
                )
                start = end
        closed.sort(key=lambda batch: (batch.ready_seconds, batch.requests[0].request_id))
        return closed
