"""Batch scheduler: coalesce compatible requests into batched preprocessing.

Requests whose workloads agree on everything except the seed-batch size (see
:meth:`~repro.system.workload.WorkloadProfile.batch_key`) can share one
preprocessing pass: their seed sets are concatenated, so the batched pass is
the same workload with the batch sizes summed — exactly what the vectorized
samplers' batch APIs (``CSCGraph.in_neighbors_batch``) exploit on the
functional path, and what the analytic models price through ``batch_size``.

The scheduler implements the classic size-or-timeout policy: a batch closes
as soon as it reaches ``max_batch_size`` (ready at the filling request's
arrival) or when ``max_wait_seconds`` elapse after its first request arrived
(ready at that deadline), whichever comes first.  With ``max_batch_size=1``
every request becomes its own batch, ready at its own arrival, which is the
contract the 1-shard identity test leans on.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Mapping, NamedTuple, Optional, Tuple

import numpy as np

from repro.serving.requests import InferenceRequest, RequestTrace
from repro.system.workload import WorkloadProfile


class BatchPlan(NamedTuple):
    """Array-level batch formation result (the chunked engine's working set).

    One row per batch, in dispatch order — the same ``(ready_seconds,
    first request id)`` order :meth:`BatchScheduler.schedule` closes batches
    in.  Member rows are *positions* into the trace's structure-of-arrays
    view (:meth:`~repro.serving.requests.RequestTrace.arrays`), so a plan
    never materializes request objects.

    Attributes:
        member_positions: int64 trace positions, concatenated per batch;
            batch ``b`` owns ``member_positions[batch_offsets[b]:
            batch_offsets[b + 1]]``, in arrival order.
        batch_offsets: int64 prefix offsets, length ``num_batches + 1``.
        ready_seconds: float64 close time per batch.
        base_slot: int64 workload-pool slot of each batch's first member
            (the profile the merged workload derives from).
        merged_sizes: int64 summed member batch sizes per batch (the merged
            workload's ``batch_size``).
    """

    member_positions: np.ndarray
    batch_offsets: np.ndarray
    ready_seconds: np.ndarray
    base_slot: np.ndarray
    merged_sizes: np.ndarray

    @property
    def num_batches(self) -> int:
        return len(self.ready_seconds)


@dataclass
class RequestBatch:
    """A group of compatible requests served by one preprocessing pass.

    Attributes:
        requests: member requests in arrival order.
        ready_seconds: simulated time at which the batch closed and became
            dispatchable (arrival of the filling request, or the batching
            timeout deadline).
    """

    requests: List[InferenceRequest]
    ready_seconds: float

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def key(self) -> Hashable:
        """The compatibility key all member workloads share."""
        return self.requests[0].workload.batch_key

    @property
    def workload(self) -> WorkloadProfile:
        """The merged workload of the batch: member batch sizes summed."""
        base = self.requests[0].workload
        total = sum(request.workload.batch_size for request in self.requests)
        return base.with_batch_size(total)

    @property
    def first_arrival_seconds(self) -> float:
        """Arrival time of the earliest member request."""
        return self.requests[0].arrival_seconds

    def batching_delay(self, request: InferenceRequest) -> float:
        """Time ``request`` spent waiting for its batch to close."""
        return self.ready_seconds - request.arrival_seconds


class BatchScheduler:
    """Size-or-timeout batching over a request trace.

    Args:
        max_batch_size: maximum requests coalesced into one pass (>= 1).
        max_wait_seconds: how long the first request of a batch may wait for
            companions before the batch closes anyway (>= 0; 0 disables
            cross-request batching unless arrivals coincide exactly).
        tenant_weights: enables weighted-fair batch formation.  A mapping of
            tenant name to weight; a tenant's slot quantum per batch is its
            weighted share of ``max_batch_size`` (unlisted tenants weigh
            1.0 against the listed total).  ``None`` (the default) keeps
            the plain FIFO fill — single-tenant behaviour is unchanged.
            See :class:`TenantFairBatcher` for the deficit round-robin
            mechanics.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_wait_seconds: float = 0.0,
        tenant_weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        if tenant_weights is not None:
            for tenant, weight in tenant_weights.items():
                if weight <= 0:
                    raise ValueError(f"weight for tenant {tenant!r} must be positive")
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.tenant_weights = dict(tenant_weights) if tenant_weights is not None else None

    @property
    def fair(self) -> bool:
        """Whether weighted-fair (tenant-aware) batch formation is enabled."""
        return self.tenant_weights is not None

    def fair_batcher(self) -> "TenantFairBatcher":
        """A fresh fair-batching state machine for one serving run."""
        if not self.fair:
            raise ValueError("fair_batcher() requires tenant_weights")
        return TenantFairBatcher(self)

    def schedule(self, trace: RequestTrace) -> List[RequestBatch]:
        """Group the trace into batches, ordered by the time they close.

        Deterministic: depends only on the trace and the scheduler's
        parameters, never on cluster state, so the same trace produces the
        same batches regardless of how many shards later serve them.  In
        fair mode the batches come from :class:`TenantFairBatcher`, in
        closure order (the same order the online loops dispatch).
        """
        if self.fair:
            return self._schedule_fair(trace)
        open_batches: Dict[Hashable, Tuple[List[InferenceRequest], float]] = {}
        closed: List[RequestBatch] = []

        def close(key: Hashable, ready_seconds: float) -> None:
            members, _ = open_batches.pop(key)
            closed.append(RequestBatch(requests=members, ready_seconds=ready_seconds))

        for request in trace:
            now = request.arrival_seconds
            # Timers of batches whose deadline passed before this arrival fire
            # first, in deadline order, so ready times stay monotone.
            expired = sorted(
                (deadline, key)
                for key, (_, deadline) in open_batches.items()
                if deadline <= now
            )
            for deadline, key in expired:
                close(key, deadline)

            key = request.workload.batch_key
            if key not in open_batches:
                open_batches[key] = ([], now + self.max_wait_seconds)
            members, deadline = open_batches[key]
            members.append(request)
            if len(members) >= self.max_batch_size:
                close(key, now)

        # Remaining batches wait out their timers (the trace has ended, so no
        # filler request can close them early).
        for deadline, key in sorted(
            (deadline, key) for key, (_, deadline) in open_batches.items()
        ):
            close(key, deadline)

        closed.sort(key=lambda batch: (batch.ready_seconds, batch.requests[0].request_id))
        return closed

    def _schedule_fair(self, trace: RequestTrace) -> List[RequestBatch]:
        """Offline fair-mode scheduling: drive the batcher over the trace.

        Event order matches the online loops exactly — deadlines at or
        before an arrival fire first — so an uncontrolled online replay of
        the same trace forms identical batches.
        """
        batcher = self.fair_batcher()
        closed: List[RequestBatch] = []
        for request in trace:
            now = request.arrival_seconds
            while True:
                expiring = batcher.peek_deadline()
                if expiring is None or expiring[0] > now:
                    break
                closed.extend(batcher.fire_deadline(expiring))
            closed.extend(batcher.add(request, now))
        while True:
            expiring = batcher.peek_deadline()
            if expiring is None:
                break
            closed.extend(batcher.fire_deadline(expiring))
        return closed

    def schedule_fast(self, trace: RequestTrace) -> List[RequestBatch]:
        """Array-level batch formation, equivalent to :meth:`schedule`.

        A thin object-materializing wrapper over :meth:`schedule_arrays`:
        the plan computes membership and ready times on the trace's SoA
        view, and this method builds the :class:`RequestBatch` objects the
        per-event engine dispatches.  Because the chunked engine consumes
        the *same* plan directly, the two fast paths cannot form different
        batches — and the reference/fast equivalence suite asserts
        batch-for-batch equality against :meth:`schedule`.

        Fair mode has no array-level fast path (membership depends on the
        deficit state, not just per-key arrival order), so it delegates to
        the shared batcher sweep — both engines then run the identical
        code, which keeps them byte-identical by construction.
        """
        if self.fair:
            return self._schedule_fair(trace)
        plan = self.schedule_arrays(trace)
        requests = trace.requests
        positions = plan.member_positions.tolist()
        offsets = plan.batch_offsets.tolist()
        ready = plan.ready_seconds.tolist()
        return [
            RequestBatch(
                requests=[requests[p] for p in positions[offsets[b]:offsets[b + 1]]],
                ready_seconds=ready[b],
            )
            for b in range(len(ready))
        ]

    def schedule_arrays(self, trace: RequestTrace) -> BatchPlan:
        """Batch formation on the trace's SoA view, no request objects.

        The array-level core behind :meth:`schedule_fast` and the chunked
        serving engine: batch membership under the size-or-timeout policy is
        independent per compatibility key, so each key's arrival
        subsequence chunks greedily — a batch opened at ``t0`` absorbs
        same-key arrivals strictly before ``t0 + max_wait_seconds`` (an
        arrival exactly at the deadline fires the timer first and starts
        the next batch, the event loop's tie-break) up to
        ``max_batch_size``, closing at the filling member's arrival or at
        the deadline.  Each chunk boundary is one bisection *from the
        chunk's start* (not over the key's whole timestamp array), and the
        plan rows are sorted by the same ``(ready, first request id)``
        order :meth:`schedule` produces.

        Fair mode has no array-level path (membership depends on the
        deficit state, not just per-key arrival order) and raises; callers
        gate on :attr:`fair` and fall back to the shared batcher sweep.
        """
        if self.fair:
            raise ValueError("schedule_arrays() does not support fair mode")
        arrays = trace.arrays()
        arrivals = arrays.arrival_seconds
        workload_index = arrays.workload_index
        pool = arrays.workload_pool
        num_requests = len(arrivals)

        # Map workload-pool slots to compatibility-key ids (slots that differ
        # only in batch size share a key and therefore a group).
        key_id_of: Dict[Hashable, int] = {}
        keyid_of_slot = np.empty(len(pool), dtype=np.int64)
        for slot, workload in enumerate(pool):
            key = workload.batch_key
            key_id = key_id_of.setdefault(key, len(key_id_of))
            keyid_of_slot[slot] = key_id
        if len(key_id_of) <= 1:
            order = np.arange(num_requests, dtype=np.int64)
            group_starts = [0] if num_requests else []
            group_ends = [num_requests] if num_requests else []
        else:
            request_keys = keyid_of_slot[workload_index]
            # Stable sort keeps each key's subsequence in arrival order.
            order = np.argsort(request_keys, kind="stable")
            sorted_keys = request_keys[order]
            cuts = (np.flatnonzero(np.diff(sorted_keys)) + 1).tolist()
            group_starts = [0] + cuts
            group_ends = cuts + [num_requests]

        wait = self.max_wait_seconds
        cap = self.max_batch_size
        batch_starts: List[int] = []
        batch_ends: List[int] = []
        ready_list: List[float] = []
        for group_start, group_end in zip(group_starts, group_ends):
            times = arrivals[order[group_start:group_end]].tolist()
            count = group_end - group_start
            start = 0
            while start < count:
                deadline = times[start] + wait
                # Bisect from the chunk's start: an arrival exactly at the
                # deadline belongs to the next batch (side="left").
                boundary = bisect_left(times, deadline, start)
                if boundary <= start:
                    # max_wait_seconds == 0: the opener always joins its own
                    # batch before the timer can fire.
                    boundary = start + 1
                if boundary - start >= cap:
                    end = start + cap
                    ready = times[end - 1]
                else:
                    end = boundary
                    ready = deadline
                batch_starts.append(group_start + start)
                batch_ends.append(group_start + end)
                ready_list.append(ready)
                start = end

        starts = np.asarray(batch_starts, dtype=np.int64)
        ends = np.asarray(batch_ends, dtype=np.int64)
        ready_seconds = np.asarray(ready_list, dtype=np.float64)
        first_positions = order[starts] if len(starts) else starts
        first_ids = arrays.request_ids[first_positions]
        # Dispatch order: (ready, first request id) — ids are unique, so the
        # sort is total and matches the event loop's closure order.
        dispatch = np.lexsort((first_ids, ready_seconds))
        starts, ends, ready_seconds = starts[dispatch], ends[dispatch], ready_seconds[dispatch]
        counts = ends - starts
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # Gather member positions batch-contiguously without a Python loop:
        # element j of batch b reads order[starts[b] + j].
        flat = np.arange(num_requests, dtype=np.int64)
        gather = np.repeat(starts - offsets[:-1], counts) + flat
        member_positions = order[gather]
        base_slot = workload_index[member_positions[offsets[:-1]]] if len(starts) else starts
        sizes_of_slot = np.asarray([w.batch_size for w in pool], dtype=np.int64)
        member_sizes = sizes_of_slot[workload_index[member_positions]]
        merged_sizes = (
            np.add.reduceat(member_sizes, offsets[:-1])
            if len(starts)
            else np.zeros(0, dtype=np.int64)
        )
        return BatchPlan(
            member_positions=member_positions,
            batch_offsets=offsets,
            ready_seconds=ready_seconds,
            base_slot=base_slot,
            merged_sizes=merged_sizes,
        )


@dataclass
class _OpenFairBatch:
    """One forming batch of the fair batcher (per compatibility key)."""

    members: List[InferenceRequest] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    deadline: float = 0.0


class TenantFairBatcher:
    """Weighted-fair (deficit round-robin) batch formation for one run.

    The plain size-or-timeout policy fills batches strictly first-come,
    first-served, so one heavy tenant's burst occupies every slot of every
    forming batch and a batch-compatible light tenant queues behind the
    whole burst.  The fair batcher bounds that: each tenant holds a *slot
    quantum* per batch — its weighted share of ``max_batch_size`` — backed
    by a per-tenant **deficit counter** that is granted one quantum every
    time a batch opens (capped at two quanta so idle tenants cannot hoard
    entitlement).  An arriving request joins the open batch only while its
    tenant has deficit credit; beyond that it waits in its tenant's
    FIFO spill queue.

    When a batch closes (size or timeout), spilled requests reseed the next
    batch by deficit round-robin over tenants in sorted-name order.  The
    reseed is **work-conserving**: if every spilling tenant has exhausted
    its credit and slots remain, the leftover slots are filled round-robin
    anyway — fairness shapes slot *allocation under contention*, it never
    idles capacity (a lone heavy tenant batches exactly as in FIFO mode).
    A reseeded batch that fills to the cap closes immediately at the same
    instant and cascades.

    Everything is event-local and deterministic, so the offline scheduler
    sweep and both online engines drive one identical state machine.
    """

    def __init__(self, scheduler: BatchScheduler) -> None:
        if scheduler.tenant_weights is None:
            raise ValueError("TenantFairBatcher requires tenant_weights")
        self.cap = scheduler.max_batch_size
        self.wait = scheduler.max_wait_seconds
        self.weights = dict(scheduler.tenant_weights)
        self._total_weight = sum(self.weights.values()) or 1.0
        self._open: Dict[Hashable, _OpenFairBatch] = {}
        self._spill: Dict[Hashable, Dict[str, Deque[InferenceRequest]]] = {}
        self._deficit: Dict[Hashable, Dict[str, float]] = {}
        self._pending = 0

    # ------------------------------------------------------------- quanta
    def quantum(self, tenant: str) -> float:
        """Slot entitlement of ``tenant`` per batch (>= 1 slot)."""
        weight = self.weights.get(tenant, 1.0)
        return max(1.0, self.cap * weight / self._total_weight)

    @property
    def pending_count(self) -> int:
        """Requests waiting in open batches or spill queues."""
        return self._pending

    def open_members(self, key: Hashable) -> Optional[List[InferenceRequest]]:
        """Members of the forming batch for ``key`` (None when no batch)."""
        batch = self._open.get(key)
        return batch.members if batch is not None else None

    def can_join(self, key: Hashable, tenant: str) -> bool:
        """Whether a ``tenant`` arrival would join ``key``'s forming batch.

        False when the tenant's spill queue is non-empty, the batch is
        full, or the tenant's deficit credit is exhausted — exactly the
        conditions under which :meth:`add` would spill the request.  Used
        by batching-aware admission so a request headed for the spill
        queue is priced at its full standalone cost, not the marginal
        merged-batch increment it will not get.
        """
        batch = self._open.get(key)
        if batch is None or len(batch.members) >= self.cap:
            return False
        spill = self._spill.get(key)
        if spill is not None and spill.get(tenant):
            return False
        return self._credit(key, tenant) >= 1.0

    # ------------------------------------------------------------- events
    def _grant(self, key: Hashable) -> None:
        """Grant one quantum of deficit to every tenant known to ``key``."""
        deficits = self._deficit.setdefault(key, {})
        spill = self._spill.get(key, {})
        for tenant in set(deficits) | set(spill):
            quantum = self.quantum(tenant)
            if spill.get(tenant):
                deficits[tenant] = min(
                    deficits.get(tenant, 0.0) + quantum, 2.0 * quantum
                )
            else:
                deficits[tenant] = quantum

    def _credit(self, key: Hashable, tenant: str) -> float:
        deficits = self._deficit.setdefault(key, {})
        if tenant not in deficits:
            deficits[tenant] = self.quantum(tenant)
        return deficits[tenant]

    def add(self, request: InferenceRequest, now: float) -> List[RequestBatch]:
        """Feed one arrival; returns the batches it caused to close."""
        key = request.workload.batch_key
        batch = self._open.get(key)
        if batch is None:
            batch = _OpenFairBatch(deadline=now + self.wait)
            self._open[key] = batch
            self._grant(key)
        tenant = request.tenant
        spill = self._spill.setdefault(key, {})
        queue = spill.get(tenant)
        self._pending += 1
        if (
            (queue is None or not queue)
            and len(batch.members) < self.cap
            and self._credit(key, tenant) >= 1.0
        ):
            self._deficit[key][tenant] -= 1.0
            batch.members.append(request)
            batch.counts[tenant] = batch.counts.get(tenant, 0) + 1
            if len(batch.members) >= self.cap:
                return self._close(key, now)
            return []
        if queue is None:
            queue = deque()
            spill[tenant] = queue
        queue.append(request)
        return []

    def peek_deadline(self) -> Optional[Tuple[float, int, Hashable]]:
        """Earliest ``(deadline, first member id, key)`` among open batches."""
        best: Optional[Tuple[float, int, Hashable]] = None
        for key, batch in self._open.items():
            entry = (batch.deadline, batch.members[0].request_id, key)
            if best is None or entry[:2] < best[:2]:
                best = entry
        return best

    def fire_deadline(
        self, expiring: Optional[Tuple[float, int, Hashable]] = None
    ) -> List[RequestBatch]:
        """Close the batch whose deadline is earliest (cascading reseeds).

        Callers that already hold the :meth:`peek_deadline` result pass it
        in to skip a second scan over the open batches.
        """
        if expiring is None:
            expiring = self.peek_deadline()
        if expiring is None:
            raise ValueError("no open batch to expire")
        deadline, _, key = expiring
        return self._close(key, deadline)

    def _close(self, key: Hashable, ready: float) -> List[RequestBatch]:
        """Close the open batch for ``key`` at ``ready`` and reseed."""
        closed: List[RequestBatch] = []
        batch = self._open.pop(key)
        self._pending -= len(batch.members)
        closed.append(RequestBatch(requests=batch.members, ready_seconds=ready))
        spill = self._spill.get(key)
        while spill and any(spill.values()):
            reseed = _OpenFairBatch(deadline=ready + self.wait)
            self._open[key] = reseed
            self._grant(key)
            deficits = self._deficit[key]
            tenants = sorted(t for t, queue in spill.items() if queue)
            # Credit-respecting passes first, then work-conserving fill.
            for respect_credit in (True, False):
                progressed = True
                while progressed and len(reseed.members) < self.cap:
                    progressed = False
                    for tenant in tenants:
                        queue = spill.get(tenant)
                        if not queue or len(reseed.members) >= self.cap:
                            continue
                        if respect_credit and deficits.get(tenant, 0.0) < 1.0:
                            continue
                        if respect_credit:
                            deficits[tenant] -= 1.0
                        reseed.members.append(queue.popleft())
                        reseed.counts[tenant] = reseed.counts.get(tenant, 0) + 1
                        progressed = True
                if len(reseed.members) >= self.cap:
                    break
            if len(reseed.members) >= self.cap:
                self._open.pop(key)
                self._pending -= len(reseed.members)
                closed.append(RequestBatch(requests=reseed.members, ready_seconds=ready))
                continue
            # Partially reseeded batch stays open until its own deadline.
            break
        if not self._open.get(key):
            # No forming batch left: clear the key's bookkeeping so tenants
            # start from a fresh quantum next time traffic appears.
            self._open.pop(key, None)
            if spill is not None and not any(spill.values()):
                self._spill.pop(key, None)
                self._deficit.pop(key, None)
        return closed
