"""Serving layer: request traffic, batching and sharded service clusters.

This package lifts the reproduction from single-pass modelling to a served
traffic regime:

* :mod:`repro.serving.requests` — timestamped requests, the request queue
  and open/closed-loop arrival generators over workload profiles.
* :mod:`repro.serving.scheduler` — size-or-timeout coalescing of compatible
  requests into batched preprocessing passes.
* :mod:`repro.serving.cluster` — N-way replicated GNN services with
  round-robin / least-loaded / locality dispatch and merged cluster reports
  (throughput, latency percentiles, queueing decomposition, utilisation).
"""

from repro.serving.requests import (
    ClosedLoopArrivals,
    InferenceRequest,
    OpenLoopArrivals,
    RequestQueue,
    RequestTrace,
)
from repro.serving.scheduler import BatchScheduler, RequestBatch
from repro.serving.cluster import (
    DISPATCH_POLICIES,
    POLICY_LEAST_LOADED,
    POLICY_LOCALITY,
    POLICY_ROUND_ROBIN,
    ClusterReport,
    ServedRequest,
    ShardedServiceCluster,
    build_reference_clusters,
)

__all__ = [
    "InferenceRequest",
    "RequestTrace",
    "RequestQueue",
    "OpenLoopArrivals",
    "ClosedLoopArrivals",
    "BatchScheduler",
    "RequestBatch",
    "ShardedServiceCluster",
    "ServedRequest",
    "ClusterReport",
    "build_reference_clusters",
    "DISPATCH_POLICIES",
    "POLICY_ROUND_ROBIN",
    "POLICY_LEAST_LOADED",
    "POLICY_LOCALITY",
]
