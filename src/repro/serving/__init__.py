"""Serving layer: request traffic, batching, sharded clusters, control plane.

This package lifts the reproduction from single-pass modelling to a served
traffic regime:

* :mod:`repro.serving.requests` — timestamped, tenant-tagged requests, the
  request queue, open/closed-loop and burst/diurnal (:class:`BurstyArrivals`)
  arrival generators over workload profiles, multi-tenant trace merging
  (:func:`merge_traces`) and the online arrival sources (trace replay,
  co-simulated closed-loop clients).
* :mod:`repro.serving.scheduler` — size-or-timeout coalescing of compatible
  requests into batched preprocessing passes, with optional weighted-fair
  (deficit round-robin) slot allocation across tenants
  (:class:`TenantFairBatcher`).
* :mod:`repro.serving.cluster` — N-way replicated GNN services with
  round-robin / least-loaded / reconfiguration-state-aware locality dispatch,
  an offline trace-replay loop and an online co-simulated event loop, merged
  into cluster reports (throughput, latency percentiles, queueing
  decomposition, utilisation, goodput/shed accounting).
* :mod:`repro.serving.control` — the SLO-aware control plane: per-workload
  latency objectives, per-tenant quotas (:class:`TenantQuota`: guaranteed
  rates, weighted excess shedding, hard caps), predictive / batching-aware
  admission control with graceful degradation
  (:class:`DegradationPolicy`: downgrade to a cheaper quality tier instead
  of shedding) and a hysteresis queue-depth autoscaler with bitstream
  warm-up penalties.
* :mod:`repro.serving.config` — :class:`ServingConfig`, the validated
  configuration object behind ``serve_trace(trace, config=...)`` /
  ``serve_online(source, config=...)``; the legacy per-call keyword
  arguments remain available through a ``DeprecationWarning`` shim.
* :mod:`repro.serving.faults` — deterministic shard failure injection
  (:class:`FaultSchedule`: crash / recover / slowdown events, or a seeded
  :class:`RandomFaults` generator) with drain-and-migrate recovery, retry
  with exponential backoff, and exact served/shed/failed conservation —
  consumed identically by both engines.  The same machinery backs
  *voluntary* drains (:class:`DrainPlanner`): an autoscaler scale-down
  with ``drain=True`` migrates queued work to surviving shards instead of
  stranding it on the deactivated shard.
* :mod:`repro.serving.topology` — :class:`ClusterTopology`, the mapping
  from shards to correlated failure domains (racks, zones).  Domain-level
  fault events (``crash_domain`` / ``recover_domain``) expand against it,
  :class:`RandomFaults` can draw seeded whole-domain outages from a
  :class:`CorrelatedFaults` profile, and dispatch / autoscaler activation /
  drain re-pick become domain-aware (``placement="spread"`` round-robins
  activation across domains).
* :mod:`repro.serving.chaos` — the chaos-sweep invariant harness: seeded
  scenario schedules (whole-domain outages racing autoscaler drains, retry
  storms, recover-at-the-same-instant edges) replayed through both engines,
  asserting request conservation, engine byte-identity, no dispatch onto
  dead or deactivated shards, retry-budget compliance and lease accounting
  on every run (``python -m repro.serving.chaos``).
* :mod:`repro.serving.engine` — the fast serving engine behind
  ``ShardedServiceCluster(engine="fast")`` (the default): serve-transition
  caching, array-level batch formation, shard/deadline heaps and streaming
  report aggregates, byte-identical to the reference loops and >= 5x
  faster on 20k-request traces (100k requests in seconds).
"""

from repro.serving.requests import (
    DEFAULT_TENANT,
    BurstyArrivals,
    ClosedLoopArrivals,
    ClosedLoopClients,
    InferenceRequest,
    OpenLoopArrivals,
    RequestQueue,
    RequestTrace,
    TraceArrays,
    TraceArrivals,
    merge_traces,
)
from repro.serving.scheduler import BatchScheduler, RequestBatch, TenantFairBatcher
from repro.serving.cluster import (
    DISPATCH_POLICIES,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    ENGINES,
    POLICY_LEAST_LOADED,
    POLICY_LOCALITY,
    POLICY_ROUND_ROBIN,
    ClusterReport,
    ReportAggregates,
    ServedRequest,
    ShardedServiceCluster,
    ShedRecord,
    build_reference_clusters,
)
from repro.serving.topology import (
    PLACEMENT_DENSE,
    PLACEMENT_SPREAD,
    PLACEMENTS,
    ClusterTopology,
)
from repro.serving.faults import (
    DOMAIN_FAULT_KINDS,
    FAULT_CRASH,
    FAULT_CRASH_DOMAIN,
    FAULT_KINDS,
    FAULT_RECOVER,
    FAULT_RECOVER_DOMAIN,
    FAULT_SLOWDOWN,
    CorrelatedFaults,
    DomainFaultEvent,
    DomainOutageStats,
    DrainPlanner,
    FaultEvent,
    FaultSchedule,
    FaultStats,
    RandomFaults,
)
from repro.serving.control import (
    AdmissionController,
    AdmissionDecision,
    Autoscaler,
    DegradationPolicy,
    ScalingEvent,
    ServingController,
    SLOPolicy,
    TenantQuota,
)
from repro.serving.config import ServingConfig
from repro.serving.chaos import (
    INVARIANTS,
    ChaosInvariantError,
    ChaosScenario,
    chaos_scenarios,
    run_chaos_sweep,
    run_scenario,
)
from repro.system.workload import QUALITY_DEGRADED, QUALITY_FULL, QUALITY_TIERS

__all__ = [
    "InferenceRequest",
    "RequestTrace",
    "TraceArrays",
    "RequestQueue",
    "DEFAULT_TENANT",
    "OpenLoopArrivals",
    "ClosedLoopArrivals",
    "ClosedLoopClients",
    "BurstyArrivals",
    "merge_traces",
    "TraceArrivals",
    "BatchScheduler",
    "RequestBatch",
    "TenantFairBatcher",
    "TenantQuota",
    "ShardedServiceCluster",
    "ServedRequest",
    "ShedRecord",
    "ClusterReport",
    "ReportAggregates",
    "build_reference_clusters",
    "DISPATCH_POLICIES",
    "ENGINES",
    "ENGINE_REFERENCE",
    "ENGINE_FAST",
    "POLICY_ROUND_ROBIN",
    "POLICY_LEAST_LOADED",
    "POLICY_LOCALITY",
    "ClusterTopology",
    "PLACEMENTS",
    "PLACEMENT_DENSE",
    "PLACEMENT_SPREAD",
    "DrainPlanner",
    "FaultEvent",
    "DomainFaultEvent",
    "CorrelatedFaults",
    "FaultSchedule",
    "FaultStats",
    "DomainOutageStats",
    "RandomFaults",
    "FAULT_CRASH",
    "FAULT_RECOVER",
    "FAULT_SLOWDOWN",
    "FAULT_KINDS",
    "FAULT_CRASH_DOMAIN",
    "FAULT_RECOVER_DOMAIN",
    "DOMAIN_FAULT_KINDS",
    "SLOPolicy",
    "AdmissionController",
    "AdmissionDecision",
    "Autoscaler",
    "ScalingEvent",
    "ServingController",
    "ServingConfig",
    "DegradationPolicy",
    "QUALITY_FULL",
    "QUALITY_DEGRADED",
    "QUALITY_TIERS",
    "INVARIANTS",
    "ChaosInvariantError",
    "ChaosScenario",
    "chaos_scenarios",
    "run_chaos_sweep",
    "run_scenario",
]
