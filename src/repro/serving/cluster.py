"""Sharded service cluster: fan batched requests out over service replicas.

A :class:`ShardedServiceCluster` replicates one template
:class:`~repro.system.service.GNNService` into ``num_shards`` independent
shards (each with its own preprocessing-system state — bitstream/LUT
configuration, reconfiguration history — via ``GNNService.replicate``),
groups a :class:`~repro.serving.requests.RequestTrace` into batches with a
:class:`~repro.serving.scheduler.BatchScheduler`, and replays the batches
through an event-driven simulation under a configurable dispatch policy.

The per-request sojourn time decomposes exactly as::

    sojourn = batching_delay + dispatch_delay + service_seconds

where *batching* is the wait for the batch to close, *dispatch* is the wait
for the chosen shard to drain its backlog, and *service* is the batch's
end-to-end service latency on that shard.  The merged
:class:`ClusterReport` aggregates throughput, latency percentiles, the
queueing-delay decomposition and per-shard utilisation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import LatencyStats
from repro.serving.requests import InferenceRequest, RequestTrace
from repro.serving.scheduler import BatchScheduler, RequestBatch
from repro.system.service import GNNService, ServiceReport, build_services
from repro.system.workload import WorkloadProfile

#: Dispatch policies: cycle shards, pick the earliest-free shard, or pin each
#: workload key to a home shard (spilling to the earliest-free shard when the
#: home shard's backlog exceeds the spill threshold).
POLICY_ROUND_ROBIN = "round-robin"
POLICY_LEAST_LOADED = "least-loaded"
POLICY_LOCALITY = "locality"
DISPATCH_POLICIES = (POLICY_ROUND_ROBIN, POLICY_LEAST_LOADED, POLICY_LOCALITY)


@dataclass
class ServedRequest:
    """One request's journey through the cluster.

    Attributes:
        request: the original timestamped request.
        shard_id: the shard that served the request's batch.
        batch_size: number of requests sharing the batch.
        batching_delay: wait for the batch to close (seconds).
        dispatch_delay: wait for the shard to become free (seconds).
        service_seconds: end-to-end service latency of the batch.
        report: the batch's full :class:`ServiceReport` on the shard.
    """

    request: InferenceRequest
    shard_id: int
    batch_size: int
    batching_delay: float
    dispatch_delay: float
    service_seconds: float
    report: ServiceReport

    @property
    def sojourn_seconds(self) -> float:
        """Arrival-to-completion latency of the request."""
        return self.batching_delay + self.dispatch_delay + self.service_seconds

    @property
    def finish_seconds(self) -> float:
        """Simulated completion time of the request."""
        return self.request.arrival_seconds + self.sojourn_seconds


@dataclass
class ClusterReport:
    """Merged outcome of serving one trace on a sharded cluster.

    Attributes:
        system: preprocessing-system label of the shards.
        policy: dispatch policy the run used.
        num_shards: shard count.
        served: per-request serving records, in batch-dispatch order.
        num_batches: batches the scheduler formed.
        makespan_seconds: first arrival to last completion.
        shard_busy_seconds: per-shard total service time.
        shard_requests: per-shard served request counts.
    """

    system: str
    policy: str
    num_shards: int
    served: List[ServedRequest]
    num_batches: int
    makespan_seconds: float
    shard_busy_seconds: List[float]
    shard_requests: List[int]

    # ------------------------------------------------------------ aggregates
    @property
    def num_requests(self) -> int:
        """Requests served."""
        return len(self.served)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.num_requests / self.makespan_seconds

    @property
    def latency(self) -> LatencyStats:
        """Distribution of per-request sojourn times."""
        return LatencyStats.from_samples([s.sojourn_seconds for s in self.served])

    @property
    def queueing_decomposition(self) -> Dict[str, float]:
        """Mean per-request sojourn split into batching/dispatch/service."""
        n = max(self.num_requests, 1)
        return {
            "batching": sum(s.batching_delay for s in self.served) / n,
            "dispatch": sum(s.dispatch_delay for s in self.served) / n,
            "service": sum(s.service_seconds for s in self.served) / n,
        }

    @property
    def shard_utilization(self) -> List[float]:
        """Per-shard fraction of the makespan spent serving batches."""
        if self.makespan_seconds <= 0:
            return [0.0 for _ in self.shard_busy_seconds]
        return [busy / self.makespan_seconds for busy in self.shard_busy_seconds]

    def service_reports(self) -> List[ServiceReport]:
        """Per-request service reports in request arrival order.

        With a 1-shard cluster and batch size 1 this list is element-wise
        equal to ``GNNService.serve_many`` on the same workloads (the
        identity contract the property tests enforce).
        """
        ordered = sorted(
            self.served,
            key=lambda s: (s.request.arrival_seconds, s.request.request_id),
        )
        return [s.report for s in ordered]

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (per-request records elided)."""
        return {
            "system": self.system,
            "policy": self.policy,
            "num_shards": self.num_shards,
            "num_requests": self.num_requests,
            "num_batches": self.num_batches,
            "makespan_seconds": self.makespan_seconds,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.as_dict(),
            "queueing_decomposition": self.queueing_decomposition,
            "shard_utilization": self.shard_utilization,
            "shard_requests": list(self.shard_requests),
        }


def _home_shard(batch: RequestBatch, num_shards: int) -> int:
    """Stable home shard of a batch's workload key (process-independent)."""
    return zlib.crc32(repr(batch.key).encode("utf-8")) % num_shards


class ShardedServiceCluster:
    """N replicated GNN services behind one queue and batch scheduler.

    Args:
        service: template service; each shard is an independent
            ``service.replicate()`` (own preprocessing-system state).
        num_shards: replica count (>= 1).
        scheduler: batching policy (defaults to per-request batches, i.e.
            ``BatchScheduler(max_batch_size=1)``).
        policy: dispatch policy, one of :data:`DISPATCH_POLICIES`.
        locality_spill_seconds: under the locality policy, a batch spills
            from its home shard to the earliest-free shard when the home
            backlog exceeds this many seconds (``inf`` pins strictly).
    """

    def __init__(
        self,
        service: GNNService,
        num_shards: int = 1,
        scheduler: Optional[BatchScheduler] = None,
        policy: str = POLICY_LEAST_LOADED,
        locality_spill_seconds: float = float("inf"),
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if policy not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch policy {policy!r}; expected one of {DISPATCH_POLICIES}"
            )
        if locality_spill_seconds < 0:
            raise ValueError("locality_spill_seconds must be non-negative")
        self.template = service
        self.shards: List[GNNService] = [service.replicate() for _ in range(num_shards)]
        self.scheduler = scheduler or BatchScheduler(max_batch_size=1)
        self.policy = policy
        self.locality_spill_seconds = locality_spill_seconds
        self._rr_next = 0

    @property
    def num_shards(self) -> int:
        """Number of service replicas."""
        return len(self.shards)

    @property
    def system_name(self) -> str:
        """Preprocessing-system label of the replicas."""
        return self.template.preprocessing.name

    # -------------------------------------------------------------- dispatch
    def _pick_shard(self, batch: RequestBatch, busy_until: List[float]) -> int:
        least_loaded = min(range(len(busy_until)), key=lambda i: (busy_until[i], i))
        if self.policy == POLICY_ROUND_ROBIN:
            shard = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.num_shards
            return shard
        if self.policy == POLICY_LOCALITY:
            home = _home_shard(batch, self.num_shards)
            backlog = busy_until[home] - batch.ready_seconds
            if backlog <= self.locality_spill_seconds:
                return home
            return least_loaded
        return least_loaded

    # --------------------------------------------------------------- serving
    def serve_trace(self, trace: RequestTrace) -> ClusterReport:
        """Replay a trace through the cluster and merge the outcome.

        Event-driven and fully simulated: batches are dispatched in the
        order they close; a batch starts at ``max(ready, shard free)`` and
        occupies its shard for the batch's modelled end-to-end latency.
        """
        if not len(trace):
            raise ValueError("cannot serve an empty trace")
        self._rr_next = 0
        batches = self.scheduler.schedule(trace)
        busy_until = [0.0] * self.num_shards
        busy_total = [0.0] * self.num_shards
        shard_requests = [0] * self.num_shards
        served: List[ServedRequest] = []
        last_finish = 0.0
        for batch in batches:
            shard_id = self._pick_shard(batch, busy_until)
            start = max(batch.ready_seconds, busy_until[shard_id])
            report = self.shards[shard_id].serve(batch.workload)
            duration = report.total_seconds
            finish = start + duration
            busy_until[shard_id] = finish
            busy_total[shard_id] += duration
            shard_requests[shard_id] += len(batch)
            last_finish = max(last_finish, finish)
            for request in batch.requests:
                served.append(
                    ServedRequest(
                        request=request,
                        shard_id=shard_id,
                        batch_size=len(batch),
                        batching_delay=batch.batching_delay(request),
                        dispatch_delay=start - batch.ready_seconds,
                        service_seconds=duration,
                        report=report,
                    )
                )
        first_arrival = trace[0].arrival_seconds
        return ClusterReport(
            system=self.system_name,
            policy=self.policy,
            num_shards=self.num_shards,
            served=served,
            num_batches=len(batches),
            makespan_seconds=last_finish - first_arrival,
            shard_busy_seconds=busy_total,
            shard_requests=shard_requests,
        )

    def serve_workloads(self, workloads: List[WorkloadProfile]) -> ClusterReport:
        """Serve a plain workload list as a zero-gap trace (back-to-back)."""
        requests = [
            InferenceRequest(request_id=i, arrival_seconds=0.0, workload=w)
            for i, w in enumerate(workloads)
        ]
        return self.serve_trace(RequestTrace(requests))


def build_reference_clusters(
    num_shards: int = 1,
    scheduler: Optional[BatchScheduler] = None,
    policy: str = POLICY_LEAST_LOADED,
    tuning_workload: Optional[WorkloadProfile] = None,
) -> Dict[str, ShardedServiceCluster]:
    """Sharded clusters for all seven compared systems of Fig. 18.

    Every cluster can be driven by the same traffic trace, which is how the
    serving benchmark compares CPU / GPU / GSamp / FPGA / AutoPre / StatPre /
    DynPre under identical offered load.
    """
    return {
        name: ShardedServiceCluster(
            service, num_shards=num_shards, scheduler=scheduler, policy=policy
        )
        for name, service in build_services(tuning_workload).items()
    }
