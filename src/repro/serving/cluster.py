"""Sharded service cluster: fan batched requests out over service replicas.

A :class:`ShardedServiceCluster` replicates one template
:class:`~repro.system.service.GNNService` into ``num_shards`` independent
shards (each with its own preprocessing-system state — bitstream/LUT
configuration, reconfiguration history — via ``GNNService.replicate``) and
serves traffic through one of two event loops:

* :meth:`ShardedServiceCluster.serve_trace` — offline replay: a complete
  :class:`~repro.serving.requests.RequestTrace` is batched up front by the
  :class:`~repro.serving.scheduler.BatchScheduler` and the batches are
  dispatched in the order they close.
* :meth:`ShardedServiceCluster.serve_online` — online co-simulation: an
  arrival *source* (:class:`~repro.serving.requests.TraceArrivals` or the
  closed-loop :class:`~repro.serving.requests.ClosedLoopClients`) is drained
  event by event, batches form incrementally under the same size-or-timeout
  policy, and the control plane (admission control, autoscaling — see
  :mod:`repro.serving.control`) hooks into every arrival.  Completion times
  are fed back to the source, which is what closes the loop for co-simulated
  client populations.

The per-request sojourn time decomposes exactly as::

    sojourn = batching_delay + dispatch_delay + service_seconds

where *batching* is the wait for the batch to close, *dispatch* is the wait
for the chosen shard to drain its backlog, and *service* is the batch's
end-to-end service latency on that shard.  The merged
:class:`ClusterReport` aggregates throughput, latency percentiles, the
queueing-delay decomposition, per-shard utilisation and — for controlled
runs — the goodput / shed-rate accounting and the scaling timeline.
"""

from __future__ import annotations

import heapq
import warnings
import zlib
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.analysis.metrics import GoodputStats, LatencyStats, TenantStats

if TYPE_CHECKING:  # control.py only imports repro.system.workload — no cycle,
    # but the runtime layering (control/config on top of cluster) is kept
    # one-way.
    from repro.serving.config import ServingConfig
    from repro.serving.control import (
        AdmissionController,
        AdmissionDecision,
        Autoscaler,
        DegradationPolicy,
        ScalingEvent,
        SLOPolicy,
    )
from repro.serving.faults import (
    DrainPlanner,
    FaultLoopHooks,
    FaultSchedule,
    FaultStats,
    due,
)
from repro.serving.requests import InferenceRequest, RequestTrace
from repro.serving.scheduler import BatchScheduler, RequestBatch
from repro.serving.topology import PLACEMENT_SPREAD, PLACEMENTS, ClusterTopology
from repro.system.service import GNNService, ServiceReport, build_services
from repro.system.workload import QUALITY_DEGRADED, WorkloadProfile

#: Dispatch policies: cycle shards, pick the earliest-free shard, or prefer
#: shards whose reconfigurable state already suits the batch (falling back to
#: a stable home shard by workload-key hash, and spilling to the earliest-free
#: shard when the preferred shard's backlog exceeds the spill threshold).
POLICY_ROUND_ROBIN = "round-robin"
POLICY_LEAST_LOADED = "least-loaded"
POLICY_LOCALITY = "locality"
DISPATCH_POLICIES = (POLICY_ROUND_ROBIN, POLICY_LEAST_LOADED, POLICY_LOCALITY)

#: Serving engines: the reference per-request-object event loops below, or
#: the indexed/caching fast engine in :mod:`repro.serving.engine`.  Both
#: produce byte-identical :class:`ClusterReport` content (golden- and
#: property-test enforced); the fast engine is the default because it is the
#: one that reaches 100k-request traces at interactive speed.
ENGINE_REFERENCE = "reference"
ENGINE_FAST = "fast"
ENGINES = (ENGINE_REFERENCE, ENGINE_FAST)


@dataclass
class ServedRequest:
    """One request's journey through the cluster.

    Attributes:
        request: the original timestamped request.
        shard_id: the shard that served the request's batch.
        batch_size: number of requests sharing the batch.
        batching_delay: wait for the batch to close (seconds).
        dispatch_delay: wait for the shard to become free (seconds).
        service_seconds: end-to-end service latency of the batch.
        report: the batch's full :class:`ServiceReport` on the shard.
    """

    request: InferenceRequest
    shard_id: int
    batch_size: int
    batching_delay: float
    dispatch_delay: float
    service_seconds: float
    report: ServiceReport

    @property
    def sojourn_seconds(self) -> float:
        """Arrival-to-completion latency of the request."""
        return self.batching_delay + self.dispatch_delay + self.service_seconds

    @property
    def finish_seconds(self) -> float:
        """Simulated completion time of the request."""
        return self.request.arrival_seconds + self.sojourn_seconds


@dataclass
class ShedRecord:
    """One request the admission controller rejected at arrival.

    Attributes:
        request: the rejected request.
        shed_seconds: simulated time of the rejection (the arrival instant).
        predicted_sojourn: the sojourn prediction that caused the rejection.
        slo_seconds: the SLO the prediction was compared against.
    """

    request: InferenceRequest
    shed_seconds: float
    predicted_sojourn: float
    slo_seconds: float


@dataclass
class ReportAggregates:
    """Streaming-accumulated aggregates of one serving run.

    The fast engine folds every served request into these totals as it
    dispatches (see :class:`~repro.analysis.metrics.StreamingLatencyStats`),
    in the exact accumulation order the reference report properties use, so
    a :class:`ClusterReport` carrying aggregates renders byte-identically to
    one that re-derives them from the per-request records — and can drop
    those records entirely (:meth:`ClusterReport.compact`) at 100k-request
    scale.

    Attributes:
        count: requests served.
        shed_count: requests rejected at admission.
        latency: exact sojourn-time summary (push order = served order).
        batching_sum: total batching delay over served requests.
        dispatch_sum: total dispatch delay over served requests.
        service_sum: total service time over served requests.
        slo_met: served requests whose sojourn met their SLO (equals
            ``count`` when the run had no SLO).
        tenants: per-tenant accounting, keyed (and sorted) by tenant name.
        served_degraded: served requests executed at the degraded quality
            tier (their workload carries ``quality="degraded"``).
        slo_met_degraded: degraded-tier served requests that met their SLO
            (equals ``served_degraded`` when the run had no SLO).
    """

    count: int
    shed_count: int
    latency: LatencyStats
    batching_sum: float
    dispatch_sum: float
    service_sum: float
    slo_met: int
    tenants: Optional[Dict[str, TenantStats]] = None
    served_degraded: int = 0
    slo_met_degraded: int = 0


@dataclass
class ClusterReport:
    """Merged outcome of serving one trace on a sharded cluster.

    Attributes:
        system: preprocessing-system label of the shards.
        policy: dispatch policy the run used.
        num_shards: shard count.
        served: per-request serving records, in batch-dispatch order.
        num_batches: batches the scheduler formed.
        makespan_seconds: first arrival to last completion.
        shard_busy_seconds: per-shard total service time.
        shard_requests: per-shard served request counts.
        shed: requests rejected at admission (controlled runs only).
        slo: the SLO policy the run was scored against, or None.
        decisions: admission decisions in arrival order (controlled runs).
        scaling_timeline: autoscaler events of the run.
        aggregates: streaming-accumulated totals (fast engine only); when
            present the summary properties read them instead of re-deriving
            from the per-request records, and :meth:`compact` may drop the
            records.
        faults: fault-injection summary (:class:`FaultStats`) of runs served
            under a :class:`~repro.serving.faults.FaultSchedule`, or None.
            Plain summary data, so it survives :meth:`compact`.
        shard_seconds: provisioned shard-seconds measured by the autoscaled
            online loops' lease tracking (activation to post-backlog idle),
            or None for fixed-capacity runs — see
            :attr:`provisioned_shard_seconds`.
    """

    system: str
    policy: str
    num_shards: int
    served: List[ServedRequest]
    num_batches: int
    makespan_seconds: float
    shard_busy_seconds: List[float]
    shard_requests: List[int]
    shed: List[ShedRecord] = field(default_factory=list)
    slo: Optional["SLOPolicy"] = None
    decisions: List["AdmissionDecision"] = field(default_factory=list)
    scaling_timeline: List["ScalingEvent"] = field(default_factory=list)
    aggregates: Optional[ReportAggregates] = field(default=None, repr=False)
    faults: Optional[FaultStats] = None
    shard_seconds: Optional[float] = None

    # ------------------------------------------------------------ aggregates
    @property
    def num_requests(self) -> int:
        """Requests served."""
        if self.aggregates is not None:
            return self.aggregates.count
        return len(self.served)

    @property
    def num_shed(self) -> int:
        """Requests rejected at admission."""
        if self.aggregates is not None:
            return self.aggregates.shed_count
        return len(self.shed)

    def compact(self) -> "ClusterReport":
        """Drop the per-request records, keeping every summary aggregate.

        Only available on reports that carry :attr:`aggregates` (fast-engine
        runs).  ``as_dict`` and every summary property render identically
        afterwards; per-request accessors (``served``, ``shed``,
        ``decisions``, :meth:`service_reports`) come back empty.  At
        100k-request scale this is the difference between a report and a
        memory hog.  Returns ``self`` for chaining.
        """
        if self.aggregates is None:
            raise ValueError(
                "compact() requires streaming aggregates (fast-engine reports only)"
            )
        self.served = []
        self.shed = []
        self.decisions = []
        return self

    @property
    def num_failed(self) -> int:
        """Admitted requests permanently lost to shard faults."""
        if self.faults is not None:
            return self.faults.failed
        return 0

    @property
    def num_degraded(self) -> int:
        """Served requests executed at the degraded quality tier."""
        if self.aggregates is not None:
            return self.aggregates.served_degraded
        return sum(
            1 for s in self.served if s.request.workload.quality == QUALITY_DEGRADED
        )

    @property
    def num_offered(self) -> int:
        """Requests that reached the front-end (served + shed + failed)."""
        return self.num_requests + self.num_shed + self.num_failed

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.num_requests / self.makespan_seconds

    @property
    def goodput(self) -> GoodputStats:
        """Offered/served/shed/SLO-met accounting of the run.

        Without an SLO every served request counts as good, so
        ``goodput_rps == throughput_rps``; with one, only served requests
        whose sojourn met their objective count.
        """
        if self.slo is None:
            slo_met = self.num_requests
            slo_met_degraded = self.num_degraded
        elif self.aggregates is not None:
            slo_met = self.aggregates.slo_met
            slo_met_degraded = self.aggregates.slo_met_degraded
        else:
            slo_met = sum(
                1
                for s in self.served
                if s.sojourn_seconds
                <= self.slo.slo_for(s.request.workload, s.request.tenant)
            )
            slo_met_degraded = sum(
                1
                for s in self.served
                if s.request.workload.quality == QUALITY_DEGRADED
                and s.sojourn_seconds
                <= self.slo.slo_for(s.request.workload, s.request.tenant)
            )
        return GoodputStats(
            offered=self.num_offered,
            served=self.num_requests,
            shed=self.num_shed,
            slo_met=slo_met,
            makespan_seconds=self.makespan_seconds,
            failed=self.num_failed,
            served_degraded=self.num_degraded,
            slo_met_degraded=slo_met_degraded,
        )

    @property
    def goodput_rps(self) -> float:
        """SLO-met served requests per second of makespan."""
        return self.goodput.goodput_rps

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests rejected at admission."""
        return self.goodput.shed_rate

    @property
    def slo_attainment(self) -> float:
        """Fraction of served requests that met their SLO."""
        return self.goodput.slo_attainment

    @property
    def latency(self) -> LatencyStats:
        """Distribution of per-request sojourn times."""
        if self.aggregates is not None:
            return self.aggregates.latency
        return LatencyStats.from_samples([s.sojourn_seconds for s in self.served])

    @property
    def queueing_decomposition(self) -> Dict[str, float]:
        """Mean per-request sojourn split into batching/dispatch/service."""
        n = max(self.num_requests, 1)
        if self.aggregates is not None:
            return {
                "batching": self.aggregates.batching_sum / n,
                "dispatch": self.aggregates.dispatch_sum / n,
                "service": self.aggregates.service_sum / n,
            }
        return {
            "batching": sum(s.batching_delay for s in self.served) / n,
            "dispatch": sum(s.dispatch_delay for s in self.served) / n,
            "service": sum(s.service_seconds for s in self.served) / n,
        }

    @property
    def tenant_stats(self) -> Dict[str, TenantStats]:
        """Per-tenant offered/served/shed/SLO accounting, sorted by tenant.

        Single-tenant runs report one ``"default"`` entry; the section is
        how fairness benchmarks and the property tests observe
        weighted-shedding and quota conservation per tenant.  Fast-engine
        reports read the streaming per-tenant aggregates (so the section
        survives :meth:`compact`); reference reports re-derive it from the
        per-request records — byte-identically, since both fold sojourns in
        served order.
        """
        if self.aggregates is not None and self.aggregates.tenants is not None:
            return self.aggregates.tenants
        sojourns: Dict[str, List[float]] = {}
        served_count: Dict[str, int] = {}
        slo_met: Dict[str, int] = {}
        shed_count: Dict[str, int] = {}
        degraded_count: Dict[str, int] = {}
        slo_met_degraded: Dict[str, int] = {}
        for s in self.served:
            tenant = s.request.tenant
            degraded = s.request.workload.quality == QUALITY_DEGRADED
            sojourns.setdefault(tenant, []).append(s.sojourn_seconds)
            served_count[tenant] = served_count.get(tenant, 0) + 1
            if degraded:
                degraded_count[tenant] = degraded_count.get(tenant, 0) + 1
            if self.slo is None or s.sojourn_seconds <= self.slo.slo_for(
                s.request.workload, tenant
            ):
                slo_met[tenant] = slo_met.get(tenant, 0) + 1
                if degraded:
                    slo_met_degraded[tenant] = slo_met_degraded.get(tenant, 0) + 1
        for record in self.shed:
            tenant = record.request.tenant
            shed_count[tenant] = shed_count.get(tenant, 0) + 1
        return {
            tenant: TenantStats(
                tenant=tenant,
                offered=served_count.get(tenant, 0) + shed_count.get(tenant, 0),
                served=served_count.get(tenant, 0),
                shed=shed_count.get(tenant, 0),
                slo_met=slo_met.get(tenant, 0),
                latency=LatencyStats.from_samples(sojourns.get(tenant, [])),
                served_degraded=degraded_count.get(tenant, 0),
                slo_met_degraded=slo_met_degraded.get(tenant, 0),
            )
            for tenant in sorted(set(served_count) | set(shed_count))
        }

    def tenant_weighted_goodput(
        self, degradation: "DegradationPolicy"
    ) -> Dict[str, float]:
        """Per-tenant SLO-weighted goodput (rps) under ``degradation``.

        Each tenant's degraded completions are valued at
        :meth:`DegradationPolicy.utility_for` of its quota — so a tenant
        whose :attr:`~repro.serving.control.TenantQuota.degraded_utility`
        floor exceeds the policy-wide knob is scored at its floor.  Runs
        without an SLO policy fall back to the policy-wide utility for every
        tenant.
        """
        makespan = self.makespan_seconds
        if makespan <= 0:
            return {tenant: 0.0 for tenant in self.tenant_stats}
        return {
            tenant: stats.slo_weighted_goodput(
                degradation.utility_for(
                    self.slo.quota_for(tenant) if self.slo is not None else None
                )
            )
            / makespan
            for tenant, stats in self.tenant_stats.items()
        }

    @property
    def provisioned_shard_seconds(self) -> float:
        """Shard-seconds of provisioned capacity the run consumed.

        Autoscaled online runs measure it as lease spans: a shard is paid
        from activation until it actually goes idle after a scale-down
        (drain-aware scaling lowers that horizon by migrating the backlog
        away).  Fixed-capacity runs pay every shard for the whole
        makespan.
        """
        if self.shard_seconds is not None:
            return self.shard_seconds
        return self.num_shards * self.makespan_seconds

    @property
    def shard_utilization(self) -> List[float]:
        """Per-shard fraction of the makespan spent serving batches."""
        if self.makespan_seconds <= 0:
            return [0.0 for _ in self.shard_busy_seconds]
        return [busy / self.makespan_seconds for busy in self.shard_busy_seconds]

    def service_reports(self) -> List[ServiceReport]:
        """Per-request service reports in request arrival order.

        With a 1-shard cluster and batch size 1 this list is element-wise
        equal to ``GNNService.serve_many`` on the same workloads (the
        identity contract the property tests enforce).
        """
        ordered = sorted(
            self.served,
            key=lambda s: (s.request.arrival_seconds, s.request.request_id),
        )
        return [s.report for s in ordered]

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (per-request records elided).

        Fully deterministic for a deterministic run — the golden-report
        regression tests serialize this dictionary and assert byte-stable
        output across runs.
        """
        return {
            "system": self.system,
            "policy": self.policy,
            "num_shards": self.num_shards,
            "num_requests": self.num_requests,
            "num_batches": self.num_batches,
            "makespan_seconds": self.makespan_seconds,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.as_dict(),
            "queueing_decomposition": self.queueing_decomposition,
            "shard_utilization": self.shard_utilization,
            "shard_requests": list(self.shard_requests),
            "goodput": self.goodput.as_dict(),
            "tenants": {
                tenant: stats.as_dict()
                for tenant, stats in self.tenant_stats.items()
            },
            "slo": self.slo.as_dict() if self.slo is not None else None,
            "faults": self.faults.as_dict() if self.faults is not None else None,
            "shard_seconds": self.provisioned_shard_seconds,
            "scaling_timeline": [
                [
                    event.seconds,
                    event.active_shards,
                    event.reason,
                    event.migrated,
                    event.completed,
                ]
                for event in self.scaling_timeline
            ],
        }


def _home_shard(batch: RequestBatch, num_candidates: int) -> int:
    """Stable home slot of a batch's workload key (process-independent)."""
    return zlib.crc32(repr(batch.key).encode("utf-8")) % num_candidates


def _admission_estimate(
    template: GNNService,
    request: InferenceRequest,
    admission: "AdmissionController",
    open_members: Optional[List[InferenceRequest]],
) -> float:
    """Service-time estimate the admission prediction charges ``request``.

    The conservative default prices the request as a standalone pass.  With
    ``admission.batch_aware`` and a compatible batch already forming, the
    request is priced at its *marginal* merged-batch cost — the merged
    pass with the request minus the pass already committed to — which is
    what the batch will actually add to the shard's busy horizon (batched
    preprocessing amortizes the fixed per-pass work).  Shared by both
    serving engines so their float arithmetic is identical.
    """
    estimate = template.estimate_service_seconds(request.workload)
    if admission.batch_aware and open_members:
        base = open_members[0].workload
        merged = sum(member.workload.batch_size for member in open_members)
        forming = template.estimate_service_seconds(base.with_batch_size(merged))
        joined = template.estimate_service_seconds(
            base.with_batch_size(merged + request.workload.batch_size)
        )
        estimate = min(estimate, max(joined - forming, 0.0))
    return estimate


def _coerce_config(config: Optional["ServingConfig"], method: str, **legacy):
    """Resolve the ``config=`` parameter against the legacy kwarg surface.

    Passing both is an error; passing legacy kwargs alone emits a
    ``DeprecationWarning`` and maps them onto an equivalent
    :class:`~repro.serving.config.ServingConfig` (the mapped fields are the
    very objects the old signature received, so reports are byte-identical
    through the shim — regression-tested in ``tests/test_serving_config.py``).
    """
    from repro.serving.config import ServingConfig

    provided = {name: value for name, value in legacy.items() if value is not None}
    if config is not None:
        if provided:
            raise ValueError(
                f"{method}: pass either config= or the legacy keyword arguments "
                f"({sorted(provided)}), not both"
            )
        return config
    if provided:
        warnings.warn(
            f"{method}({', '.join(sorted(provided))}=...) keyword arguments are "
            "deprecated; pass config=ServingConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    provided["controller"] = provided.pop("admission", None)
    return ServingConfig(
        **{name: value for name, value in provided.items() if value is not None}
    )


class ShardLeaseTracker:
    """Provisioned shard-seconds accounting for autoscaled online runs.

    A shard's lease opens when it (re)enters the autoscaler's active
    prefix and closes at a scale-down — at ``max(now, busy_until)``, when
    the shard actually goes idle after finishing what it still holds.
    With drain enabled the busy horizon has already dropped back to the
    in-flight floor by then, which is exactly how voluntary drains save
    shard-seconds: the leaving shard is not paid for backlog that migrated
    away.  Leases still open when the run ends close at the run's last
    finish.  Leases never overlap: a reactivation opens no earlier than
    the shard's previous close, so a backlog paid through a scale-down is
    not paid again after a scale-up.

    Shared by the reference loop and the fast engine — both perform the
    identical open/close sequence in event order, so the resulting
    ``shard_seconds`` is byte-identical across engines.
    """

    def __init__(self, num_shards: int) -> None:
        self._opened: List[Optional[float]] = [None] * num_shards
        self._closed_at = [0.0] * num_shards
        self.total = 0.0

    def open(self, shard_id: int, now: float) -> None:
        """Start the shard's lease at ``now`` (no-op when already open)."""
        if self._opened[shard_id] is None:
            self._opened[shard_id] = max(now, self._closed_at[shard_id])

    def close(self, shard_id: int, seconds: float) -> None:
        """End the shard's lease at ``seconds`` (clamped to its open)."""
        opened = self._opened[shard_id]
        if opened is None:
            return
        end = max(seconds, opened)
        self.total += end - opened
        self._closed_at[shard_id] = end
        self._opened[shard_id] = None

    def finish(self, end: float) -> float:
        """Close every open lease at the run's end; returns the total."""
        for shard_id, opened in enumerate(self._opened):
            if opened is not None:
                self.total += max(end, opened) - opened
                self._opened[shard_id] = None
        return self.total


class _LoopState:
    """Mutable accounting shared by the offline and online event loops."""

    def __init__(self, num_shards: int) -> None:
        self.busy_until = [0.0] * num_shards
        self.busy_total = [0.0] * num_shards
        self.shard_requests = [0] * num_shards
        self.served: List[ServedRequest] = []
        self.num_batches = 0
        self.last_finish = 0.0


class ShardedServiceCluster:
    """N replicated GNN services behind one queue and batch scheduler.

    Args:
        service: template service; each shard is an independent
            ``service.replicate()`` (own preprocessing-system state).
        num_shards: replica count (>= 1).
        scheduler: batching policy (defaults to per-request batches, i.e.
            ``BatchScheduler(max_batch_size=1)``).
        policy: dispatch policy, one of :data:`DISPATCH_POLICIES`.
        locality_spill_seconds: under the locality policy, a batch spills
            from its preferred shard to the earliest-free shard when the
            preferred backlog exceeds this many seconds (``inf`` pins
            strictly).
        rebalance_seconds: under the locality policy, enables stale-state
            rebalancing of the home-shard hash fallback: when the home
            shard served a *different* workload key within the last
            ``rebalance_seconds``, its reconfiguration state no longer
            matches this batch and dispatch re-homes to the earliest-free
            shard whose recent traffic does not conflict (unclaimed,
            same-key, or stale) instead of paying reconfiguration churn on
            every alternating batch.  ``None`` (default) disables
            rebalancing.
        engine: one of :data:`ENGINES` — ``"fast"`` (default) runs the
            indexed event-heap engine with serve-transition caching from
            :mod:`repro.serving.engine`; ``"reference"`` runs the plain
            per-request-object loops in this module.  Outputs are
            byte-identical; only wall-clock differs.
        topology: optional :class:`~repro.serving.topology.ClusterTopology`
            mapping shards to failure domains.  With one, placement becomes
            domain-aware: the autoscaler's active set follows the
            topology's activation order, locality dispatch hashes to a
            *domain* before a member shard, and fault-time standby
            substitution prefers shards in healthy domains.  ``None``
            (default) keeps the historical shard-index ordering exactly.
        placement: activation-order policy over the topology —
            ``"spread"`` (default) round-robins activation across domains
            so any active prefix spans the maximum number of failure
            domains; ``"dense"`` fills domains in shard-index order (the
            domain-oblivious baseline).  Ignored without a topology.
    """

    def __init__(
        self,
        service: GNNService,
        num_shards: int = 1,
        scheduler: Optional[BatchScheduler] = None,
        policy: str = POLICY_LEAST_LOADED,
        locality_spill_seconds: float = float("inf"),
        rebalance_seconds: Optional[float] = None,
        engine: str = ENGINE_FAST,
        topology: Optional[ClusterTopology] = None,
        placement: str = PLACEMENT_SPREAD,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if policy not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch policy {policy!r}; expected one of {DISPATCH_POLICIES}"
            )
        if locality_spill_seconds < 0:
            raise ValueError("locality_spill_seconds must be non-negative")
        if rebalance_seconds is not None and rebalance_seconds < 0:
            raise ValueError("rebalance_seconds must be non-negative")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown serving engine {engine!r}; expected one of {ENGINES}"
            )
        self.template = service
        self.shards: List[GNNService] = [service.replicate() for _ in range(num_shards)]
        self.scheduler = scheduler or BatchScheduler(max_batch_size=1)
        self.policy = policy
        self.locality_spill_seconds = locality_spill_seconds
        self.rebalance_seconds = rebalance_seconds
        self.engine = engine
        self._set_topology(topology, placement)
        self._reset_dispatch_state()
        # Serve-transition cache shared by every fast-engine run on this
        # cluster: the shards are replicas of one template, so a transition
        # observed on one shard replays soundly on any other.
        self._serve_cache: Dict[tuple, tuple] = {}

    def _set_topology(
        self, topology: Optional[ClusterTopology], placement: str
    ) -> None:
        """Install a failure-domain topology and its activation order.

        ``topology=None`` leaves every dispatch/scaling path on the
        historical shard-index ordering (``self._order is None``), which is
        what keeps domain-unaware runs byte-identical to earlier releases.
        """
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
            )
        if topology is not None:
            topology.validate_for(self.num_shards)
            order: Optional[tuple] = topology.activation_order(placement)
        else:
            order = None
        self.topology = topology
        self.placement = placement
        #: Activation order under the topology (None = identity/range order).
        self._order = order

    def _reset_dispatch_state(self) -> None:
        """Reset per-run dispatch memory (round-robin cursor, shard keys).

        Both engines call this at the start of every run so dispatch
        history never leaks across runs on the same cluster.
        """
        self._rr_next = 0
        # Per shard: (workload key, ready time) of the last batch the
        # locality hash fallback dispatched there (stale-state rebalance).
        self._shard_key: List[Optional[tuple]] = [None] * self.num_shards

    @property
    def num_shards(self) -> int:
        """Number of service replicas."""
        return len(self.shards)

    @property
    def system_name(self) -> str:
        """Preprocessing-system label of the replicas."""
        return self.template.preprocessing.name

    # -------------------------------------------------------------- dispatch
    def _pick_shard(
        self,
        batch: RequestBatch,
        busy_until: List[float],
        active: Sequence[int],
    ) -> int:
        """Choose a shard for ``batch`` among the ``active`` shard ids.

        The locality policy is reconfiguration-state aware: shards whose
        preprocessing state already suits the batch's workload (no bitstream
        change would fire — see ``GNNService.configured_for``) are preferred,
        the earliest-free one winning.  Systems without reconfigurable state
        never claim a batch that way, so they fall back to a stable
        home-shard hash of the workload key.  Either preference spills to
        the earliest-free active shard once the preferred backlog exceeds
        ``locality_spill_seconds``.

        With ``rebalance_seconds`` set, the hash fallback additionally
        re-homes when the home shard's reconfiguration state has gone
        stale relative to the live traffic mix (see :meth:`_rebalance`).
        """
        least_loaded = min(active, key=lambda i: (busy_until[i], i))
        if self.policy == POLICY_ROUND_ROBIN:
            shard = active[self._rr_next % len(active)]
            self._rr_next += 1
            return shard
        if self.policy == POLICY_LOCALITY:
            configured = [
                i for i in active if self.shards[i].configured_for(batch.workload)
            ]
            if configured:
                preferred = min(configured, key=lambda i: (busy_until[i], i))
            else:
                if self._order is not None:
                    preferred = self._domain_home(batch, active)
                else:
                    preferred = active[_home_shard(batch, len(active))]
                if self.rebalance_seconds is not None:
                    preferred = self._rebalance(batch, busy_until, active, preferred)
            backlog = busy_until[preferred] - batch.ready_seconds
            chosen = preferred if backlog <= self.locality_spill_seconds else least_loaded
            if self.rebalance_seconds is not None:
                self._shard_key[chosen] = (batch.key, batch.ready_seconds)
            return chosen
        return least_loaded

    def _domain_home(self, batch: RequestBatch, active: Sequence[int]) -> int:
        """Domain-spread home shard for the locality hash fallback.

        The workload key hashes to a *failure domain* first and to a member
        shard second, so the keys' home shards spread across domains instead
        of clustering wherever the flat hash lands — a rack outage then takes
        out a 1/num_domains slice of the key space rather than an arbitrary
        one.  Domains with no currently-active member are probed past in
        declaration order (their keys spill to the next domain over).
        """
        digest = zlib.crc32(repr(batch.key).encode("utf-8"))
        names = self.topology.domain_names
        start = digest % len(names)
        for offset in range(len(names)):
            name = names[(start + offset) % len(names)]
            members = [i for i in active if self.topology.domain_of(i) == name]
            if members:
                return members[(digest // len(names)) % len(members)]
        return active[_home_shard(batch, len(active))]

    def _rebalance(
        self,
        batch: RequestBatch,
        busy_until: List[float],
        active: Sequence[int],
        home: int,
    ) -> int:
        """Stale-state re-homing for the locality hash fallback.

        The home shard keeps the batch unless it *recently* (within
        ``rebalance_seconds`` of this batch's ready time) dispatched a
        batch with a *different* workload key — its reconfiguration state
        is then warm for conflicting traffic, and pinning this batch there
        pays reconfiguration churn on every alternation.  In that case the
        batch re-homes to the earliest-free active shard whose recent
        traffic does not conflict: unclaimed, same-key, or stale.  When
        every active shard conflicts the home shard keeps the batch (no
        rebalance target is better than any other).
        """

        def conflicts(shard_id: int) -> bool:
            entry = self._shard_key[shard_id]
            return (
                entry is not None
                and entry[0] != batch.key
                and batch.ready_seconds - entry[1] <= self.rebalance_seconds
            )

        if not conflicts(home):
            return home
        candidates = [i for i in active if not conflicts(i)]
        if not candidates:
            return home
        return min(candidates, key=lambda i: (busy_until[i], i))

    def _dispatch(
        self, batch: RequestBatch, state: _LoopState, active: Sequence[int]
    ) -> float:
        """Serve one closed batch on a shard; returns its finish time."""
        shard_id = self._pick_shard(batch, state.busy_until, active)
        start = max(batch.ready_seconds, state.busy_until[shard_id])
        report = self.shards[shard_id].serve(batch.workload)
        duration = report.total_seconds
        finish = start + duration
        state.busy_until[shard_id] = finish
        state.busy_total[shard_id] += duration
        state.shard_requests[shard_id] += len(batch)
        state.num_batches += 1
        state.last_finish = max(state.last_finish, finish)
        for request in batch.requests:
            state.served.append(
                ServedRequest(
                    request=request,
                    shard_id=shard_id,
                    batch_size=len(batch),
                    batching_delay=batch.batching_delay(request),
                    dispatch_delay=start - batch.ready_seconds,
                    service_seconds=duration,
                    report=report,
                )
            )
        return finish

    def _fault_hooks(
        self,
        state: _LoopState,
        active_count,
        on_commit=None,
        on_failed=None,
    ) -> FaultLoopHooks:
        """Reference-engine view of the loop state for the fault runtime.

        ``on_commit`` / ``on_failed`` are the online loop's extra effects
        (completion feedback to the arrival source, pending-estimate
        bookkeeping); the offline replay leaves them unset.
        """

        def serve(shard_id: int, workload):
            report = self.shards[shard_id].serve(workload)
            return report, report.total_seconds

        def set_busy(shard_id: int, seconds: float) -> None:
            state.busy_until[shard_id] = seconds

        def add_busy(shard_id: int, seconds: float) -> None:
            state.busy_total[shard_id] += seconds

        def commit(batch, shard_id, start, duration, report, finish) -> None:
            state.shard_requests[shard_id] += len(batch)
            state.num_batches += 1
            state.last_finish = max(state.last_finish, finish)
            for request in batch.requests:
                state.served.append(
                    ServedRequest(
                        request=request,
                        shard_id=shard_id,
                        batch_size=len(batch),
                        batching_delay=batch.batching_delay(request),
                        dispatch_delay=start - batch.ready_seconds,
                        service_seconds=duration,
                        report=report,
                    )
                )
            if on_commit is not None:
                on_commit(batch, finish)

        order = self._order
        return FaultLoopHooks(
            active_count=active_count,
            active_ids=(
                (lambda: order[: active_count()]) if order is not None else None
            ),
            busy=lambda shard_id: state.busy_until[shard_id],
            set_busy=set_busy,
            add_busy=add_busy,
            merged=lambda batch: batch.workload,
            pick=lambda batch, workload, active: self._pick_shard(
                batch, state.busy_until, active
            ),
            serve=serve,
            commit=commit,
            on_failed=on_failed if on_failed is not None else lambda request, seconds: None,
        )

    @contextmanager
    def _run_overrides(self, config: "ServingConfig"):
        """Apply a config's engine/scheduler overrides for one run.

        The cluster's construction-time choices are swapped in-place and
        restored on exit, so a per-run ``ServingConfig(engine=...,
        tenant_weights=...)`` never leaks into later runs on the same
        cluster.
        """
        engine = self.engine
        scheduler = self.scheduler
        topology = self.topology
        placement = self.placement
        order = self._order
        try:
            if config.engine is not None:
                self.engine = config.engine
            if config.tenant_weights is not None:
                self.scheduler = BatchScheduler(
                    max_batch_size=scheduler.max_batch_size,
                    max_wait_seconds=scheduler.max_wait_seconds,
                    tenant_weights=dict(config.tenant_weights),
                )
            if config.topology is not None or config.placement is not None:
                self._set_topology(
                    config.topology if config.topology is not None else topology,
                    config.placement if config.placement is not None else placement,
                )
            yield
        finally:
            self.engine = engine
            self.scheduler = scheduler
            self.topology = topology
            self.placement = placement
            self._order = order

    # --------------------------------------------------------------- serving
    def serve_trace(
        self,
        trace: RequestTrace,
        slo: Optional["SLOPolicy"] = None,
        faults: Optional[FaultSchedule] = None,
        *,
        config: Optional["ServingConfig"] = None,
    ) -> ClusterReport:
        """Replay a trace through the cluster and merge the outcome.

        Event-driven and fully simulated: batches are dispatched in the
        order they close; a batch starts at ``max(ready, shard free)`` and
        occupies its shard for the batch's modelled end-to-end latency.
        ``slo`` (an :class:`~repro.serving.control.SLOPolicy`) only scores
        the run's goodput section; the offline path never sheds.  With a
        ``faults`` schedule the replay injects shard crash/recover/slowdown
        events: doomed batches migrate to survivors, in-flight failures
        retry with backoff, and the report carries a faults section.

        ``config`` (a :class:`~repro.serving.config.ServingConfig`) is the
        consolidated way to pass all of the above plus per-run engine and
        tenant-weight overrides; the loose ``slo`` / ``faults`` kwargs are a
        deprecated shim onto it.  Admission control, degradation and
        autoscaling are online-only and rejected here.
        """
        config = _coerce_config(config, "serve_trace", slo=slo, faults=faults)
        if config.autoscaler is not None:
            raise ValueError("serve_trace is offline: autoscaler requires serve_online")
        if config.resolved_controller() is not None:
            raise ValueError(
                "serve_trace is offline and never sheds: admission control "
                "(controller/admit/degradation) requires serve_online"
            )
        slo = config.scoring_slo()
        faults = config.resolved_faults()
        if not len(trace):
            raise ValueError("cannot serve an empty trace")
        with self._run_overrides(config):
            return self._serve_trace_resolved(trace, slo, faults)

    def _serve_trace_resolved(
        self,
        trace: RequestTrace,
        slo: Optional["SLOPolicy"],
        faults: Optional[FaultSchedule],
    ) -> ClusterReport:
        if self.engine == ENGINE_FAST:
            from repro.serving.engine import serve_trace_fast

            return serve_trace_fast(self, trace, slo, faults)
        self._reset_dispatch_state()
        batches = self.scheduler.schedule(trace)
        state = _LoopState(self.num_shards)
        fault_stats: Optional[FaultStats] = None
        if faults is None:
            active = self._order if self._order is not None else range(self.num_shards)
            for batch in batches:
                self._dispatch(batch, state, active)
        else:
            ctx = faults.runtime(
                self.num_shards, slo, order=self._order, topology=self.topology
            )
            env = self._fault_hooks(state, lambda: self.num_shards)
            for batch in batches:
                ctx.step(env, batch)
            ctx.drain(env)
            fault_stats = ctx.finalize(trace[0].arrival_seconds, state.last_finish)
        first_arrival = trace[0].arrival_seconds
        # A faulted replay can fail every request; an empty run has no span.
        makespan = state.last_finish - first_arrival if state.served else 0.0
        return ClusterReport(
            system=self.system_name,
            policy=self.policy,
            num_shards=self.num_shards,
            served=state.served,
            num_batches=state.num_batches,
            makespan_seconds=makespan,
            shard_busy_seconds=state.busy_total,
            shard_requests=state.shard_requests,
            slo=slo,
            faults=fault_stats,
        )

    def serve_online(
        self,
        source,
        slo: Optional["SLOPolicy"] = None,
        admission: Optional["AdmissionController"] = None,
        autoscaler: Optional["Autoscaler"] = None,
        faults: Optional[FaultSchedule] = None,
        *,
        config: Optional["ServingConfig"] = None,
    ) -> ClusterReport:
        """Drain an arrival source through the online co-simulated event loop.

        ``source`` implements the arrival-source protocol (``peek_time`` /
        ``pop`` / ``on_complete`` / ``on_shed``):
        :class:`~repro.serving.requests.TraceArrivals` replays a fixed trace,
        :class:`~repro.serving.requests.ClosedLoopClients` co-simulates a
        client population fed by this loop's actual finish times.

        The loop interleaves two event kinds in simulated-time order —
        arrivals and batch-timeout deadlines (ties fire the deadline first,
        matching the offline scheduler) — and batches close under the same
        size-or-timeout policy as :class:`BatchScheduler`.  At every arrival
        the control plane hooks run in order:

        1. ``autoscaler.observe`` sees the queue depth — the arriving
           request, requests in open batches, requests in flight, and
           recently shed arrivals (shed demand within the autoscaler's
           ``shed_memory_seconds`` still signals overload) — and may
           activate a shard, which is then warm-up-penalised (bitstream
           load) before it can start a batch, or drain one (it finishes its
           backlog but receives nothing new).
        2. ``admission.decide`` predicts the request's sojourn from the
           least-loaded active shard's backlog plus the calibrated cost
           estimate and sheds the request if the prediction violates its
           SLO; sheds are reported back to the source immediately.

        Completion times are committed at batch dispatch (the simulation is
        deterministic, so the finish instant is known then) and fed to the
        source, which is what lets closed-loop clients issue their next
        request only after their previous one actually finished.

        With a ``faults`` schedule the loop interleaves two more event
        kinds — fault events and retry timers — with the precedence
        ``fault < deadline < retry < arrival`` at timestamp ties.  Dispatch
        then goes through the shared fault runtime: dead shards leave the
        dispatchable set (live standby shards past the autoscaler's prefix
        replace them), doomed batches drain and migrate, in-flight failures
        retry with exponential backoff until their budget is spent, and the
        admission backlog prediction only counts live shards.

        ``config`` (a :class:`~repro.serving.config.ServingConfig`) is the
        consolidated way to pass the whole control plane plus per-run engine
        and tenant-weight overrides; the loose keyword arguments are a
        deprecated shim onto it.  With a
        :class:`~repro.serving.control.DegradationPolicy` configured, the
        admission chain gains a degraded-quality tier: a request whose
        full-quality prediction violates its SLO is re-priced at its cheaper
        degraded profile (own batch key, own batches) and served degraded
        when that prediction fits — shed only when even the degraded tier
        cannot meet the SLO and no excess budget covers it.
        """
        config = _coerce_config(
            config,
            "serve_online",
            slo=slo,
            admission=admission,
            autoscaler=autoscaler,
            faults=faults,
        )
        slo = config.scoring_slo()
        admission = config.resolved_controller()
        autoscaler = config.autoscaler
        faults = config.resolved_faults()
        if autoscaler is not None and autoscaler.max_shards > self.num_shards:
            raise ValueError(
                f"autoscaler max_shards ({autoscaler.max_shards}) exceeds the "
                f"cluster's shard count ({self.num_shards})"
            )
        with self._run_overrides(config):
            return self._serve_online_resolved(source, slo, admission, autoscaler, faults)

    def _serve_online_resolved(
        self,
        source,
        slo: Optional["SLOPolicy"],
        admission: Optional["AdmissionController"],
        autoscaler: Optional["Autoscaler"],
        faults: Optional[FaultSchedule],
    ) -> ClusterReport:
        if self.engine == ENGINE_FAST:
            from repro.serving.engine import serve_online_fast

            return serve_online_fast(self, source, slo, admission, autoscaler, faults)
        self._reset_dispatch_state()
        state = _LoopState(self.num_shards)
        fair = self.scheduler.fair
        batcher = self.scheduler.fair_batcher() if fair else None
        open_members: Dict[object, List[InferenceRequest]] = {}
        open_deadline: Dict[object, float] = {}
        inflight: List[float] = []
        shed_records: List[ShedRecord] = []
        decisions: List[object] = []
        # Estimated cost of requests admitted but not yet dispatched, so a
        # same-instant arrival burst cannot all be admitted against the same
        # (still-empty) shard backlog.
        pending_estimates: Dict[int, float] = {}
        # Arrival times of recent sheds: demand the autoscaler must still see.
        recent_sheds: deque = deque()
        active_count = self.num_shards
        start_seconds = 0.0
        if autoscaler is not None:
            first_peek = source.peek_time()
            start_seconds = first_peek if first_peek is not None else 0.0
            active_count = autoscaler.start(start_seconds)
        if admission is not None:
            admission.reset()
        first_arrival: Optional[float] = None
        # Guaranteed-tier tenants whose open-queue pressure a tenant-aware
        # autoscaler watches separately from the global depth.
        guaranteed_tenants: Optional[frozenset] = None
        if autoscaler is not None and autoscaler.tenant_aware and slo is not None:
            guaranteed_tenants = frozenset(
                tenant
                for tenant, quota in slo.per_tenant.items()
                if quota.guaranteed_rps > 0
            )
        guaranteed_open = 0
        ctx = (
            faults.runtime(
                self.num_shards, slo, order=self._order, topology=self.topology
            )
            if faults is not None
            else None
        )
        planner = (
            DrainPlanner(self.num_shards)
            if autoscaler is not None and autoscaler.drain
            else None
        )
        if ctx is not None and planner is not None:
            ctx.attach_planner(planner)
        order = self._order

        def active_ids() -> Sequence[int]:
            """The active shard set in activation order (identity w/o topology)."""
            return order[:active_count] if order is not None else range(active_count)

        leases: Optional[ShardLeaseTracker] = None
        if autoscaler is not None:
            leases = ShardLeaseTracker(self.num_shards)
            for shard_id in active_ids():
                leases.open(shard_id, start_seconds)

        def dispatch_batch(batch: RequestBatch) -> None:
            nonlocal guaranteed_open
            if guaranteed_tenants:
                for request in batch.requests:
                    if request.tenant in guaranteed_tenants:
                        guaranteed_open -= 1
            if ctx is not None:
                ctx.dispatch(batch, env)
                return
            if planner is not None:
                planner.dispatch(batch, env)
                return
            finish = self._dispatch(batch, state, active_ids())
            for request in batch.requests:
                pending_estimates.pop(request.request_id, None)
                heapq.heappush(inflight, finish)
                source.on_complete(request, finish)

        def close_batch(key: object, ready_seconds: float) -> None:
            members = open_members.pop(key)
            open_deadline.pop(key)
            dispatch_batch(RequestBatch(requests=members, ready_seconds=ready_seconds))

        def commit_online(batch: RequestBatch, finish: float) -> None:
            for request in batch.requests:
                pending_estimates.pop(request.request_id, None)
                heapq.heappush(inflight, finish)
                source.on_complete(request, finish)

        def fail_request(request: InferenceRequest, seconds: float) -> None:
            pending_estimates.pop(request.request_id, None)
            source.on_shed(request, seconds)

        env = (
            self._fault_hooks(
                state, lambda: active_count, commit_online, fail_request
            )
            if ctx is not None or planner is not None
            else None
        )
        if planner is not None:

            def on_planned(batch: RequestBatch) -> None:
                # Admitted estimates clear at plan time, not commit time:
                # the planned work is already priced into the busy horizon
                # the admission backlog reads.
                for request in batch.requests:
                    pending_estimates.pop(request.request_id, None)

            planner.on_planned = on_planned

        def enqueue(request: InferenceRequest, now: float) -> None:
            nonlocal guaranteed_open
            if guaranteed_tenants and request.tenant in guaranteed_tenants:
                guaranteed_open += 1
            if fair:
                for batch in batcher.add(request, now):
                    dispatch_batch(batch)
                return
            key = request.workload.batch_key
            if key not in open_members:
                open_members[key] = []
                open_deadline[key] = now + self.scheduler.max_wait_seconds
            open_members[key].append(request)
            if len(open_members[key]) >= self.scheduler.max_batch_size:
                close_batch(key, now)

        while True:
            t_arrival = source.peek_time()
            if fair:
                expiring = batcher.peek_deadline()
                t_deadline = expiring[0] if expiring is not None else None
            else:
                deadline_key = None
                if open_deadline:
                    # Ties between expiring batches fire in (deadline, first
                    # request id) order, matching the offline scheduler's
                    # dispatch order.
                    deadline_key = min(
                        open_deadline,
                        key=lambda k: (open_deadline[k], open_members[k][0].request_id),
                    )
                t_deadline = (
                    open_deadline[deadline_key] if deadline_key is not None else None
                )
            t_fault = ctx.next_fault_time() if ctx is not None else None
            t_retry = ctx.next_retry_time() if ctx is not None else None
            t_commit = planner.next_commit_time() if planner is not None else None
            # Event precedence at timestamp ties: commit < fault < deadline <
            # retry < arrival (shared with the fast engine through ``due``).
            # Commits fire first so work whose service has begun is in
            # flight — and immovable — before any same-instant scale
            # decision or fault consults the plan.
            if due(t_commit, t_fault, t_deadline, t_retry, t_arrival):
                planner.commit_next(env)
                continue
            if due(t_fault, t_deadline, t_retry, t_arrival):
                ctx.advance(env, t_fault)
                continue
            if due(t_deadline, t_retry, t_arrival):
                if fair:
                    for batch in batcher.fire_deadline(expiring):
                        dispatch_batch(batch)
                else:
                    close_batch(deadline_key, open_deadline[deadline_key])
                continue
            if due(t_retry, t_arrival):
                retry_request, retry_now = ctx.pop_retry()
                enqueue(retry_request, retry_now)
                continue
            if t_arrival is None:
                break
            request = source.pop()
            now = request.arrival_seconds
            key = request.workload.batch_key
            if first_arrival is None:
                first_arrival = now
            while inflight and inflight[0] <= now:
                heapq.heappop(inflight)
            if autoscaler is not None:
                while recent_sheds and recent_sheds[0] < now - autoscaler.shed_memory_seconds:
                    recent_sheds.popleft()
                open_count = (
                    batcher.pending_count
                    if fair
                    else sum(len(members) for members in open_members.values())
                )
                queue_depth = (
                    1  # the arriving request itself
                    + len(inflight)
                    + open_count
                    + len(recent_sheds)
                )
                if ctx is not None:
                    # Work the fault layer is holding (retries, parked
                    # batches) is still demand the autoscaler must see.
                    queue_depth += ctx.backlog_count()
                if planner is not None:
                    # Planned-but-uncommitted dispatches are queued work
                    # too; commit-at-dispatch counted them via inflight.
                    queue_depth += planner.planned
                previous = active_count
                if guaranteed_tenants is not None:
                    guaranteed_depth = guaranteed_open + (
                        1 if request.tenant in guaranteed_tenants else 0
                    )
                    active_count = autoscaler.observe(
                        now, queue_depth, guaranteed_depth=guaranteed_depth
                    )
                else:
                    active_count = autoscaler.observe(now, queue_depth)
                joining = (
                    order[previous:active_count]
                    if order is not None
                    else range(previous, active_count)
                )
                for shard_id in joining:
                    warmup = autoscaler.warmup_seconds
                    if warmup is None:
                        warmup = self.shards[shard_id].warmup_seconds
                    state.busy_until[shard_id] = max(
                        state.busy_until[shard_id], now + warmup
                    )
                    leases.open(shard_id, now)
                if ctx is not None and active_count > previous:
                    ctx.flush(env)
                if active_count < previous:
                    if planner is not None:
                        if ctx is not None:
                            # Leaving = dispatchable before minus dispatchable
                            # after, so standby substitution under faults is
                            # honoured (a dead prefix shard drains nothing).
                            surviving = set(ctx.active_alive(active_count))
                            leaving = [
                                shard_id
                                for shard_id in ctx.active_alive(previous)
                                if shard_id not in surviving
                            ]
                        else:
                            leaving = (
                                list(order[active_count:previous])
                                if order is not None
                                else list(range(active_count, previous))
                            )
                        drained, completed = planner.drain(leaving, now, env)
                        migrated = 0
                        for stranded in drained:
                            migrated += len(stranded.requests)
                            rebatch = RequestBatch(
                                requests=stranded.requests, ready_seconds=now
                            )
                            if ctx is not None:
                                ctx.dispatch(rebatch, env)
                            else:
                                planner.dispatch(rebatch, env)
                        autoscaler.record_drain(migrated, completed)
                    # Leases close after the drain so a drained shard is
                    # billed to its lowered (post-migration) horizon.
                    departing = (
                        order[active_count:previous]
                        if order is not None
                        else range(active_count, previous)
                    )
                    for shard_id in departing:
                        leases.close(
                            shard_id, max(now, state.busy_until[shard_id])
                        )
            if admission is not None:
                # Backlog of the least-loaded active shard plus the admitted
                # but undispatched work, spread across the active shards —
                # the queue depth times the calibrated per-batch cost.
                if ctx is not None:
                    # Only live shards can absorb work; with none, the
                    # prediction is unbounded and only guaranteed-tier
                    # traffic gets through (to queue until recovery).
                    alive = ctx.active_alive(active_count)
                    if alive:
                        backlog = min(
                            max(state.busy_until[i] - now, 0.0) for i in alive
                        ) + sum(pending_estimates.values()) / len(alive)
                    else:
                        backlog = float("inf")
                else:
                    backlog = min(
                        max(state.busy_until[i] - now, 0.0) for i in active_ids()
                    ) + sum(pending_estimates.values()) / active_count
                if fair:
                    # A request the fair batcher would spill pays a full
                    # standalone pass, not the marginal increment of a
                    # batch it will not join.
                    joinable = (
                        batcher.open_members(key)
                        if batcher.can_join(key, request.tenant)
                        else None
                    )
                else:
                    joinable = open_members.get(key)
                estimate = _admission_estimate(
                    self.template, request, admission, joinable
                )
                # Degraded-quality tier: price the request's cheaper profile
                # against *its own* open batch (degraded requests batch under
                # their own key) so the controller can admit it degraded when
                # the full-quality prediction violates the SLO.
                degraded_workload = admission.degraded_profile(
                    request.workload, request.tenant
                )
                degraded_estimate = None
                degraded_request = None
                if degraded_workload is not None:
                    degraded_key = degraded_workload.batch_key
                    if fair:
                        degraded_joinable = (
                            batcher.open_members(degraded_key)
                            if batcher.can_join(degraded_key, request.tenant)
                            else None
                        )
                    else:
                        degraded_joinable = open_members.get(degraded_key)
                    degraded_request = replace(request, workload=degraded_workload)
                    degraded_estimate = _admission_estimate(
                        self.template, degraded_request, admission, degraded_joinable
                    )
                decision = admission.decide(
                    request, now, backlog, estimate, degraded_estimate
                )
                if admission.record_decisions:
                    decisions.append(decision)
                if decision.admitted:
                    if decision.degraded:
                        request = degraded_request
                        estimate = degraded_estimate
                    pending_estimates[request.request_id] = estimate
                if not decision.admitted:
                    shed_records.append(
                        ShedRecord(
                            request=request,
                            shed_seconds=now,
                            predicted_sojourn=decision.predicted_sojourn,
                            slo_seconds=decision.slo_seconds,
                        )
                    )
                    recent_sheds.append(now)
                    source.on_shed(request, now)
                    continue
            enqueue(request, now)

        fault_stats = (
            ctx.finalize(first_arrival, state.last_finish) if ctx is not None else None
        )
        shard_seconds = leases.finish(state.last_finish) if leases is not None else None
        makespan = 0.0
        if state.served and first_arrival is not None:
            makespan = state.last_finish - first_arrival
        return ClusterReport(
            system=self.system_name,
            policy=self.policy,
            num_shards=self.num_shards,
            served=state.served,
            num_batches=state.num_batches,
            makespan_seconds=makespan,
            shard_busy_seconds=state.busy_total,
            shard_requests=state.shard_requests,
            shed=shed_records,
            slo=slo,
            decisions=decisions,
            scaling_timeline=list(autoscaler.timeline()) if autoscaler is not None else [],
            faults=fault_stats,
            shard_seconds=shard_seconds,
        )

    def serve_workloads(self, workloads: List[WorkloadProfile]) -> ClusterReport:
        """Serve a plain workload list as a zero-gap trace (back-to-back)."""
        requests = [
            InferenceRequest(request_id=i, arrival_seconds=0.0, workload=w)
            for i, w in enumerate(workloads)
        ]
        return self.serve_trace(RequestTrace(requests))


def build_reference_clusters(
    num_shards: int = 1,
    scheduler: Optional[BatchScheduler] = None,
    policy: str = POLICY_LEAST_LOADED,
    tuning_workload: Optional[WorkloadProfile] = None,
    engine: str = ENGINE_FAST,
) -> Dict[str, ShardedServiceCluster]:
    """Sharded clusters for all seven compared systems of Fig. 18.

    Every cluster can be driven by the same traffic trace, which is how the
    serving benchmark compares CPU / GPU / GSamp / FPGA / AutoPre / StatPre /
    DynPre under identical offered load.
    """
    return {
        name: ShardedServiceCluster(
            service,
            num_shards=num_shards,
            scheduler=scheduler,
            policy=policy,
            engine=engine,
        )
        for name, service in build_services(tuning_workload).items()
    }
