"""Cluster failure-domain topology: shards grouped into racks / power domains.

Real outages are correlated — a rack loses power, a top-of-rack switch
drops, a PDU trips — and every shard behind the failed element goes down
*together*.  :class:`ClusterTopology` gives the serving stack a first-class
model of that blast radius: a named partition of the shard ids into
failure domains.  It feeds three consumers:

* **fault injection** — :class:`~repro.serving.faults.FaultSchedule` accepts
  domain-level ``crash_domain`` / ``recover_domain`` events that expand to
  per-shard events, and :class:`~repro.serving.faults.RandomFaults` with
  ``correlated=`` generates seeded whole-domain outages;
* **placement** — :meth:`activation_order` linearises the shards so the
  autoscaler's active prefix spreads across domains (``"spread"``) instead
  of filling one rack first (``"dense"``), and locality dispatch hashes
  request keys to a *domain* before picking a member shard;
* **reporting** — :class:`~repro.serving.faults.FaultStats` aggregates
  outage intervals per domain for the cluster report / timeline renderer.

The topology is a strict partition: every shard id in ``range(num_shards)``
appears in exactly one domain, and domain names are unique and non-empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

#: Activation-order placement policies understood by the cluster.
PLACEMENT_DENSE = "dense"
PLACEMENT_SPREAD = "spread"
PLACEMENTS = (PLACEMENT_DENSE, PLACEMENT_SPREAD)


@dataclass(frozen=True)
class ClusterTopology:
    """A partition of shard ids into named failure domains.

    Attributes:
        domains: mapping of domain name to the sorted tuple of member shard
            ids.  Together the domains must cover ``range(num_shards)``
            exactly once.
    """

    domains: Mapping[str, Tuple[int, ...]]
    _domain_of: Dict[int, str] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.domains:
            raise ValueError("topology needs at least one failure domain")
        normalized: Dict[str, Tuple[int, ...]] = {}
        domain_of: Dict[int, str] = {}
        for name, members in self.domains.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"domain name must be a non-empty string, got {name!r}")
            shard_ids = tuple(sorted(int(s) for s in members))
            if not shard_ids:
                raise ValueError(f"domain {name!r} has no member shards")
            for shard_id in shard_ids:
                if shard_id < 0:
                    raise ValueError(
                        f"domain {name!r} member {shard_id} must be non-negative"
                    )
                if shard_id in domain_of:
                    raise ValueError(
                        f"shard {shard_id} appears in domains "
                        f"{domain_of[shard_id]!r} and {name!r}"
                    )
                domain_of[shard_id] = name
            normalized[name] = shard_ids
        covered = sorted(domain_of)
        if covered != list(range(len(covered))):
            raise ValueError(
                f"domains must partition range({len(covered)}) exactly; got shard "
                f"ids {covered}"
            )
        object.__setattr__(self, "domains", normalized)
        object.__setattr__(self, "_domain_of", domain_of)

    # ------------------------------------------------------------- accessors
    @property
    def num_shards(self) -> int:
        return len(self._domain_of)

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    @property
    def domain_names(self) -> Tuple[str, ...]:
        """Domain names in declaration order (dict order is preserved)."""
        return tuple(self.domains)

    def domain_of(self, shard_id: int) -> str:
        """The failure domain that shard ``shard_id`` belongs to."""
        try:
            return self._domain_of[shard_id]
        except KeyError:
            raise ValueError(
                f"shard {shard_id} is outside this topology "
                f"(num_shards={self.num_shards})"
            ) from None

    def shards_in(self, domain: str) -> Tuple[int, ...]:
        """Sorted member shard ids of ``domain``."""
        try:
            return self.domains[domain]
        except KeyError:
            raise ValueError(
                f"unknown failure domain {domain!r}; expected one of "
                f"{sorted(self.domains)}"
            ) from None

    def validate_for(self, num_shards: int) -> None:
        """Raise unless this topology covers exactly ``num_shards`` shards."""
        if self.num_shards != num_shards:
            raise ValueError(
                f"topology covers {self.num_shards} shards but the cluster has "
                f"{num_shards}"
            )

    # ------------------------------------------------------------- placement
    def activation_order(self, placement: str = PLACEMENT_SPREAD) -> Tuple[int, ...]:
        """Linearise the shards for autoscaler activation.

        ``"dense"`` keeps the natural ``0..num_shards-1`` order (fill one
        domain before touching the next, assuming contiguous domains);
        ``"spread"`` round-robins across the domains in declaration order so
        any active prefix spans as many failure domains as possible — the
        k-th activated shard is the ``k // num_domains``-th member of the
        ``k % num_domains``-th domain (skipping exhausted domains).
        """
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
            )
        if placement == PLACEMENT_DENSE:
            return tuple(range(self.num_shards))
        pools: List[List[int]] = [list(members) for members in self.domains.values()]
        order: List[int] = []
        cursor = 0
        while len(order) < self.num_shards:
            pool = pools[cursor % len(pools)]
            if pool:
                order.append(pool.pop(0))
            cursor += 1
        return tuple(order)

    # ------------------------------------------------------------- factories
    @staticmethod
    def uniform(num_shards: int, num_domains: int, prefix: str = "rack") -> "ClusterTopology":
        """Contiguous equal-ish blocks: ``rack0 = {0, 1}, rack1 = {2, 3}, ...``

        The first ``num_shards % num_domains`` domains get one extra shard.
        """
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if not 0 < num_domains <= num_shards:
            raise ValueError(
                f"num_domains must be in [1, num_shards={num_shards}], got {num_domains}"
            )
        base, extra = divmod(num_shards, num_domains)
        domains: Dict[str, Tuple[int, ...]] = {}
        start = 0
        for index in range(num_domains):
            size = base + (1 if index < extra else 0)
            domains[f"{prefix}{index}"] = tuple(range(start, start + size))
            start += size
        return ClusterTopology(domains)

    # ------------------------------------------------------------- reporting
    def as_dict(self) -> Dict[str, List[int]]:
        """JSON-friendly ``{domain: [shard ids]}`` in declaration order."""
        return {name: list(members) for name, members in self.domains.items()}

    @staticmethod
    def from_dict(data: Mapping[str, Sequence[int]]) -> "ClusterTopology":
        """Inverse of :meth:`as_dict` (used by chaos artifact replay)."""
        return ClusterTopology({name: tuple(members) for name, members in data.items()})
