"""Timestamped inference requests, the request queue and arrival generators.

The serving layer models traffic instead of a bare workload list: every
:class:`InferenceRequest` carries a simulated arrival timestamp, a
:class:`RequestTrace` is an arrival-ordered sequence of requests, and the
generators turn a mix of :class:`~repro.system.workload.WorkloadProfile`\\ s
into a trace either open-loop (requests arrive at a fixed offered rate, no
matter how the service keeps up) or closed-loop (a fixed client population
issues the next request only after the previous one is estimated to finish).

For the online event loop in :mod:`repro.serving.cluster` there are two
arrival *sources*: :class:`TraceArrivals` replays a fixed trace, and
:class:`ClosedLoopClients` co-simulates a client population whose next
arrivals are fed by the cluster's actual finish (or shed) times rather than
an estimate.

All timestamps are simulated seconds; nothing in this module reads the wall
clock, so traces are fully deterministic under a seed.
"""

from __future__ import annotations

import heapq
import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterator, List, NamedTuple, Optional, Sequence, Union

import numpy as np

from repro.system.workload import WorkloadProfile

#: Supported open-loop inter-arrival processes.
ARRIVAL_PROCESSES = ("poisson", "uniform")

#: Version tag of the JSONL trace capture/replay format.  Version 2 added
#: tenant identities (a ``num_tenants`` header count, one ``tenant`` record
#: per distinct tenant and a ``tenant`` pool index on every request record);
#: version-1 captures still load, with every request assigned
#: :data:`DEFAULT_TENANT`.
TRACE_FORMAT_VERSION = 2

#: Tenant assigned to requests that carry no explicit tenant identity
#: (single-tenant traces, pre-tenancy captures).
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class InferenceRequest:
    """One timestamped GNN inference request.

    Attributes:
        request_id: unique, monotonically increasing identifier within a trace.
        arrival_seconds: simulated arrival time of the request.
        workload: the workload profile the request asks the service to run.
        tenant: identity of the tenant the request belongs to.  Tenants share
            one cluster; quotas, weighted shedding and fair batching key on
            this field (see :mod:`repro.serving.control`).
    """

    request_id: int
    arrival_seconds: float
    workload: WorkloadProfile
    tenant: str = DEFAULT_TENANT


class TraceArrays(NamedTuple):
    """Structure-of-arrays view of a trace (the fast engine's working set).

    Attributes:
        arrival_seconds: float64 arrival timestamps, arrival order.
        workload_index: per-request index into ``workload_pool``.
        workload_pool: the distinct workload profiles of the trace.
        request_ids: per-request identifiers, aligned with the arrays.
        tenant_index: per-request index into ``tenant_pool``.
        tenant_pool: the distinct tenant names of the trace.
    """

    arrival_seconds: np.ndarray
    workload_index: np.ndarray
    workload_pool: List[WorkloadProfile]
    request_ids: np.ndarray
    tenant_index: np.ndarray
    tenant_pool: List[str]


class RequestTrace:
    """An arrival-ordered sequence of inference requests.

    Requests are sorted by ``(arrival_seconds, request_id)`` on construction,
    so iteration order is always arrival order regardless of how the trace
    was assembled.

    The trace is dual-represented: as a list of :class:`InferenceRequest`
    objects (the ``requests`` attribute every consumer iterates) and as a
    structure-of-arrays view (:meth:`arrays`) the generators produce and the
    serving fast engine schedules on.  A trace built via :meth:`from_arrays`
    materializes its request *objects* lazily, on first object-level access
    — generating a 100k-request trace allocates three numpy arrays, not
    100k frozen dataclasses.
    """

    def __init__(self, requests: Optional[Sequence[InferenceRequest]] = None) -> None:
        self._requests: Optional[List[InferenceRequest]] = sorted(
            requests or [], key=lambda r: (r.arrival_seconds, r.request_id)
        )
        self._arrays: Optional[TraceArrays] = None

    @classmethod
    def from_arrays(
        cls,
        arrival_seconds: np.ndarray,
        workload_pool: Sequence[WorkloadProfile],
        workload_index: np.ndarray,
        request_ids: Optional[np.ndarray] = None,
        tenant_pool: Optional[Sequence[str]] = None,
        tenant_index: Optional[np.ndarray] = None,
    ) -> "RequestTrace":
        """Build a trace from parallel arrays without materializing objects.

        ``request_ids`` defaults to ``0..n-1`` in (stable) arrival order —
        exactly the ids the object-based constructor would produce for a
        generator that emits requests in issue order.  Rows are stably
        sorted by ``(arrival_seconds, request_id)`` like the list path.
        ``tenant_pool``/``tenant_index`` default to every request belonging
        to :data:`DEFAULT_TENANT`.
        """
        arrivals = np.asarray(arrival_seconds, dtype=np.float64)
        index = np.asarray(workload_index, dtype=np.int64)
        if arrivals.ndim != 1 or arrivals.shape != index.shape:
            raise ValueError("arrival_seconds and workload_index must be parallel 1-D arrays")
        pool = list(workload_pool)
        if len(index) and (index.min() < 0 or index.max() >= len(pool)):
            raise ValueError("workload_index out of range for the workload pool")
        if request_ids is None:
            ids = np.arange(len(arrivals), dtype=np.int64)
        else:
            ids = np.asarray(request_ids, dtype=np.int64)
            if ids.shape != arrivals.shape:
                raise ValueError("request_ids must parallel arrival_seconds")
        if tenant_pool is None and tenant_index is None:
            tenants = [DEFAULT_TENANT]
            tenant_idx = np.zeros(len(arrivals), dtype=np.int64)
        else:
            if tenant_pool is None or tenant_index is None:
                raise ValueError("tenant_pool and tenant_index must be given together")
            tenants = list(tenant_pool)
            tenant_idx = np.asarray(tenant_index, dtype=np.int64)
            if tenant_idx.shape != arrivals.shape:
                raise ValueError("tenant_index must parallel arrival_seconds")
            if len(tenant_idx) and (
                tenant_idx.min() < 0 or tenant_idx.max() >= len(tenants)
            ):
                raise ValueError("tenant_index out of range for the tenant pool")
        order = np.lexsort((ids, arrivals))
        if not np.array_equal(order, np.arange(len(order))):
            arrivals, index, ids = arrivals[order], index[order], ids[order]
            tenant_idx = tenant_idx[order]
        trace = cls.__new__(cls)
        trace._requests = None
        trace._arrays = TraceArrays(arrivals, index, pool, ids, tenant_idx, tenants)
        return trace

    # ----------------------------------------------------------- object view
    @property
    def requests(self) -> List[InferenceRequest]:
        """The request objects in arrival order (materialized on demand)."""
        if self._requests is None:
            arrivals, index, pool, ids, tenant_idx, tenants = self._arrays
            self._requests = [
                InferenceRequest(
                    request_id=rid, arrival_seconds=t, workload=pool[w],
                    tenant=tenants[tn],
                )
                for rid, t, w, tn in zip(
                    ids.tolist(), arrivals.tolist(), index.tolist(), tenant_idx.tolist()
                )
            ]
        return self._requests

    def __len__(self) -> int:
        if self._requests is not None:
            return len(self._requests)
        return len(self._arrays.arrival_seconds)

    def __iter__(self) -> Iterator[InferenceRequest]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> InferenceRequest:
        return self.requests[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestTrace):
            return NotImplemented
        return self.requests == other.requests

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RequestTrace(num_requests={len(self)})"

    # ------------------------------------------------------------ array view
    def arrays(self) -> TraceArrays:
        """Structure-of-arrays view (built from the object list if needed)."""
        if self._arrays is None:
            requests = self._requests
            pool: List[WorkloadProfile] = []
            slot_of = {}
            tenants: List[str] = []
            tenant_slot_of = {}
            index = np.empty(len(requests), dtype=np.int64)
            arrivals = np.empty(len(requests), dtype=np.float64)
            ids = np.empty(len(requests), dtype=np.int64)
            tenant_idx = np.empty(len(requests), dtype=np.int64)
            for i, request in enumerate(requests):
                slot = slot_of.get(request.workload)
                if slot is None:
                    slot = len(pool)
                    slot_of[request.workload] = slot
                    pool.append(request.workload)
                tslot = tenant_slot_of.get(request.tenant)
                if tslot is None:
                    tslot = len(tenants)
                    tenant_slot_of[request.tenant] = tslot
                    tenants.append(request.tenant)
                index[i] = slot
                arrivals[i] = request.arrival_seconds
                ids[i] = request.request_id
                tenant_idx[i] = tslot
            if not tenants:
                tenants = [DEFAULT_TENANT]
            self._arrays = TraceArrays(arrivals, index, pool, ids, tenant_idx, tenants)
        return self._arrays

    # ------------------------------------------------------------ aggregates
    @property
    def duration_seconds(self) -> float:
        """Span between the first and last arrival (0 for short traces)."""
        if len(self) < 2:
            return 0.0
        if self._arrays is not None:
            arrivals = self._arrays.arrival_seconds
            return float(arrivals[-1] - arrivals[0])
        return self._requests[-1].arrival_seconds - self._requests[0].arrival_seconds

    @property
    def offered_rate_rps(self) -> float:
        """Average offered load of the trace in requests per second."""
        if self.duration_seconds <= 0:
            return 0.0
        return (len(self) - 1) / self.duration_seconds

    def workloads(self) -> List[WorkloadProfile]:
        """The workload of every request, in arrival order."""
        if self._arrays is not None:
            pool = self._arrays.workload_pool
            return [pool[w] for w in self._arrays.workload_index.tolist()]
        return [request.workload for request in self._requests]

    def tenants(self) -> List[str]:
        """The distinct tenant names of the trace, in tenant-pool order."""
        arrays = self.arrays()
        if not len(arrays.tenant_index):
            return []
        seen = sorted(set(arrays.tenant_index.tolist()))
        return [arrays.tenant_pool[slot] for slot in seen]

    # -------------------------------------------------------- capture/replay
    def to_jsonl(self, path: Union[str, Path]) -> Path:
        """Capture the trace to a JSONL file (see :meth:`from_jsonl`).

        Line 1 is a header, followed by one line per distinct workload
        profile, one line per distinct tenant and one line per request (ids,
        timestamps, the workload pool index and the tenant pool index).
        Keys are sorted, so the capture of a deterministic trace is
        byte-stable — overload scenarios serialized in one PR can be
        replayed and diffed system-to-system in later ones.
        """
        arrivals, index, pool, ids, tenant_idx, tenants = self.arrays()
        lines = [
            json.dumps(
                {
                    "kind": "trace",
                    "version": TRACE_FORMAT_VERSION,
                    "num_requests": len(self),
                    "num_workloads": len(pool),
                    "num_tenants": len(tenants),
                },
                sort_keys=True,
            )
        ]
        for slot, workload in enumerate(pool):
            lines.append(
                json.dumps(
                    {"kind": "workload", "index": slot, "profile": asdict(workload)},
                    sort_keys=True,
                )
            )
        for slot, tenant in enumerate(tenants):
            lines.append(
                json.dumps(
                    {"kind": "tenant", "index": slot, "name": tenant},
                    sort_keys=True,
                )
            )
        for rid, t, w, tn in zip(
            ids.tolist(), arrivals.tolist(), index.tolist(), tenant_idx.tolist()
        ):
            lines.append(
                json.dumps(
                    {
                        "kind": "request",
                        "id": rid,
                        "arrival_seconds": t,
                        "workload": w,
                        "tenant": tn,
                    },
                    sort_keys=True,
                )
            )
        path = Path(path)
        path.write_text("\n".join(lines) + "\n")
        return path

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "RequestTrace":
        """Replay a trace captured with :meth:`to_jsonl`.

        Round-trip exact: JSON serializes floats via ``repr`` (shortest
        round-trip), so replayed arrival timestamps, ids and workload
        profiles compare equal to the captured trace's.  Version-1 captures
        (pre-tenancy) still load; their requests all belong to
        :data:`DEFAULT_TENANT`.
        """
        lines = Path(path).read_text().splitlines()
        if not lines:
            raise ValueError(f"empty trace file: {path}")
        header = json.loads(lines[0])
        if header.get("kind") != "trace":
            raise ValueError(f"not a trace capture (bad header): {path}")
        version = header.get("version")
        if version not in (1, TRACE_FORMAT_VERSION):
            raise ValueError(
                f"unsupported trace format version {version!r} "
                f"(expected 1..{TRACE_FORMAT_VERSION})"
            )
        pool: List[Optional[WorkloadProfile]] = [None] * header["num_workloads"]
        tenants: List[Optional[str]] = [None] * header.get("num_tenants", 0)
        ids: List[int] = []
        arrivals: List[float] = []
        index: List[int] = []
        tenant_index: List[int] = []
        for line in lines[1:]:
            record = json.loads(line)
            kind = record["kind"]
            if kind == "workload":
                pool[record["index"]] = WorkloadProfile(**record["profile"])
            elif kind == "tenant":
                tenants[record["index"]] = record["name"]
            elif kind == "request":
                ids.append(record["id"])
                arrivals.append(record["arrival_seconds"])
                index.append(record["workload"])
                tenant_index.append(record.get("tenant", 0))
            else:
                raise ValueError(f"unknown record kind {kind!r} in {path}")
        if any(workload is None for workload in pool):
            raise ValueError(f"trace capture is missing workload records: {path}")
        if any(tenant is None for tenant in tenants):
            raise ValueError(f"trace capture is missing tenant records: {path}")
        if not tenants:
            tenants = [DEFAULT_TENANT]
        if len(ids) != header["num_requests"]:
            raise ValueError(
                f"trace capture truncated: header says {header['num_requests']} "
                f"requests, found {len(ids)}"
            )
        # ``from_arrays`` sorts by arrival, which would silently repair a
        # corrupted capture; captures are written time-ordered, so reject
        # out-of-order or negative timestamps instead of masking them.
        for position, seconds in enumerate(arrivals):
            if not math.isfinite(seconds) or seconds < 0.0:
                raise ValueError(
                    f"trace capture has a negative or non-finite arrival "
                    f"timestamp {seconds!r} at request {position}: {path}"
                )
            if position > 0 and seconds < arrivals[position - 1]:
                raise ValueError(
                    f"trace capture timestamps are not monotonic: request "
                    f"{position} arrives at {seconds!r} after "
                    f"{arrivals[position - 1]!r}: {path}"
                )
        return cls.from_arrays(
            np.asarray(arrivals, dtype=np.float64),
            pool,
            np.asarray(index, dtype=np.int64),
            request_ids=np.asarray(ids, dtype=np.int64),
            tenant_pool=tenants,
            tenant_index=np.asarray(tenant_index, dtype=np.int64),
        )


class RequestQueue:
    """A time-ordered queue of pending inference requests.

    Requests may be pushed in any order; the queue always pops the earliest
    arrival first, and ``pop_ready`` drains every request that has arrived
    by a given simulated time.  This is the online front-end of the serving
    layer (a driver feeds arrivals in as they happen); the offline
    :class:`~repro.serving.scheduler.BatchScheduler` replay path iterates a
    complete :class:`RequestTrace` directly instead.
    """

    def __init__(self, requests: Optional[Sequence[InferenceRequest]] = None) -> None:
        self._heap: List[tuple] = []
        self._pushes = 0
        for request in requests or ():
            self.push(request)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, request: InferenceRequest) -> None:
        """Add a request (arrival timestamps need not be monotone).

        Simultaneous arrivals (equal timestamps) pop in FIFO push order: the
        tiebreaker is a per-queue push counter, never the request itself, so
        duplicate ids or identical requests cannot raise a comparison error
        and cannot reorder each other.
        """
        heapq.heappush(self._heap, (request.arrival_seconds, self._pushes, request))
        self._pushes += 1

    def peek_arrival(self) -> Optional[float]:
        """Arrival time of the earliest pending request (None when empty)."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> InferenceRequest:
        """Remove and return the earliest pending request."""
        if not self._heap:
            raise IndexError("pop from an empty RequestQueue")
        return heapq.heappop(self._heap)[2]

    def pop_ready(self, now_seconds: float) -> List[InferenceRequest]:
        """Remove and return every request that has arrived by ``now_seconds``."""
        ready: List[InferenceRequest] = []
        while self._heap and self._heap[0][0] <= now_seconds:
            ready.append(self.pop())
        return ready


def _workload_picks(
    workloads: Sequence[WorkloadProfile], rng: np.random.Generator, count: int
) -> np.ndarray:
    """Indices of ``count`` workloads picked from the mix (uniform, seeded).

    A single-workload mix consumes no randomness, matching the historical
    object-building helper, so seeded traces stay byte-identical.
    """
    if not workloads:
        raise ValueError("workload mix must be non-empty")
    if len(workloads) == 1:
        return np.zeros(count, dtype=np.int64)
    return rng.integers(0, len(workloads), size=count)


@dataclass
class OpenLoopArrivals:
    """Open-loop traffic: requests arrive at an offered rate regardless of
    service progress (the standard serving-benchmark regime).

    Attributes:
        workloads: the workload mix requests are drawn from (uniformly).
        rate_rps: offered load in requests per second.
        process: ``"poisson"`` for exponential inter-arrival gaps or
            ``"uniform"`` for a fixed gap of ``1 / rate_rps``.
        seed: RNG seed for both gaps and workload picks.
        tenant: tenant identity stamped on every generated request.
    """

    workloads: Sequence[WorkloadProfile]
    rate_rps: float
    process: str = "poisson"
    seed: int = 0
    tenant: str = DEFAULT_TENANT

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; expected one of {ARRIVAL_PROCESSES}"
            )

    def trace(self, num_requests: int) -> RequestTrace:
        """Generate a trace of ``num_requests`` timestamped requests.

        Structure-of-arrays throughout: gaps, arrival prefix sums and
        workload picks stay numpy arrays; request objects materialize only
        when a consumer touches the trace's object view.
        """
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        rng = np.random.default_rng(self.seed)
        if self.process == "poisson":
            gaps = rng.exponential(1.0 / self.rate_rps, size=num_requests)
        else:
            gaps = np.full(num_requests, 1.0 / self.rate_rps)
        arrivals = np.cumsum(gaps)
        picks = _workload_picks(self.workloads, rng, num_requests)
        return RequestTrace.from_arrays(
            arrivals,
            list(self.workloads),
            picks,
            tenant_pool=[self.tenant],
            tenant_index=np.zeros(num_requests, dtype=np.int64),
        )


@dataclass
class ClosedLoopArrivals:
    """Closed-loop traffic: ``num_clients`` clients issue one request at a
    time and think for ``think_seconds`` between requests.

    The generator is decoupled from the cluster, so a client's next issue
    time uses ``service_time_fn`` as an *estimate* of its previous request's
    completion (a co-simulated closed loop would feed actual finish times
    back; the estimate keeps trace generation deterministic and reusable
    across clusters being compared on identical traffic).

    Attributes:
        workloads: the workload mix requests are drawn from (uniformly).
        num_clients: concurrent client population.
        think_seconds: idle time between a completion estimate and the next
            request of the same client.
        service_time_fn: estimated service latency of one workload (seconds).
        seed: RNG seed for workload picks.
        tenant: tenant identity stamped on every generated request.
    """

    workloads: Sequence[WorkloadProfile]
    num_clients: int
    think_seconds: float = 0.0
    service_time_fn: Optional[Callable[[WorkloadProfile], float]] = None
    seed: int = 0
    tenant: str = DEFAULT_TENANT

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if self.think_seconds < 0:
            raise ValueError("think_seconds must be non-negative")

    def trace(self, num_requests: int) -> RequestTrace:
        """Generate a trace of ``num_requests`` timestamped requests."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        rng = np.random.default_rng(self.seed)
        estimate = self.service_time_fn or (lambda workload: 0.0)
        pool = list(self.workloads)
        picks = _workload_picks(pool, rng, num_requests)
        # Min-heap of (next issue time, client id): clients start staggered at
        # t = 0 so the first wave arrives together, like a load generator.
        clients = [(0.0, c) for c in range(self.num_clients)]
        heapq.heapify(clients)
        arrivals = np.empty(num_requests, dtype=np.float64)
        for i, pick in enumerate(picks.tolist()):
            issue_at, client = heapq.heappop(clients)
            arrivals[i] = issue_at
            done_estimate = issue_at + max(estimate(pool[pick]), 0.0)
            heapq.heappush(clients, (done_estimate + self.think_seconds, client))
        return RequestTrace.from_arrays(
            arrivals,
            pool,
            picks,
            tenant_pool=[self.tenant],
            tenant_index=np.zeros(num_requests, dtype=np.int64),
        )

    def co_simulated(
        self, max_requests: int, retry_backoff_seconds: float = 0.0
    ) -> "ClosedLoopClients":
        """A co-simulated client population with this generator's parameters.

        Unlike :meth:`trace`, the returned source is driven by the cluster's
        event loop: each client issues its next request only after the loop
        reports the previous one *actually* finished (or was shed), so no
        service-time estimate is involved.
        """
        return ClosedLoopClients(
            workloads=self.workloads,
            num_clients=self.num_clients,
            think_seconds=self.think_seconds,
            seed=self.seed,
            max_requests=max_requests,
            retry_backoff_seconds=retry_backoff_seconds,
            tenant=self.tenant,
        )


@dataclass
class BurstyArrivals:
    """Burst/diurnal open-loop traffic: a piecewise-constant-rate Poisson
    process that alternates between a base rate and a peak (burst) rate.

    The rate envelope is periodic: within every ``period_seconds`` window
    the first ``burst_fraction`` of the period (after the tenant's
    ``phase_seconds`` offset) runs at ``peak_rate_rps`` and the remainder at
    ``base_rate_rps``.  Arrivals are generated by thinning a homogeneous
    Poisson process at the peak rate (exact for piecewise-constant
    envelopes), so traces are fully deterministic under a seed.

    Per-tenant phase offsets let a multi-tenant scenario stagger its bursts
    (one tenant spikes while the others idle — the regime that stresses
    fairness); build one generator per tenant and combine the traces with
    :func:`merge_traces`.

    Attributes:
        workloads: the workload mix requests are drawn from (uniformly).
        base_rate_rps: offered load outside bursts (> 0).
        peak_rate_rps: offered load during bursts (>= ``base_rate_rps``).
        period_seconds: length of one envelope period (> 0).
        burst_fraction: fraction of each period spent at the peak rate
            (0 <= f <= 1).
        phase_seconds: offset of this stream's envelope (a tenant whose
            phase is ``p`` bursts during ``[k*period + p, k*period + p +
            burst_fraction*period)``).
        tenant: tenant identity stamped on every generated request.
        seed: RNG seed for gaps, thinning and workload picks.
    """

    workloads: Sequence[WorkloadProfile]
    base_rate_rps: float
    peak_rate_rps: float
    period_seconds: float
    burst_fraction: float = 0.25
    phase_seconds: float = 0.0
    tenant: str = DEFAULT_TENANT
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_rate_rps <= 0:
            raise ValueError("base_rate_rps must be positive")
        if self.peak_rate_rps < self.base_rate_rps:
            raise ValueError("peak_rate_rps must be >= base_rate_rps")
        if self.period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise ValueError("burst_fraction must be within [0, 1]")

    @property
    def mean_rate_rps(self) -> float:
        """Time-averaged offered rate of the envelope."""
        return (
            self.burst_fraction * self.peak_rate_rps
            + (1.0 - self.burst_fraction) * self.base_rate_rps
        )

    def _rates_at(self, times: np.ndarray) -> np.ndarray:
        """Envelope rate at each timestamp (vectorized)."""
        in_period = np.mod(times - self.phase_seconds, self.period_seconds)
        burst = in_period < self.burst_fraction * self.period_seconds
        return np.where(burst, self.peak_rate_rps, self.base_rate_rps)

    def trace(self, num_requests: int) -> RequestTrace:
        """Generate a trace of ``num_requests`` timestamped requests.

        Thinning keeps the structure-of-arrays discipline of the other
        generators: candidate arrivals come in vectorized chunks at the
        peak rate and are accepted with probability ``rate(t) / peak``.
        """
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        rng = np.random.default_rng(self.seed)
        accepted: List[np.ndarray] = []
        total = 0
        t = 0.0
        # Chunked thinning: expected acceptance is mean/peak per candidate.
        chunk = max(int(num_requests * self.peak_rate_rps / self.mean_rate_rps), 16)
        while total < num_requests:
            gaps = rng.exponential(1.0 / self.peak_rate_rps, size=chunk)
            candidates = t + np.cumsum(gaps)
            t = float(candidates[-1])
            keep = rng.random(chunk) < self._rates_at(candidates) / self.peak_rate_rps
            kept = candidates[keep]
            accepted.append(kept)
            total += len(kept)
        arrivals = np.concatenate(accepted)[:num_requests]
        picks = _workload_picks(self.workloads, rng, num_requests)
        return RequestTrace.from_arrays(
            arrivals,
            list(self.workloads),
            picks,
            tenant_pool=[self.tenant],
            tenant_index=np.zeros(num_requests, dtype=np.int64),
        )


def merge_traces(traces: Sequence[RequestTrace]) -> RequestTrace:
    """Interleave several traces into one, by arrival time.

    The canonical way to build multi-tenant traffic: generate one
    (single-tenant) trace per tenant — e.g. :class:`BurstyArrivals` streams
    with per-tenant phase offsets — and merge them.  Workload and tenant
    pools are deduplicated across the inputs.

    **Id-reassignment contract**: the input traces' request ids are
    *discarded* — the merged trace numbers its requests ``0..n-1`` in merged
    arrival order (stable by input position at same-instant arrivals), which
    keeps ids unique across inputs that each start from 0.  Anything keyed
    on the original ids (e.g. a prior run's per-request records) cannot be
    joined against the merged trace; capture such joins before merging.
    The reassigned ids are exactly what a JSONL round-trip
    (:meth:`RequestTrace.to_jsonl` / :meth:`RequestTrace.from_jsonl`)
    preserves, so merged traces replay reproducibly from disk.

    Each input must itself be time-sorted (non-decreasing, finite
    arrivals) — the invariant :meth:`RequestTrace.from_arrays` established
    when the input was built.  A violation (hand-built arrays, corrupted
    capture) raises ``ValueError`` naming the offending trace, rather than
    silently producing a merged trace whose stable sort scrambles
    same-instant ordering downstream.
    """
    if not traces:
        raise ValueError("merge_traces needs at least one trace")
    pool: List[WorkloadProfile] = []
    slot_of: dict = {}
    tenants: List[str] = []
    tenant_slot_of: dict = {}
    arrival_parts: List[np.ndarray] = []
    index_parts: List[np.ndarray] = []
    tenant_parts: List[np.ndarray] = []
    for position, trace in enumerate(traces):
        arrays = trace.arrays()
        part = arrays.arrival_seconds
        if part.size:
            if not np.isfinite(part).all():
                raise ValueError(
                    f"merge_traces input {position} has non-finite arrival times"
                )
            if np.any(np.diff(part) < 0):
                raise ValueError(
                    f"merge_traces input {position} is not sorted by arrival time"
                )
        workload_map = np.empty(len(arrays.workload_pool), dtype=np.int64)
        for slot, workload in enumerate(arrays.workload_pool):
            merged_slot = slot_of.get(workload)
            if merged_slot is None:
                merged_slot = len(pool)
                slot_of[workload] = merged_slot
                pool.append(workload)
            workload_map[slot] = merged_slot
        tenant_map = np.empty(len(arrays.tenant_pool), dtype=np.int64)
        for slot, tenant in enumerate(arrays.tenant_pool):
            merged_slot = tenant_slot_of.get(tenant)
            if merged_slot is None:
                merged_slot = len(tenants)
                tenant_slot_of[tenant] = merged_slot
                tenants.append(tenant)
            tenant_map[slot] = merged_slot
        arrival_parts.append(arrays.arrival_seconds)
        index_parts.append(workload_map[arrays.workload_index])
        tenant_parts.append(tenant_map[arrays.tenant_index])
    arrivals = np.concatenate(arrival_parts)
    index = np.concatenate(index_parts)
    tenant_index = np.concatenate(tenant_parts)
    # Stable sort by arrival keeps same-instant requests in input order, and
    # the reassigned ids make that order canonical.
    order = np.argsort(arrivals, kind="stable")
    return RequestTrace.from_arrays(
        arrivals[order],
        pool,
        index[order],
        tenant_pool=tenants,
        tenant_index=tenant_index[order],
    )


class TraceArrivals:
    """Adapter that replays a fixed :class:`RequestTrace` as an online source.

    Implements the arrival-source protocol of the cluster event loop
    (:meth:`peek_time` / :meth:`pop` / :meth:`on_complete` / :meth:`on_shed`)
    for open-loop traffic: completions and sheds do not influence future
    arrivals.
    """

    def __init__(self, trace: RequestTrace) -> None:
        self._requests = list(trace)
        self._next = 0

    @property
    def num_issued(self) -> int:
        """Requests handed to the event loop so far."""
        return self._next

    def peek_time(self) -> Optional[float]:
        """Arrival time of the next request (None when the trace is drained)."""
        if self._next >= len(self._requests):
            return None
        return self._requests[self._next].arrival_seconds

    def pop(self) -> InferenceRequest:
        """Hand the next request to the event loop."""
        request = self._requests[self._next]
        self._next += 1
        return request

    def on_complete(self, request: InferenceRequest, finish_seconds: float) -> None:
        """Open-loop traffic ignores completions."""

    def on_shed(self, request: InferenceRequest, shed_seconds: float) -> None:
        """Open-loop traffic ignores sheds."""


class ClosedLoopClients:
    """Co-simulated closed-loop population driven by actual finish times.

    ``num_clients`` clients each keep at most one request outstanding.  The
    cluster event loop pops arrivals from this source and feeds real
    completion times back via :meth:`on_complete`; the owning client then
    thinks for ``think_seconds`` and issues its next request.  A shed request
    completes immediately from the client's point of view (the reject comes
    back at arrival time), so the client retries after the think time plus
    ``retry_backoff_seconds`` — which is what makes overload self-sustaining
    under load shedding.  With both zero, a persistently rejected client
    re-arrives at the same simulated instant and burns the request budget in
    place; give sheds a backoff when pairing this source with admission
    control.

    Fully deterministic: client wake-ups tie-break on client id and workload
    picks come from one seeded generator in issue order.
    """

    def __init__(
        self,
        workloads: Sequence[WorkloadProfile],
        num_clients: int,
        think_seconds: float = 0.0,
        seed: int = 0,
        max_requests: int = 0,
        retry_backoff_seconds: float = 0.0,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if think_seconds < 0:
            raise ValueError("think_seconds must be non-negative")
        if max_requests <= 0:
            raise ValueError("max_requests must be positive")
        if retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be non-negative")
        if not workloads:
            raise ValueError("workload mix must be non-empty")
        self.workloads = list(workloads)
        self.num_clients = num_clients
        self.think_seconds = think_seconds
        self.max_requests = max_requests
        self.retry_backoff_seconds = retry_backoff_seconds
        self.tenant = tenant
        self._rng = np.random.default_rng(seed)
        self._idle: List[tuple] = [(0.0, c) for c in range(num_clients)]
        heapq.heapify(self._idle)
        self._owner: dict = {}
        self._issued = 0

    @property
    def num_issued(self) -> int:
        """Requests handed to the event loop so far."""
        return self._issued

    @property
    def num_outstanding(self) -> int:
        """Issued requests the loop has not yet completed or shed."""
        return len(self._owner)

    def peek_time(self) -> Optional[float]:
        """Issue time of the next client wake-up (None when budget exhausted)."""
        if self._issued >= self.max_requests or not self._idle:
            return None
        return self._idle[0][0]

    def pop(self) -> InferenceRequest:
        """Issue the next request from the earliest-waking idle client."""
        if self.peek_time() is None:
            raise IndexError("pop from an exhausted ClosedLoopClients source")
        issue_at, client = heapq.heappop(self._idle)
        if len(self.workloads) == 1:
            workload = self.workloads[0]
        else:
            workload = self.workloads[int(self._rng.integers(0, len(self.workloads)))]
        request = InferenceRequest(
            request_id=self._issued, arrival_seconds=issue_at, workload=workload,
            tenant=self.tenant,
        )
        self._owner[request.request_id] = client
        self._issued += 1
        return request

    def _rearm(self, request: InferenceRequest, at_seconds: float) -> None:
        client = self._owner.pop(request.request_id, None)
        if client is None:
            return
        heapq.heappush(self._idle, (at_seconds + self.think_seconds, client))

    def on_complete(self, request: InferenceRequest, finish_seconds: float) -> None:
        """The cluster finished ``request``; its client thinks, then re-issues."""
        self._rearm(request, finish_seconds)

    def on_shed(self, request: InferenceRequest, shed_seconds: float) -> None:
        """The cluster shed ``request`` at arrival; its client retries later."""
        self._rearm(request, shed_seconds + self.retry_backoff_seconds)
