"""Timestamped inference requests, the request queue and arrival generators.

The serving layer models traffic instead of a bare workload list: every
:class:`InferenceRequest` carries a simulated arrival timestamp, a
:class:`RequestTrace` is an arrival-ordered sequence of requests, and the
generators turn a mix of :class:`~repro.system.workload.WorkloadProfile`\\ s
into a trace either open-loop (requests arrive at a fixed offered rate, no
matter how the service keeps up) or closed-loop (a fixed client population
issues the next request only after the previous one is estimated to finish).

For the online event loop in :mod:`repro.serving.cluster` there are two
arrival *sources*: :class:`TraceArrivals` replays a fixed trace, and
:class:`ClosedLoopClients` co-simulates a client population whose next
arrivals are fed by the cluster's actual finish (or shed) times rather than
an estimate.

All timestamps are simulated seconds; nothing in this module reads the wall
clock, so traces are fully deterministic under a seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.system.workload import WorkloadProfile

#: Supported open-loop inter-arrival processes.
ARRIVAL_PROCESSES = ("poisson", "uniform")


@dataclass(frozen=True)
class InferenceRequest:
    """One timestamped GNN inference request.

    Attributes:
        request_id: unique, monotonically increasing identifier within a trace.
        arrival_seconds: simulated arrival time of the request.
        workload: the workload profile the request asks the service to run.
    """

    request_id: int
    arrival_seconds: float
    workload: WorkloadProfile


@dataclass
class RequestTrace:
    """An arrival-ordered sequence of inference requests.

    Requests are sorted by ``(arrival_seconds, request_id)`` on construction,
    so iteration order is always arrival order regardless of how the trace
    was assembled.
    """

    requests: List[InferenceRequest] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.requests = sorted(
            self.requests, key=lambda r: (r.arrival_seconds, r.request_id)
        )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[InferenceRequest]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> InferenceRequest:
        return self.requests[index]

    @property
    def duration_seconds(self) -> float:
        """Span between the first and last arrival (0 for short traces)."""
        if len(self.requests) < 2:
            return 0.0
        return self.requests[-1].arrival_seconds - self.requests[0].arrival_seconds

    @property
    def offered_rate_rps(self) -> float:
        """Average offered load of the trace in requests per second."""
        if self.duration_seconds <= 0:
            return 0.0
        return (len(self.requests) - 1) / self.duration_seconds

    def workloads(self) -> List[WorkloadProfile]:
        """The workload of every request, in arrival order."""
        return [request.workload for request in self.requests]


class RequestQueue:
    """A time-ordered queue of pending inference requests.

    Requests may be pushed in any order; the queue always pops the earliest
    arrival first, and ``pop_ready`` drains every request that has arrived
    by a given simulated time.  This is the online front-end of the serving
    layer (a driver feeds arrivals in as they happen); the offline
    :class:`~repro.serving.scheduler.BatchScheduler` replay path iterates a
    complete :class:`RequestTrace` directly instead.
    """

    def __init__(self, requests: Optional[Sequence[InferenceRequest]] = None) -> None:
        self._heap: List[tuple] = []
        self._pushes = 0
        for request in requests or ():
            self.push(request)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, request: InferenceRequest) -> None:
        """Add a request (arrival timestamps need not be monotone).

        Simultaneous arrivals (equal timestamps) pop in FIFO push order: the
        tiebreaker is a per-queue push counter, never the request itself, so
        duplicate ids or identical requests cannot raise a comparison error
        and cannot reorder each other.
        """
        heapq.heappush(self._heap, (request.arrival_seconds, self._pushes, request))
        self._pushes += 1

    def peek_arrival(self) -> Optional[float]:
        """Arrival time of the earliest pending request (None when empty)."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> InferenceRequest:
        """Remove and return the earliest pending request."""
        if not self._heap:
            raise IndexError("pop from an empty RequestQueue")
        return heapq.heappop(self._heap)[2]

    def pop_ready(self, now_seconds: float) -> List[InferenceRequest]:
        """Remove and return every request that has arrived by ``now_seconds``."""
        ready: List[InferenceRequest] = []
        while self._heap and self._heap[0][0] <= now_seconds:
            ready.append(self.pop())
        return ready


def _workload_mix(
    workloads: Sequence[WorkloadProfile], rng: np.random.Generator, count: int
) -> List[WorkloadProfile]:
    """Pick ``count`` workloads from the mix (uniform, seeded)."""
    if not workloads:
        raise ValueError("workload mix must be non-empty")
    if len(workloads) == 1:
        return [workloads[0]] * count
    picks = rng.integers(0, len(workloads), size=count)
    return [workloads[int(i)] for i in picks]


@dataclass
class OpenLoopArrivals:
    """Open-loop traffic: requests arrive at an offered rate regardless of
    service progress (the standard serving-benchmark regime).

    Attributes:
        workloads: the workload mix requests are drawn from (uniformly).
        rate_rps: offered load in requests per second.
        process: ``"poisson"`` for exponential inter-arrival gaps or
            ``"uniform"`` for a fixed gap of ``1 / rate_rps``.
        seed: RNG seed for both gaps and workload picks.
    """

    workloads: Sequence[WorkloadProfile]
    rate_rps: float
    process: str = "poisson"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r}; expected one of {ARRIVAL_PROCESSES}"
            )

    def trace(self, num_requests: int) -> RequestTrace:
        """Generate a trace of ``num_requests`` timestamped requests."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        rng = np.random.default_rng(self.seed)
        if self.process == "poisson":
            gaps = rng.exponential(1.0 / self.rate_rps, size=num_requests)
        else:
            gaps = np.full(num_requests, 1.0 / self.rate_rps)
        arrivals = np.cumsum(gaps)
        mix = _workload_mix(self.workloads, rng, num_requests)
        requests = [
            InferenceRequest(
                request_id=i, arrival_seconds=float(arrivals[i]), workload=mix[i]
            )
            for i in range(num_requests)
        ]
        return RequestTrace(requests)


@dataclass
class ClosedLoopArrivals:
    """Closed-loop traffic: ``num_clients`` clients issue one request at a
    time and think for ``think_seconds`` between requests.

    The generator is decoupled from the cluster, so a client's next issue
    time uses ``service_time_fn`` as an *estimate* of its previous request's
    completion (a co-simulated closed loop would feed actual finish times
    back; the estimate keeps trace generation deterministic and reusable
    across clusters being compared on identical traffic).

    Attributes:
        workloads: the workload mix requests are drawn from (uniformly).
        num_clients: concurrent client population.
        think_seconds: idle time between a completion estimate and the next
            request of the same client.
        service_time_fn: estimated service latency of one workload (seconds).
        seed: RNG seed for workload picks.
    """

    workloads: Sequence[WorkloadProfile]
    num_clients: int
    think_seconds: float = 0.0
    service_time_fn: Optional[Callable[[WorkloadProfile], float]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if self.think_seconds < 0:
            raise ValueError("think_seconds must be non-negative")

    def trace(self, num_requests: int) -> RequestTrace:
        """Generate a trace of ``num_requests`` timestamped requests."""
        if num_requests <= 0:
            raise ValueError("num_requests must be positive")
        rng = np.random.default_rng(self.seed)
        estimate = self.service_time_fn or (lambda workload: 0.0)
        mix = _workload_mix(self.workloads, rng, num_requests)
        # Min-heap of (next issue time, client id): clients start staggered at
        # t = 0 so the first wave arrives together, like a load generator.
        clients = [(0.0, c) for c in range(self.num_clients)]
        heapq.heapify(clients)
        requests: List[InferenceRequest] = []
        for i in range(num_requests):
            issue_at, client = heapq.heappop(clients)
            workload = mix[i]
            requests.append(
                InferenceRequest(request_id=i, arrival_seconds=issue_at, workload=workload)
            )
            done_estimate = issue_at + max(estimate(workload), 0.0)
            heapq.heappush(clients, (done_estimate + self.think_seconds, client))
        return RequestTrace(requests)

    def co_simulated(
        self, max_requests: int, retry_backoff_seconds: float = 0.0
    ) -> "ClosedLoopClients":
        """A co-simulated client population with this generator's parameters.

        Unlike :meth:`trace`, the returned source is driven by the cluster's
        event loop: each client issues its next request only after the loop
        reports the previous one *actually* finished (or was shed), so no
        service-time estimate is involved.
        """
        return ClosedLoopClients(
            workloads=self.workloads,
            num_clients=self.num_clients,
            think_seconds=self.think_seconds,
            seed=self.seed,
            max_requests=max_requests,
            retry_backoff_seconds=retry_backoff_seconds,
        )


class TraceArrivals:
    """Adapter that replays a fixed :class:`RequestTrace` as an online source.

    Implements the arrival-source protocol of the cluster event loop
    (:meth:`peek_time` / :meth:`pop` / :meth:`on_complete` / :meth:`on_shed`)
    for open-loop traffic: completions and sheds do not influence future
    arrivals.
    """

    def __init__(self, trace: RequestTrace) -> None:
        self._requests = list(trace)
        self._next = 0

    @property
    def num_issued(self) -> int:
        """Requests handed to the event loop so far."""
        return self._next

    def peek_time(self) -> Optional[float]:
        """Arrival time of the next request (None when the trace is drained)."""
        if self._next >= len(self._requests):
            return None
        return self._requests[self._next].arrival_seconds

    def pop(self) -> InferenceRequest:
        """Hand the next request to the event loop."""
        request = self._requests[self._next]
        self._next += 1
        return request

    def on_complete(self, request: InferenceRequest, finish_seconds: float) -> None:
        """Open-loop traffic ignores completions."""

    def on_shed(self, request: InferenceRequest, shed_seconds: float) -> None:
        """Open-loop traffic ignores sheds."""


class ClosedLoopClients:
    """Co-simulated closed-loop population driven by actual finish times.

    ``num_clients`` clients each keep at most one request outstanding.  The
    cluster event loop pops arrivals from this source and feeds real
    completion times back via :meth:`on_complete`; the owning client then
    thinks for ``think_seconds`` and issues its next request.  A shed request
    completes immediately from the client's point of view (the reject comes
    back at arrival time), so the client retries after the think time plus
    ``retry_backoff_seconds`` — which is what makes overload self-sustaining
    under load shedding.  With both zero, a persistently rejected client
    re-arrives at the same simulated instant and burns the request budget in
    place; give sheds a backoff when pairing this source with admission
    control.

    Fully deterministic: client wake-ups tie-break on client id and workload
    picks come from one seeded generator in issue order.
    """

    def __init__(
        self,
        workloads: Sequence[WorkloadProfile],
        num_clients: int,
        think_seconds: float = 0.0,
        seed: int = 0,
        max_requests: int = 0,
        retry_backoff_seconds: float = 0.0,
    ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if think_seconds < 0:
            raise ValueError("think_seconds must be non-negative")
        if max_requests <= 0:
            raise ValueError("max_requests must be positive")
        if retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds must be non-negative")
        if not workloads:
            raise ValueError("workload mix must be non-empty")
        self.workloads = list(workloads)
        self.num_clients = num_clients
        self.think_seconds = think_seconds
        self.max_requests = max_requests
        self.retry_backoff_seconds = retry_backoff_seconds
        self._rng = np.random.default_rng(seed)
        self._idle: List[tuple] = [(0.0, c) for c in range(num_clients)]
        heapq.heapify(self._idle)
        self._owner: dict = {}
        self._issued = 0

    @property
    def num_issued(self) -> int:
        """Requests handed to the event loop so far."""
        return self._issued

    @property
    def num_outstanding(self) -> int:
        """Issued requests the loop has not yet completed or shed."""
        return len(self._owner)

    def peek_time(self) -> Optional[float]:
        """Issue time of the next client wake-up (None when budget exhausted)."""
        if self._issued >= self.max_requests or not self._idle:
            return None
        return self._idle[0][0]

    def pop(self) -> InferenceRequest:
        """Issue the next request from the earliest-waking idle client."""
        if self.peek_time() is None:
            raise IndexError("pop from an exhausted ClosedLoopClients source")
        issue_at, client = heapq.heappop(self._idle)
        if len(self.workloads) == 1:
            workload = self.workloads[0]
        else:
            workload = self.workloads[int(self._rng.integers(0, len(self.workloads)))]
        request = InferenceRequest(
            request_id=self._issued, arrival_seconds=issue_at, workload=workload
        )
        self._owner[request.request_id] = client
        self._issued += 1
        return request

    def _rearm(self, request: InferenceRequest, at_seconds: float) -> None:
        client = self._owner.pop(request.request_id, None)
        if client is None:
            return
        heapq.heappush(self._idle, (at_seconds + self.think_seconds, client))

    def on_complete(self, request: InferenceRequest, finish_seconds: float) -> None:
        """The cluster finished ``request``; its client thinks, then re-issues."""
        self._rearm(request, finish_seconds)

    def on_shed(self, request: InferenceRequest, shed_seconds: float) -> None:
        """The cluster shed ``request`` at arrival; its client retries later."""
        self._rearm(request, shed_seconds + self.retry_backoff_seconds)
