"""Deterministic fault injection and recovery for the serving stack.

Every shard in :class:`~repro.serving.cluster.ShardedServiceCluster` is
immortal by default.  This module makes failure a first-class simulated
event: a :class:`FaultSchedule` lists timestamped **crash**, **recover**
and **slowdown** events per shard, and both serving engines consume the
schedule through one shared :class:`FaultRuntime` so their reports stay
byte-identical under every schedule.

Fault model
-----------
* ``crash`` removes a shard from the dispatchable set at its timestamp.
  Queued batches whose start would fall past the crash are **drained and
  migrated**: re-dispatched through the cluster's normal dispatch policy
  once the crash takes effect (the surviving set is only known then).
  Batches already in flight at the crash instant fail and each member is
  **retried with exponential backoff** (``retry_backoff_seconds * 2**k``
  for attempt ``k``) up to a per-request ``retry_budget``; requests that
  exhaust the budget are counted ``failed``, exactly once, so
  ``offered == served + shed + failed`` always holds.
* ``recover`` returns the shard at its timestamp (and clears any
  slowdown).  Parked work re-dispatches immediately.
* ``slowdown`` multiplies the shard's service time by ``factor`` until
  the next slowdown or recover event.

``fault_aware=False`` models the pre-fault-tolerance stack as a
benchmark baseline: dispatch stays blind to liveness, a dead shard
fails its requests instantly without advancing its busy horizon (so
least-loaded dispatch keeps feeding the "idle-looking" dead shard —
the no-health-check death spiral), queued work dies with its shard at
a crash, and in-flight failures are terminal — no drain, no
migration, no retries.

The *voluntary* counterpart of the crash drain lives here too:
:class:`DrainPlanner` defers the loops' commit-at-dispatch so an
:class:`~repro.serving.control.Autoscaler` scale-down can hand a healthy
shard's planned-but-unstarted backlog to the survivors instead of
stranding it (see the class docstring).  Both engines drive it through
the same :class:`FaultLoopHooks`, exactly like the fault runtime.

:class:`RandomFaults` generates reproducible schedules from a seed,
mirroring the arrival-generator idiom (`numpy` ``default_rng``).
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.requests import InferenceRequest
from repro.serving.scheduler import RequestBatch
from repro.serving.topology import ClusterTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.control import SLOPolicy

FAULT_CRASH = "crash"
FAULT_RECOVER = "recover"
FAULT_SLOWDOWN = "slowdown"

#: The recognised fault event kinds.
FAULT_KINDS = (FAULT_CRASH, FAULT_RECOVER, FAULT_SLOWDOWN)

FAULT_CRASH_DOMAIN = "crash_domain"
FAULT_RECOVER_DOMAIN = "recover_domain"

#: The recognised domain-level fault event kinds.
DOMAIN_FAULT_KINDS = (FAULT_CRASH_DOMAIN, FAULT_RECOVER_DOMAIN)


def due(when: Optional[float], *others: Optional[float]) -> bool:
    """True when ``when`` is scheduled and no later than every other horizon.

    The serving loops rank their four event sources (fault, batch
    deadline, retry, arrival) with this one predicate so both engines
    break timestamp ties identically: a source fires when it is due and
    every source ranked after it is either exhausted or no earlier.
    """
    if when is None:
        return False
    return all(other is None or when <= other for other in others)


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped fault event targeting one shard."""

    seconds: float
    shard_id: int
    kind: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if not math.isfinite(self.seconds) or self.seconds < 0:
            raise ValueError(f"fault event time must be finite and >= 0, got {self.seconds!r}")
        if self.shard_id < 0:
            raise ValueError(f"fault event shard_id must be >= 0, got {self.shard_id}")
        if self.kind == FAULT_SLOWDOWN and self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1.0, got {self.factor!r}")

    def as_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "shard_id": self.shard_id,
            "kind": self.kind,
            "factor": self.factor,
        }


@dataclass(frozen=True)
class DomainFaultEvent:
    """One timestamped fault event taking a whole failure domain down or up.

    Domain events are *macros*: :class:`FaultSchedule` expands each into one
    per-shard :class:`FaultEvent` per member of the domain at the same
    instant, and the expanded stream is sorted by ``(seconds, shard_id)`` —
    order-stable tie-breaking, so two domains failing at the same moment
    apply in a deterministic shard order in both engines.
    """

    seconds: float
    domain: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in DOMAIN_FAULT_KINDS:
            raise ValueError(
                f"unknown domain fault kind {self.kind!r}; expected one of {DOMAIN_FAULT_KINDS}"
            )
        if not math.isfinite(self.seconds) or self.seconds < 0:
            raise ValueError(
                f"domain fault event time must be finite and >= 0, got {self.seconds!r}"
            )
        if not isinstance(self.domain, str) or not self.domain:
            raise ValueError(f"domain must be a non-empty string, got {self.domain!r}")

    def as_dict(self) -> dict:
        return {"seconds": self.seconds, "domain": self.domain, "kind": self.kind}


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic, validated sequence of fault events plus retry policy.

    Events are kept sorted by ``(seconds, shard_id)``.  Per shard the
    sequence must alternate sensibly — a crash requires the shard up, a
    recover requires it down, a slowdown requires it up — and two events
    may not target the same shard at the same instant (the outcome would
    be order-dependent).

    ``domain_events`` (which require a ``topology``) are correlated-outage
    macros: each ``crash_domain`` / ``recover_domain`` expands to one
    per-shard event per member of the domain at the same instant.  The
    expanded stream — merged with the independent ``events`` and sorted by
    ``(seconds, shard_id)`` for order-stable tie-breaking — is what the
    runtime consumes (:attr:`expanded_events`) and what the alternation
    validation runs over, so an independent event colliding with a domain
    outage is rejected up front rather than applied in ambiguous order.
    """

    events: Tuple[FaultEvent, ...] = ()
    retry_budget: int = 3
    retry_backoff_seconds: float = 0.05
    fault_aware: bool = True
    domain_events: Tuple[DomainFaultEvent, ...] = ()
    topology: Optional[ClusterTopology] = None

    def __post_init__(self) -> None:
        ordered_independent = tuple(
            sorted(self.events, key=lambda e: (e.seconds, e.shard_id))
        )
        object.__setattr__(self, "events", ordered_independent)
        domain_ordered = tuple(
            sorted(self.domain_events, key=lambda e: (e.seconds, e.domain))
        )
        object.__setattr__(self, "domain_events", domain_ordered)
        expanded: List[FaultEvent] = list(ordered_independent)
        if domain_ordered:
            if self.topology is None:
                raise ValueError(
                    "domain_events require a topology mapping shards to domains"
                )
            for domain_event in domain_ordered:
                kind = (
                    FAULT_CRASH
                    if domain_event.kind == FAULT_CRASH_DOMAIN
                    else FAULT_RECOVER
                )
                for shard_id in self.topology.shards_in(domain_event.domain):
                    expanded.append(FaultEvent(domain_event.seconds, shard_id, kind))
            expanded.sort(key=lambda e: (e.seconds, e.shard_id))
        ordered = tuple(expanded)
        # Kept off the dataclass fields so dataclasses.replace() re-expands
        # from (events, domain_events) instead of double-applying the macros.
        object.__setattr__(self, "_expanded", ordered)
        if self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if self.retry_backoff_seconds <= 0:
            raise ValueError(
                f"retry_backoff_seconds must be > 0, got {self.retry_backoff_seconds!r}"
            )
        down: Dict[int, bool] = {}
        last_at: Dict[int, float] = {}
        for event in ordered:
            shard = event.shard_id
            if last_at.get(shard) == event.seconds:
                raise ValueError(
                    f"two fault events target shard {shard} at t={event.seconds!r}; "
                    "their order would be ambiguous"
                )
            last_at[shard] = event.seconds
            if event.kind == FAULT_CRASH:
                if down.get(shard, False):
                    raise ValueError(f"shard {shard} crashes at t={event.seconds!r} while down")
                down[shard] = True
            elif event.kind == FAULT_RECOVER:
                if not down.get(shard, False):
                    raise ValueError(f"shard {shard} recovers at t={event.seconds!r} while up")
                down[shard] = False
            elif down.get(shard, False):
                raise ValueError(f"shard {shard} slows down at t={event.seconds!r} while down")

    @property
    def expanded_events(self) -> Tuple[FaultEvent, ...]:
        """Independent events merged with the expanded domain macros, sorted
        by ``(seconds, shard_id)`` — the stream the runtime consumes."""
        return self._expanded  # type: ignore[attr-defined]

    def validate_for(self, num_shards: int) -> None:
        """Raise unless every event targets a shard the cluster actually has."""
        if self.topology is not None:
            self.topology.validate_for(num_shards)
        for event in self.expanded_events:
            if event.shard_id >= num_shards:
                raise ValueError(
                    f"fault event targets shard {event.shard_id} but the cluster "
                    f"has only {num_shards} shards"
                )

    def as_dict(self) -> dict:
        return {
            "events": [event.as_dict() for event in self.events],
            "domain_events": [event.as_dict() for event in self.domain_events],
            "topology": self.topology.as_dict() if self.topology is not None else None,
            "retry_budget": self.retry_budget,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "fault_aware": self.fault_aware,
        }

    def runtime(
        self,
        num_shards: int,
        slo: Optional["SLOPolicy"] = None,
        *,
        order: Optional[Sequence[int]] = None,
        topology: Optional[ClusterTopology] = None,
    ) -> "FaultRuntime":
        """Build the per-run mutable state for a cluster of ``num_shards``.

        ``order`` is the cluster's activation order (domain-spread placement);
        ``topology`` enables healthy-domain-first standby substitution and
        defaults to the schedule's own topology.
        """
        self.validate_for(num_shards)
        return FaultRuntime(self, num_shards, slo, order=order, topology=topology)


@dataclass(frozen=True)
class CorrelatedFaults:
    """Whole-domain outage process for :class:`RandomFaults(correlated=...)`.

    Each failure domain alternates exponentially distributed up and down
    periods — a rack power loss takes every member shard down at once —
    drawn from a *separate* seeded stream so enabling correlation leaves
    the independent per-shard fault stream bit-identical.
    """

    mean_uptime_seconds: float
    mean_downtime_seconds: float

    def __post_init__(self) -> None:
        if self.mean_uptime_seconds <= 0 or self.mean_downtime_seconds <= 0:
            raise ValueError("correlated mean uptime/downtime must be > 0")

    def as_dict(self) -> dict:
        return {
            "mean_uptime_seconds": self.mean_uptime_seconds,
            "mean_downtime_seconds": self.mean_downtime_seconds,
        }


#: Stream key mixed with the seed for the domain-outage rng so correlated
#: outages never perturb the independent per-shard stream.
_DOMAIN_STREAM = 0xD0


@dataclass(frozen=True)
class RandomFaults:
    """Seeded crash/recover/slowdown generator (the arrival-generator idiom).

    Each shard alternates exponentially distributed up and down periods;
    crashes are generated while they fall inside ``horizon_seconds`` and
    every outage is closed by a recover event (possibly past the horizon)
    so no shard stays dead forever.  With probability
    ``slowdown_probability`` an up period also degrades to
    ``slowdown_factor`` at a uniform point before its crash.

    With ``correlated=`` (requires ``topology=``) whole failure domains
    additionally fail together: domain outages come from a second seeded
    stream, and independent shard outage cycles or slowdowns that would
    collide with a domain outage of the shard's own domain are dropped
    *without* consuming extra randomness — the surviving independent
    events are identical to the uncorrelated run's.
    """

    num_shards: int
    horizon_seconds: float
    mean_uptime_seconds: float
    mean_downtime_seconds: float
    slowdown_probability: float = 0.0
    slowdown_factor: float = 2.0
    retry_budget: int = 3
    retry_backoff_seconds: float = 0.05
    seed: int = 0
    topology: Optional[ClusterTopology] = None
    correlated: Optional[CorrelatedFaults] = None

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError(f"num_shards must be > 0, got {self.num_shards}")
        if self.horizon_seconds <= 0:
            raise ValueError(f"horizon_seconds must be > 0, got {self.horizon_seconds!r}")
        if self.mean_uptime_seconds <= 0 or self.mean_downtime_seconds <= 0:
            raise ValueError("mean uptime/downtime must be > 0")
        if not 0.0 <= self.slowdown_probability <= 1.0:
            raise ValueError(
                f"slowdown_probability must be in [0, 1], got {self.slowdown_probability!r}"
            )
        if self.slowdown_factor < 1.0:
            raise ValueError(f"slowdown_factor must be >= 1.0, got {self.slowdown_factor!r}")
        if self.correlated is not None and self.topology is None:
            raise ValueError("correlated faults require a topology")
        if self.topology is not None:
            self.topology.validate_for(self.num_shards)

    def schedule(self) -> FaultSchedule:
        """Generate the deterministic schedule for this configuration."""
        domain_events: List[DomainFaultEvent] = []
        blocked: List[List[Tuple[float, float]]] = [[] for _ in range(self.num_shards)]
        if self.correlated is not None:
            domain_rng = np.random.default_rng((self.seed, _DOMAIN_STREAM))
            for name in self.topology.domain_names:
                crash_at = float(
                    domain_rng.exponential(self.correlated.mean_uptime_seconds)
                )
                while crash_at < self.horizon_seconds:
                    recover_at = crash_at + float(
                        domain_rng.exponential(self.correlated.mean_downtime_seconds)
                    )
                    domain_events.append(
                        DomainFaultEvent(crash_at, name, FAULT_CRASH_DOMAIN)
                    )
                    domain_events.append(
                        DomainFaultEvent(recover_at, name, FAULT_RECOVER_DOMAIN)
                    )
                    for shard_id in self.topology.shards_in(name):
                        blocked[shard_id].append((crash_at, recover_at))
                    crash_at = recover_at + float(
                        domain_rng.exponential(self.correlated.mean_uptime_seconds)
                    )

        def collides(shard_id: int, lo: float, hi: float) -> bool:
            # Closed-interval overlap: touching a domain outage boundary is a
            # same-instant same-shard conflict once the macro expands.
            return any(lo <= b_hi and b_lo <= hi for b_lo, b_hi in blocked[shard_id])

        rng = np.random.default_rng(self.seed)
        events: List[FaultEvent] = []
        for shard_id in range(self.num_shards):
            up_start = 0.0
            crash_at = float(rng.exponential(self.mean_uptime_seconds))
            while crash_at < self.horizon_seconds:
                if self.slowdown_probability > 0.0 and rng.random() < self.slowdown_probability:
                    slow_at = up_start + float(rng.uniform(0.0, crash_at - up_start))
                    if up_start < slow_at < crash_at and not collides(
                        shard_id, slow_at, slow_at
                    ):
                        events.append(
                            FaultEvent(slow_at, shard_id, FAULT_SLOWDOWN, self.slowdown_factor)
                        )
                recover_at = crash_at + float(rng.exponential(self.mean_downtime_seconds))
                if not collides(shard_id, crash_at, recover_at):
                    events.append(FaultEvent(crash_at, shard_id, FAULT_CRASH))
                    events.append(FaultEvent(recover_at, shard_id, FAULT_RECOVER))
                up_start = recover_at
                crash_at = recover_at + float(rng.exponential(self.mean_uptime_seconds))
        return FaultSchedule(
            events=tuple(events),
            retry_budget=self.retry_budget,
            retry_backoff_seconds=self.retry_backoff_seconds,
            domain_events=tuple(domain_events),
            topology=self.topology,
        )

    def provenance(self) -> dict:
        """Every generation parameter, JSON-friendly — enough to rebuild this
        exact schedule from a bench artifact or chaos failure dump alone."""
        return {
            "generator": "RandomFaults",
            "seed": self.seed,
            "num_shards": self.num_shards,
            "horizon_seconds": self.horizon_seconds,
            "mean_uptime_seconds": self.mean_uptime_seconds,
            "mean_downtime_seconds": self.mean_downtime_seconds,
            "slowdown_probability": self.slowdown_probability,
            "slowdown_factor": self.slowdown_factor,
            "retry_budget": self.retry_budget,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "topology": self.topology.as_dict() if self.topology is not None else None,
            "correlated": (
                self.correlated.as_dict() if self.correlated is not None else None
            ),
        }


@dataclass(frozen=True)
class DomainOutageStats:
    """Per-failure-domain outage summary inside :class:`FaultStats`.

    ``windows`` are the whole-domain outage intervals — every member shard
    dead simultaneously — clipped to the observed run span.
    """

    domain: str
    shards: Tuple[int, ...]
    outages: int
    outage_seconds: float
    downtime_seconds: float
    windows: Tuple[Tuple[float, float], ...]

    def as_dict(self) -> dict:
        return {
            "domain": self.domain,
            "shards": list(self.shards),
            "outages": self.outages,
            "outage_seconds": self.outage_seconds,
            "downtime_seconds": self.downtime_seconds,
            "windows": [[lo, hi] for lo, hi in self.windows],
        }


@dataclass(frozen=True)
class DomainOutageEvent:
    """One row of the per-domain outage timeline.

    Shaped for :func:`repro.analysis.report.format_timeline`: ``seconds`` /
    ``active_shards`` (alive members of the domain after the transition) /
    ``reason``.
    """

    seconds: float
    active_shards: int
    reason: str


@dataclass(frozen=True)
class FaultStats:
    """The faults section of a :class:`~repro.serving.cluster.ClusterReport`."""

    migrated: int
    retried: int
    failed: int
    downtime_seconds: Tuple[float, ...]
    degraded_seconds: float
    served_degraded: int
    slo_met_degraded: int
    domains: Optional[Tuple[DomainOutageStats, ...]] = None

    @property
    def degraded_slo_attainment(self) -> float:
        """SLO attainment of requests completing inside degraded windows."""
        if self.served_degraded == 0:
            return 1.0
        return self.slo_met_degraded / self.served_degraded

    def domain_timeline(self) -> List[DomainOutageEvent]:
        """Whole-domain outage transitions, ready for ``format_timeline``."""
        rows: List[DomainOutageEvent] = []
        for stats in self.domains or ():
            for lo, hi in stats.windows:
                rows.append(DomainOutageEvent(lo, 0, f"domain-down:{stats.domain}"))
                rows.append(
                    DomainOutageEvent(hi, len(stats.shards), f"domain-up:{stats.domain}")
                )
        rows.sort(key=lambda row: (row.seconds, row.reason))
        return rows

    def as_dict(self) -> dict:
        return {
            "migrated": self.migrated,
            "retried": self.retried,
            "failed": self.failed,
            "downtime_seconds": list(self.downtime_seconds),
            "degraded_seconds": self.degraded_seconds,
            "served_degraded": self.served_degraded,
            "slo_met_degraded": self.slo_met_degraded,
            "degraded_slo_attainment": self.degraded_slo_attainment,
            "domains": (
                [stats.as_dict() for stats in self.domains]
                if self.domains is not None
                else None
            ),
        }


class FaultLoopHooks:
    """How a serving loop exposes its mutable state to the fault runtime.

    Both engines drive the *same* :class:`FaultRuntime` code through this
    bundle of callbacks, which is what keeps their reports byte-identical
    under faults: the runtime owns every fault decision, the hooks only
    read/write loop-local state (busy horizons, served records, arrival
    sources).
    """

    __slots__ = (
        "active_count",
        "busy",
        "set_busy",
        "add_busy",
        "merged",
        "pick",
        "serve",
        "commit",
        "on_failed",
        "active_ids",
    )

    def __init__(
        self,
        *,
        active_count: Callable[[], int],
        busy: Callable[[int], float],
        set_busy: Callable[[int, float], None],
        add_busy: Callable[[int, float], None],
        merged: Callable[[RequestBatch], object],
        pick: Callable[[RequestBatch, object, Sequence[int]], int],
        serve: Callable[[int, object], Tuple[object, float]],
        commit: Callable[[RequestBatch, int, float, float, object, float], None],
        on_failed: Callable[[InferenceRequest, float], None],
        active_ids: Optional[Callable[[], Sequence[int]]] = None,
    ) -> None:
        self.active_count = active_count
        self.busy = busy
        self.set_busy = set_busy
        self.add_busy = add_busy
        self.merged = merged
        self.pick = pick
        self.serve = serve
        self.commit = commit
        self.on_failed = on_failed
        #: Optional explicit active shard ids (the cluster's activation-order
        #: prefix under domain-spread placement); None keeps the historical
        #: ``range(active_count())`` prefix.
        self.active_ids = active_ids


class DrainPlanner:
    """Deferred-commit dispatch plan enabling voluntary scale-down drains.

    The serving loops normally commit a batch the moment it is dispatched:
    shard, start and finish are computed up front and the served record
    lands immediately (commit-at-dispatch).  That makes a *voluntary*
    scale-down impossible to honour — work already queued toward the
    drained shard is retroactively part of history.  When an
    :class:`~repro.serving.control.Autoscaler` runs with ``drain=True``
    the online loops route every successful dispatch through this planner
    instead:

    * :meth:`plan` records the dispatch outcome and advances the shard's
      busy horizon (so later picks see the queue) but **defers** the
      commit;
    * the loop fires :meth:`commit_next` as a first-class event at each
      entry's *start* time — once service begins the work is in flight
      and can no longer migrate;
    * on a scale-down the loop calls :meth:`drain`: planned-but-unstarted
      entries on the leaving shards are cancelled and their batches
      returned for re-dispatch among the survivors, in-flight service
      runs to completion, and each drained shard's busy horizon drops
      back to its *floor* — the finish of its last committed work, kept
      current by :meth:`raise_floor` when the fault runtime moves a
      horizon without a planned entry (recovery, in-flight kill).

    Both engines drive the planner through the same
    :class:`FaultLoopHooks`, which is what keeps drained runs
    byte-identical across the reference loop and the fast engine.
    """

    def __init__(self, num_shards: int) -> None:
        self.num_shards = num_shards
        self._heap: List[Tuple[float, int]] = []  # (start_seconds, plan seq)
        self._entries: Dict[int, tuple] = {}
        self._queued: List[deque] = [deque() for _ in range(num_shards)]
        self._inflight: List[deque] = [deque() for _ in range(num_shards)]
        self._seq = 0
        #: Per shard: the horizon a drain may not lower ``busy`` below.
        self.floor: List[float] = [0.0] * num_shards
        #: Requests planned but not yet committed (counts toward queue depth).
        self.planned = 0
        #: Loop hook fired at plan time (the loops clear their
        #: pending-admission estimates here, not at commit, so the planned
        #: work is not double-counted against the busy horizon).
        self.on_planned: Optional[Callable[[RequestBatch], None]] = None
        #: Degraded-window accounting hook (wired to the fault runtime's
        #: ``_note_degraded`` by :meth:`FaultRuntime.attach_planner`).
        self.note_degraded: Optional[Callable[[RequestBatch, float, float, float], None]] = None

    # ------------------------------------------------------------- planning
    def dispatch(self, batch: RequestBatch, env: FaultLoopHooks) -> None:
        """The fault-free dispatch path: pick, price, plan.

        Written once so the reference loop and the fast engine share the
        exact same pick/serve/plan sequence when draining without a fault
        schedule.
        """
        if env.active_ids is not None:
            active: Sequence[int] = env.active_ids()
        else:
            active = range(env.active_count())
        workload = env.merged(batch)
        shard_id = env.pick(batch, workload, active)
        start = max(batch.ready_seconds, env.busy(shard_id))
        report, duration = env.serve(shard_id, workload)
        finish = start + duration
        env.set_busy(shard_id, finish)
        self.plan(batch, shard_id, start, duration, report, finish)

    def plan(
        self,
        batch: RequestBatch,
        shard_id: int,
        start: float,
        duration: float,
        report: object,
        finish: float,
    ) -> None:
        """Record a dispatch outcome whose commit is deferred to ``start``."""
        seq = self._seq
        self._seq += 1
        self._entries[seq] = (batch, shard_id, start, duration, report, finish)
        self._queued[shard_id].append(seq)
        heapq.heappush(self._heap, (start, seq))
        self.planned += len(batch.requests)
        if self.on_planned is not None:
            self.on_planned(batch)

    # -------------------------------------------------------------- commits
    def next_commit_time(self) -> Optional[float]:
        """Start time of the earliest planned entry (None when drained)."""
        heap = self._heap
        while heap:
            start, seq = heap[0]
            if seq in self._entries:
                return start
            heapq.heappop(heap)  # cancelled by a drain; discard lazily
        return None

    def commit_next(self, env: FaultLoopHooks) -> None:
        """Commit the earliest planned entry: its service begins now."""
        while True:
            _, seq = heapq.heappop(self._heap)
            entry = self._entries.pop(seq, None)
            if entry is not None:
                break
        batch, shard_id, start, duration, report, finish = entry
        queued = self._queued[shard_id]
        if queued and queued[0] == seq:
            # Per-shard starts are non-decreasing, so commits leave in
            # plan (FIFO) order; drains clear whole queues at once.
            queued.popleft()
        self.planned -= len(batch.requests)
        if finish > self.floor[shard_id]:
            self.floor[shard_id] = finish
        self._inflight[shard_id].append((finish, len(batch.requests)))
        env.add_busy(shard_id, duration)
        env.commit(batch, shard_id, start, duration, report, finish)
        if self.note_degraded is not None:
            self.note_degraded(batch, start, duration, finish)

    # --------------------------------------------------------------- drains
    def raise_floor(self, shard_id: int, seconds: float) -> None:
        """Forbid drains from lowering the shard's horizon below ``seconds``."""
        if seconds > self.floor[shard_id]:
            self.floor[shard_id] = seconds

    def drain(
        self, leaving: Sequence[int], now: float, env: FaultLoopHooks
    ) -> Tuple[List[RequestBatch], int]:
        """Drain the ``leaving`` shards at a voluntary scale-down.

        Cancels every planned-but-unstarted entry on those shards and
        returns ``(batches, completed)``: the cancelled batches in plan
        order, ready for re-dispatch among the survivors, and the number
        of requests still in flight on the leaving shards (they run to
        completion).  Each drained shard's busy horizon drops back to its
        floor so reactivation — or standby substitution under faults —
        sees it idle instead of stuck behind migrated work.
        """
        batches: List[RequestBatch] = []
        completed = 0
        for shard_id in leaving:
            inflight = self._inflight[shard_id]
            while inflight and inflight[0][0] <= now:
                inflight.popleft()
            completed += sum(count for _, count in inflight)
            for seq in self._queued[shard_id]:
                entry = self._entries.pop(seq, None)
                if entry is None:
                    continue
                batches.append(entry[0])
                self.planned -= len(entry[0].requests)
            self._queued[shard_id].clear()
            env.set_busy(shard_id, self.floor[shard_id])
        return batches, completed


class FaultRuntime:
    """Per-run mutable fault state shared by both serving engines.

    Tracks shard liveness and slowdown factors as events apply, owns the
    retry heap and the parked-batch list, and performs every
    fault-sensitive dispatch through :meth:`dispatch`.  Built via
    :meth:`FaultSchedule.runtime`.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        num_shards: int,
        slo: Optional["SLOPolicy"] = None,
        *,
        order: Optional[Sequence[int]] = None,
        topology: Optional[ClusterTopology] = None,
    ) -> None:
        self.schedule = schedule
        self.num_shards = num_shards
        self.slo = slo
        #: Activation order under domain-spread placement; None = identity.
        self.order: Optional[Tuple[int, ...]] = tuple(order) if order is not None else None
        if self.order is not None and sorted(self.order) != list(range(num_shards)):
            raise ValueError(
                f"order must be a permutation of range({num_shards}), got {self.order}"
            )
        #: Topology used for healthy-domain standby preference (falls back to
        #: the schedule's own topology, which also drives per-domain stats).
        if (
            topology is not None
            and schedule.topology is not None
            and topology != schedule.topology
        ):
            raise ValueError(
                "the cluster's topology and the fault schedule's topology "
                "disagree; build both from the same ClusterTopology"
            )
        self._placement_topology = topology if topology is not None else schedule.topology
        if self._placement_topology is not None:
            self._placement_topology.validate_for(num_shards)
        self.alive = [True] * num_shards
        self.factor = [1.0] * num_shards
        self._events = list(schedule.expanded_events)
        self._cursor = 0
        # Static views of the schedule: per-shard crash instants, per-shard
        # dead intervals and the merged cluster-degraded intervals (half-open,
        # an unclosed outage extends to +inf).
        self._crashes: List[List[float]] = [[] for _ in range(num_shards)]
        self._dead: List[List[Tuple[float, float]]] = [[] for _ in range(num_shards)]
        open_since: List[Optional[float]] = [None] * num_shards
        dead_count = 0
        degraded_open: Optional[float] = None
        self._degraded: List[Tuple[float, float]] = []
        for event in self._events:
            shard = event.shard_id
            if event.kind == FAULT_CRASH:
                self._crashes[shard].append(event.seconds)
                open_since[shard] = event.seconds
                dead_count += 1
                if dead_count == 1:
                    degraded_open = event.seconds
            elif event.kind == FAULT_RECOVER:
                self._dead[shard].append((open_since[shard], event.seconds))
                open_since[shard] = None
                dead_count -= 1
                if dead_count == 0:
                    self._degraded.append((degraded_open, event.seconds))
                    degraded_open = None
        for shard in range(num_shards):
            if open_since[shard] is not None:
                self._dead[shard].append((open_since[shard], math.inf))
        if degraded_open is not None:
            self._degraded.append((degraded_open, math.inf))
        self._degraded_starts = [lo for lo, _ in self._degraded]
        self._retries: List[Tuple[float, int, InferenceRequest]] = []
        self._retry_seq = 0
        self._attempts: Dict[int, int] = {}
        self.parked: List[RequestBatch] = []
        self.migrated = 0
        self.retried = 0
        self.failed = 0
        self.served_degraded = 0
        self.slo_met_degraded = 0
        #: Optional deferred-commit planner (voluntary scale-down drains).
        self.planner: Optional[DrainPlanner] = None

    def attach_planner(self, planner: DrainPlanner) -> None:
        """Route successful dispatches through a deferred-commit planner.

        Planned entries never straddle a crash (a successful dispatch
        already proved no crash lands before its finish), so the planner
        only has to learn about the horizons the runtime moves *without*
        planning — recovery rejoins and in-flight kills — via
        :meth:`DrainPlanner.raise_floor`.
        """
        self.planner = planner
        planner.note_degraded = self._note_degraded

    # ------------------------------------------------------ schedule queries
    def next_fault_time(self) -> Optional[float]:
        """Timestamp of the next unapplied fault event (None when exhausted)."""
        if self._cursor >= len(self._events):
            return None
        return self._events[self._cursor].seconds

    def next_crash_after(self, shard_id: int, seconds: float) -> Optional[float]:
        """The shard's first crash strictly after ``seconds`` (None: never)."""
        crashes = self._crashes[shard_id]
        index = bisect_right(crashes, seconds)
        return crashes[index] if index < len(crashes) else None

    def dead_until(self, shard_id: int, seconds: float) -> Optional[float]:
        """The recover time of the outage covering ``seconds``, else None.

        Consults the *static* schedule, not the event cursor: a parked batch
        re-dispatched by :meth:`flush` carries a ready time in the cursor's
        future, and a shard that looks alive *now* may be scheduled dead
        across that future start.
        """
        for crash, recover in self._dead[shard_id]:
            if crash <= seconds < recover:
                return recover
        return None

    def degraded_at(self, seconds: float) -> bool:
        """Whether at least one shard is down at ``seconds``."""
        index = bisect_right(self._degraded_starts, seconds) - 1
        return index >= 0 and seconds < self._degraded[index][1]

    # ------------------------------------------------------- dispatch planes
    def _domain_healthy(self, shard_id: int) -> bool:
        """Whether every shard in ``shard_id``'s failure domain is alive."""
        domain = self._placement_topology.domain_of(shard_id)
        return all(self.alive[s] for s in self._placement_topology.shards_in(domain))

    def active_alive(self, active_count: int) -> List[int]:
        """The dispatchable shard set: the autoscaler's target prefix minus
        dead shards, topped up with live standby shards past the prefix so
        crashed capacity is replaced while provisioned spares exist.

        With an activation ``order`` the prefix is the order's first
        ``active_count`` shards, and the standby top-up prefers shards in
        *healthy* failure domains (every member alive) — replacing a rack's
        lost capacity inside the blast radius of the same failing rack is
        how a second correlated hit takes the substitutes down too.
        """
        if not self.schedule.fault_aware:
            if self.order is not None:
                return list(self.order[:active_count])
            return list(range(active_count))
        if self.order is None:
            active = [s for s in range(active_count) if self.alive[s]]
            missing = active_count - len(active)
            for shard in range(active_count, self.num_shards):
                if missing == 0:
                    break
                if self.alive[shard]:
                    active.append(shard)
                    missing -= 1
            return active
        active = [s for s in self.order[:active_count] if self.alive[s]]
        missing = active_count - len(active)
        if missing > 0:
            standby = [s for s in self.order[active_count:] if self.alive[s]]
            if self._placement_topology is not None:
                standby.sort(key=lambda s: not self._domain_healthy(s))
            for shard in standby:
                if missing == 0:
                    break
                active.append(shard)
                missing -= 1
        return active

    def backlog_count(self) -> int:
        """Requests the fault layer is holding (retry heap + parked batches)."""
        return len(self._retries) + sum(len(b.requests) for b in self.parked)

    def next_retry_time(self) -> Optional[float]:
        return self._retries[0][0] if self._retries else None

    def pop_retry(self) -> Tuple[InferenceRequest, float]:
        retry_at, _seq, request = heapq.heappop(self._retries)
        return request, retry_at

    def advance(self, env: FaultLoopHooks, until: float) -> None:
        """Apply every fault event due at or before ``until``, then flush."""
        changed = False
        while self._cursor < len(self._events) and self._events[self._cursor].seconds <= until:
            event = self._events[self._cursor]
            self._cursor += 1
            shard = event.shard_id
            if event.kind == FAULT_CRASH:
                self.alive[shard] = False
            elif event.kind == FAULT_RECOVER:
                self.alive[shard] = True
                self.factor[shard] = 1.0
                # A recovered shard rejoins idle no earlier than its revival.
                rejoin = max(env.busy(shard), event.seconds)
                env.set_busy(shard, rejoin)
                if self.planner is not None:
                    self.planner.raise_floor(shard, rejoin)
            else:
                self.factor[shard] = event.factor
            changed = True
        if changed:
            self.flush(env)

    def flush(self, env: FaultLoopHooks) -> None:
        """Re-dispatch parked batches now that capacity may be back."""
        if not self.parked or not self.active_alive(env.active_count()):
            return
        pending, self.parked = self.parked, []
        for batch in pending:
            self.dispatch(batch, env)

    def dispatch(self, batch: RequestBatch, env: FaultLoopHooks) -> None:
        """Dispatch ``batch`` with full fault semantics (park / migrate /
        in-flight failure / commit)."""
        if not self.schedule.fault_aware:
            self._dispatch_oblivious(batch, env)
            return
        active = self.active_alive(env.active_count())
        if not active:
            self.parked.append(batch)
            return
        workload = env.merged(batch)
        # A shard whose queue extends past its own next crash would sit the
        # batch behind doomed work; drain to another live candidate instead,
        # and only park (until the earliest of those crashes takes effect)
        # when every live shard is doomed first.
        candidates = active
        migrated = False
        while True:
            shard_id = env.pick(batch, workload, candidates)
            start = max(batch.ready_seconds, env.busy(shard_id))
            crash_at = self.next_crash_after(shard_id, batch.ready_seconds)
            # A flushed parked batch can carry a ready time ahead of the
            # event cursor, so "alive now" is not enough: the shard must
            # also not be scheduled dead across the batch's actual start.
            if self.dead_until(shard_id, start) is None and (
                crash_at is None or crash_at > start
            ):
                break
            migrated = True
            candidates = [s for s in candidates if s != shard_id]
            if not candidates:
                self.migrated += len(batch.requests)
                horizons = []
                for s in active:
                    blocked = self.dead_until(
                        s, max(batch.ready_seconds, env.busy(s))
                    )
                    if blocked is not None:
                        horizons.append(blocked)
                        continue
                    crash = self.next_crash_after(s, batch.ready_seconds)
                    if crash is not None:
                        horizons.append(crash)
                self.parked.append(
                    RequestBatch(requests=batch.requests, ready_seconds=min(horizons))
                )
                return
        if migrated:
            self.migrated += len(batch.requests)
        report, duration = env.serve(shard_id, workload)
        duration = duration * self.factor[shard_id]
        finish = start + duration
        if crash_at is not None and crash_at < finish:
            # In-flight failure: the pass dies with the shard; each member
            # retries with exponential backoff until its budget runs out.
            env.set_busy(shard_id, crash_at)
            env.add_busy(shard_id, crash_at - start)
            if self.planner is not None:
                self.planner.raise_floor(shard_id, crash_at)
            for request in batch.requests:
                self._retry_or_fail(request, crash_at, env)
            return
        env.set_busy(shard_id, finish)
        if self.planner is not None:
            self.planner.plan(batch, shard_id, start, duration, report, finish)
            return
        env.add_busy(shard_id, duration)
        env.commit(batch, shard_id, start, duration, report, finish)
        self._note_degraded(batch, start, duration, finish)

    def _dispatch_oblivious(self, batch: RequestBatch, env: FaultLoopHooks) -> None:
        """The fault-oblivious baseline: dispatch is blind to liveness.

        A dead shard fails requests instantly (connection refused) without
        advancing its busy horizon — so to least-loaded dispatch it looks
        *idle* and keeps attracting traffic for the whole outage, the
        classic no-health-check death spiral.  Work already sitting in a
        shard's queue when the crash hits dies with the shard, and in-flight
        failures are terminal: nothing migrates, nothing retries.
        """
        if env.active_ids is not None:
            active = list(env.active_ids())
        else:
            active = list(range(env.active_count()))
        workload = env.merged(batch)
        shard_id = env.pick(batch, workload, active)
        if not self.alive[shard_id]:
            # Fail fast: the dead shard's horizon stays frozen, so dispatch
            # never learns to route around it.
            for request in batch.requests:
                self.failed += 1
                env.on_failed(request, batch.ready_seconds)
            return
        start = max(batch.ready_seconds, env.busy(shard_id))
        crash_at = self.next_crash_after(shard_id, batch.ready_seconds)
        if crash_at is not None and crash_at <= start:
            # The batch sat in the shard's queue when the crash hit: the
            # queue dies with the shard and nothing resubmits the work.
            for request in batch.requests:
                self.failed += 1
                env.on_failed(request, crash_at)
            return
        report, duration = env.serve(shard_id, workload)
        duration = duration * self.factor[shard_id]
        finish = start + duration
        if crash_at is not None and crash_at < finish:
            env.set_busy(shard_id, crash_at)
            env.add_busy(shard_id, crash_at - start)
            if self.planner is not None:
                self.planner.raise_floor(shard_id, crash_at)
            for request in batch.requests:
                self.failed += 1
                env.on_failed(request, crash_at)
            return
        env.set_busy(shard_id, finish)
        if self.planner is not None:
            self.planner.plan(batch, shard_id, start, duration, report, finish)
            return
        env.add_busy(shard_id, duration)
        env.commit(batch, shard_id, start, duration, report, finish)
        self._note_degraded(batch, start, duration, finish)

    def _retry_or_fail(self, request: InferenceRequest, seconds: float, env: FaultLoopHooks) -> None:
        attempt = self._attempts.get(request.request_id, 0)
        if attempt < self.schedule.retry_budget:
            self._attempts[request.request_id] = attempt + 1
            self.retried += 1
            retry_at = seconds + self.schedule.retry_backoff_seconds * (2.0 ** attempt)
            heapq.heappush(self._retries, (retry_at, self._retry_seq, request))
            self._retry_seq += 1
        else:
            self.failed += 1
            env.on_failed(request, seconds)

    def _note_degraded(
        self, batch: RequestBatch, start: float, duration: float, finish: float
    ) -> None:
        if not self.degraded_at(finish):
            return
        for request in batch.requests:
            self.served_degraded += 1
            sojourn = (
                (batch.ready_seconds - request.arrival_seconds)
                + (start - batch.ready_seconds)
                + duration
            )
            if self.slo is None or sojourn <= self.slo.slo_for(request.workload, request.tenant):
                self.slo_met_degraded += 1

    # -------------------------------------------------------- offline replay
    def _settle_retries(self, env: FaultLoopHooks, until: Optional[float]) -> None:
        while True:
            retry_at = self.next_retry_time()
            if retry_at is None or (until is not None and retry_at > until):
                return
            self.advance(env, retry_at)
            if self.next_retry_time() != retry_at:
                continue  # the advance re-dispatched work and moved the horizon
            request, at = self.pop_retry()
            self.dispatch(RequestBatch(requests=[request], ready_seconds=at), env)

    def step(self, env: FaultLoopHooks, batch: RequestBatch) -> None:
        """Offline replay: settle every retry and fault event due before
        ``batch`` closes, then dispatch it."""
        self._settle_retries(env, batch.ready_seconds)
        self.advance(env, batch.ready_seconds)
        self.dispatch(batch, env)

    def drain(self, env: FaultLoopHooks) -> None:
        """Settle all remaining retries and fault events after the last batch."""
        while True:
            self._settle_retries(env, None)
            if self._cursor < len(self._events):
                self.advance(env, self._events[self._cursor].seconds)
                continue
            break

    # -------------------------------------------------------------- summary
    def finalize(self, first_arrival: Optional[float], last_finish: float) -> FaultStats:
        """Fail whatever is still parked and summarise the run's fault story.

        Downtime and degraded windows are clipped to the observed run span
        ``[first_arrival, last_finish]`` so an outage scheduled past the end
        of traffic does not inflate the stats.
        """
        for batch in self.parked:
            self.failed += len(batch.requests)
        self.parked = []
        start = first_arrival if first_arrival is not None else 0.0
        end = max(last_finish, start)

        def clipped(lo: float, hi: float) -> float:
            return max(0.0, min(hi, end) - max(lo, start))

        downtime = tuple(
            sum(clipped(lo, hi) for lo, hi in self._dead[shard])
            for shard in range(self.num_shards)
        )
        degraded = sum(clipped(lo, hi) for lo, hi in self._degraded)
        domains: Optional[Tuple[DomainOutageStats, ...]] = None
        topology = self.schedule.topology
        if topology is not None:
            per_domain: List[DomainOutageStats] = []
            for name in topology.domain_names:
                members = topology.shards_in(name)
                windows = []
                for lo, hi in self._full_outage_windows(members):
                    lo_c, hi_c = max(lo, start), min(hi, end)
                    if hi_c > lo_c:
                        windows.append((lo_c, hi_c))
                per_domain.append(
                    DomainOutageStats(
                        domain=name,
                        shards=members,
                        outages=len(windows),
                        outage_seconds=sum(hi - lo for lo, hi in windows),
                        downtime_seconds=sum(downtime[s] for s in members),
                        windows=tuple(windows),
                    )
                )
            domains = tuple(per_domain)
        return FaultStats(
            migrated=self.migrated,
            retried=self.retried,
            failed=self.failed,
            downtime_seconds=downtime,
            degraded_seconds=degraded,
            served_degraded=self.served_degraded,
            slo_met_degraded=self.slo_met_degraded,
            domains=domains,
        )

    def _full_outage_windows(self, members: Sequence[int]) -> List[Tuple[float, float]]:
        """Intervals where every shard in ``members`` is dead simultaneously.

        Sweep over the members' dead intervals; a ``-1`` (recover) at the
        same instant as a ``+1`` (crash) applies first, matching the
        half-open interval semantics — the recovering shard is alive at the
        boundary, so the domain is not fully down there.
        """
        transitions: List[Tuple[float, int]] = []
        for shard in members:
            for lo, hi in self._dead[shard]:
                transitions.append((lo, 1))
                transitions.append((hi, -1))
        transitions.sort(key=lambda t: (t[0], t[1]))
        windows: List[Tuple[float, float]] = []
        count = 0
        open_at: Optional[float] = None
        for when, delta in transitions:
            count += delta
            if count == len(members) and open_at is None:
                open_at = when
            elif count < len(members) and open_at is not None:
                windows.append((open_at, when))
                open_at = None
        if open_at is not None:
            windows.append((open_at, math.inf))
        return windows
