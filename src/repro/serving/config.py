"""Unified serving configuration: one validated object instead of six kwargs.

Six PRs of growth left :meth:`ShardedServiceCluster.serve_trace` /
:meth:`~repro.serving.cluster.ShardedServiceCluster.serve_online` with a
sprawling keyword surface spread over three layers — the cluster
constructor (``engine``), the scheduler (``tenant_weights``), the admission
controller (``batch_aware``, ``record_decisions``) and the fault schedule
(``fault_aware``).  :class:`ServingConfig` consolidates all of it behind
``serve_trace(trace, config=...)`` / ``serve_online(source, config=...)``:

* **engine / tenant_weights** override the cluster's construction-time
  choices for one run (swapped in and restored afterwards);
* **slo** scores the run; **controller** (a pre-built
  :class:`~repro.serving.control.AdmissionController`) sheds against it;
* **admit=True** builds the controller from ``slo`` right here, with the
  admission knobs (``record_decisions``, ``batch_aware``, ``degradation``)
  carried by the config — the common case that previously required
  constructing the controller by hand;
* **degradation** (a :class:`~repro.serving.control.DegradationPolicy`)
  turns binary shedding into quality-latency tiering: requests whose
  full-quality prediction violates the SLO are downgraded to a cheaper
  execution profile instead of shed;
* **faults / fault_aware** inject a shard fault schedule and optionally
  override its health-check awareness;
* **autoscaler** attaches elastic scaling (online loop only); with its
  ``drain=True`` default a scale-down drains-and-migrates queued work to
  the surviving shards instead of stranding it.

The legacy keyword arguments still work through a shim that emits
``DeprecationWarning`` and maps them onto a config — byte-identical reports
by construction, regression-tested in ``tests/test_serving_config.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from repro.serving.control import (
    AdmissionController,
    Autoscaler,
    DegradationPolicy,
    SLOPolicy,
)
from repro.serving.faults import FaultSchedule
from repro.serving.topology import PLACEMENTS, ClusterTopology

#: Mirror of :data:`repro.serving.cluster.ENGINES` (imported lazily in the
#: validator to keep the config module import-cycle-free).
_ENGINES = ("reference", "fast")


@dataclass(frozen=True)
class ServingConfig:
    """Everything one serving run needs, validated up front.

    Attributes:
        engine: serving engine override for this run (``"reference"`` /
            ``"fast"``); ``None`` keeps the cluster's own engine.
        slo: latency objectives the run is scored against.  On its own it
            never sheds (score-only, like the legacy ``slo=`` kwarg).
        controller: a pre-built admission controller.  Mutually exclusive
            with the admission knobs below — a supplied controller already
            carries its own ``record_decisions`` / ``batch_aware`` /
            ``degradation``.  When set, ``slo`` defaults to the
            controller's policy for scoring.
        admit: build an :class:`AdmissionController` from ``slo`` with the
            knobs below (requires ``slo``; ignored when ``controller`` is
            given, which already implies admission).
        record_decisions: keep the per-request admission decision log
            (disable for memory-bounded 100k-request runs).
        batch_aware: predict with marginal merged-batch cost instead of the
            standalone estimate.
        degradation: quality-latency tiering policy; admission downgrades
            SLO-violating requests to their cheaper profile instead of
            shedding when the degraded prediction fits.
        autoscaler: elastic shard scaling (``serve_online`` only); the
            autoscaler's own ``drain`` flag picks drain-and-migrate
            (default) versus legacy stranding scale-downs.
        faults: shard crash/recover/slowdown schedule for the run.
        fault_aware: override the schedule's ``fault_aware`` flag (health
            checks on/off) without rebuilding it; requires ``faults``.
        tenant_weights: weighted-fair batch formation override; replaces
            the scheduler's ``tenant_weights`` for this run.
        topology: failure-domain topology override
            (:class:`~repro.serving.topology.ClusterTopology`) for this run;
            ``None`` keeps the cluster's own topology.  Domain-aware
            activation order, locality hashing and healthy-domain standby
            preference all follow the override.
        placement: activation-order placement override (``"spread"`` /
            ``"dense"``); ``None`` keeps the cluster's own placement.  Only
            meaningful when the run has a topology (its own or overridden).
    """

    engine: Optional[str] = None
    slo: Optional[SLOPolicy] = None
    controller: Optional[AdmissionController] = None
    admit: bool = False
    record_decisions: bool = True
    batch_aware: bool = False
    degradation: Optional[DegradationPolicy] = None
    autoscaler: Optional[Autoscaler] = None
    faults: Optional[FaultSchedule] = None
    fault_aware: Optional[bool] = None
    tenant_weights: Optional[Mapping[str, float]] = None
    topology: Optional[ClusterTopology] = None
    placement: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine is not None and self.engine not in _ENGINES:
            raise ValueError(
                f"unknown serving engine {self.engine!r}; expected one of {_ENGINES}"
            )
        knobs_touched = (
            self.record_decisions is not True
            or self.batch_aware is not False
            or self.degradation is not None
        )
        if self.controller is not None:
            if knobs_touched:
                raise ValueError(
                    "record_decisions / batch_aware / degradation belong to the "
                    "supplied controller — configure them on the "
                    "AdmissionController, not alongside it"
                )
            if self.slo is not None and self.slo is not self.controller.policy:
                raise ValueError(
                    "slo and controller.policy disagree; drop the slo field "
                    "(scoring defaults to the controller's policy)"
                )
        elif self.admit or knobs_touched:
            if self.slo is None:
                raise ValueError(
                    "admission (admit=True or any admission knob) requires an slo"
                )
        if self.fault_aware is not None and self.faults is None:
            raise ValueError("fault_aware requires a faults schedule")
        if self.tenant_weights is not None:
            if not self.tenant_weights:
                raise ValueError("tenant_weights must not be empty")
            for tenant, weight in self.tenant_weights.items():
                if weight <= 0:
                    raise ValueError(f"weight for tenant {tenant!r} must be positive")
        if self.placement is not None and self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; expected one of {PLACEMENTS}"
            )

    # ------------------------------------------------------------- resolution
    def scoring_slo(self) -> Optional[SLOPolicy]:
        """The policy the run's goodput section is scored against."""
        if self.slo is not None:
            return self.slo
        if self.controller is not None:
            return self.controller.policy
        return None

    def resolved_controller(self) -> Optional[AdmissionController]:
        """The admission controller this run sheds with (``None`` = no shedding)."""
        if self.controller is not None:
            return self.controller
        if self.slo is not None and (
            self.admit
            or self.record_decisions is not True
            or self.batch_aware is not False
            or self.degradation is not None
        ):
            return AdmissionController(
                self.slo,
                record_decisions=self.record_decisions,
                batch_aware=self.batch_aware,
                degradation=self.degradation,
            )
        return None

    def resolved_faults(self) -> Optional[FaultSchedule]:
        """The fault schedule with any ``fault_aware`` override applied."""
        if self.faults is None or self.fault_aware is None:
            return self.faults
        if self.faults.fault_aware == self.fault_aware:
            return self.faults
        return replace(self.faults, fault_aware=self.fault_aware)
