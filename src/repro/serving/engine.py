"""The fast serving engine: indexed event heaps + serve-transition caching.

This module is the ``engine="fast"`` implementation behind
:class:`~repro.serving.cluster.ShardedServiceCluster`.  It reproduces the
reference event loops' output *byte-identically* (golden- and property-test
enforced) while replacing their per-event linear work with indexed
structures and memoization:

* **Serve-transition cache** — a batch's :class:`ServiceReport` is a pure
  function of ``(preprocessing state, merged workload)``; the engine caches
  the ``(state, workload) -> (report, duration, next state)`` transition and
  replays it on any shard in the same starting state
  (``PreprocessingSystem.state_key`` / ``snapshot_state`` / ``apply_state``).
  For DynPre this eliminates the per-batch bitstream-library sweep; for
  stateless systems it eliminates the analytic model evaluation outright.
* **Indexed shard heap** — least-loaded dispatch and admission backlog reads
  pop a ``(busy_until, shard_id)`` priority structure with lazy staleness
  instead of scanning every shard per batch.
* **Array-level batch formation** — offline traces are chunked per
  compatibility key on the trace's structure-of-arrays view
  (``BatchScheduler.schedule_fast``), one ``searchsorted`` per batch.
* **Deadline heap** — the online loop's next-expiring-batch query is a heap
  top instead of a scan over all open batches, and the autoscaler's queue
  depth is a running counter.
* **Streaming aggregates** — sojourns fold into
  :class:`~repro.analysis.metrics.StreamingLatencyStats` and running
  decomposition sums as requests are served (same accumulation order as the
  reference report properties, hence bit-identical), so a report can
  :meth:`~repro.serving.cluster.ClusterReport.compact` away its per-request
  records at 100k-request scale.

Float discipline: every arithmetic expression that lands in a report is kept
textually identical to the reference loop's (same operand order, same
reductions over the same iteration order), because the golden-report suite
asserts byte equality of the rendered JSON.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import StreamingLatencyStats
from repro.serving.faults import DrainPlanner, FaultLoopHooks, FaultSchedule, due
from repro.serving.requests import InferenceRequest
from repro.serving.scheduler import RequestBatch
from repro.system.workload import QUALITY_DEGRADED, WorkloadProfile

if TYPE_CHECKING:
    from repro.serving.cluster import ShardedServiceCluster
    from repro.serving.control import AdmissionController, Autoscaler, SLOPolicy
    from repro.system.service import GNNService, ServiceReport


class ShardHeap:
    """Keyed priority structure over shard busy horizons.

    ``busy`` is the authoritative per-shard busy-until list (shared with the
    report's utilisation accounting); the heap holds ``(busy_until, shard)``
    entries with lazy invalidation — an entry is stale when it no longer
    matches ``busy``.  Staleness is a *value* comparison, not a
    monotonicity assumption: horizons normally only grow, but a voluntary
    drain lowers a leaving shard's horizon back to its in-flight floor,
    which simply revalidates (or duplicates) an earlier entry — every
    shard always has one entry matching its current value, so :meth:`pick`
    stays correct.  :meth:`pick` returns the shard the reference loop's
    ``min(active, key=lambda i: (busy_until[i], i))`` would return: the heap
    order ``(busy, shard_id)`` is exactly that tie-break.

    Entries for shards outside the active prefix (autoscaler drained or
    scaled down mid-run) are momentarily set aside during a pick and
    reinserted, so a pick can never land on a deactivated shard and a
    later scale-up still sees its horizon.
    """

    __slots__ = ("busy", "_heap")

    def __init__(self, num_shards: int) -> None:
        self.busy = [0.0] * num_shards
        self._heap: List[Tuple[float, int]] = [(0.0, i) for i in range(num_shards)]

    def update(self, shard_id: int, busy_until: float) -> None:
        """Raise one shard's busy horizon."""
        self.busy[shard_id] = busy_until
        heapq.heappush(self._heap, (busy_until, shard_id))

    def pick(self, active_count: int) -> int:
        """Earliest-free shard among the active prefix ``[0, active_count)``."""
        heap = self._heap
        deferred: List[Tuple[float, int]] = []
        while True:
            busy_until, shard_id = heap[0]
            if busy_until != self.busy[shard_id]:
                heapq.heappop(heap)
                continue
            if shard_id >= active_count:
                deferred.append(heapq.heappop(heap))
                continue
            break
        for entry in deferred:
            heapq.heappush(heap, entry)
        return shard_id

    def min_busy(self, active_count: int) -> float:
        """Smallest busy horizon among the active prefix."""
        return self.busy[self.pick(active_count)]


class _RunAccumulator:
    """Streaming per-request aggregates of one engine run.

    Accumulation order matches the reference report properties exactly
    (served order, left-fold sums) — per tenant too — which is what makes
    the resulting :class:`~repro.serving.cluster.ReportAggregates`
    bit-identical to re-deriving the values from the per-request records.
    """

    __slots__ = (
        "latency",
        "batching_sum",
        "dispatch_sum",
        "service_sum",
        "slo_met",
        "slo",
        "served_degraded",
        "slo_met_degraded",
        "tenant_latency",
        "tenant_served",
        "tenant_slo_met",
        "tenant_shed",
        "tenant_degraded",
        "tenant_slo_met_degraded",
    )

    def __init__(self, slo: Optional["SLOPolicy"]) -> None:
        # Exact report-time stats only: skip the per-push P² marker updates
        # (live approximate percentiles) in the per-request hot path.
        self.latency = StreamingLatencyStats(track_approx=False)
        self.batching_sum = 0.0
        self.dispatch_sum = 0.0
        self.service_sum = 0.0
        self.slo_met = 0
        self.slo = slo
        self.served_degraded = 0
        self.slo_met_degraded = 0
        self.tenant_latency: Dict[str, StreamingLatencyStats] = {}
        self.tenant_served: Dict[str, int] = {}
        self.tenant_slo_met: Dict[str, int] = {}
        self.tenant_shed: Dict[str, int] = {}
        self.tenant_degraded: Dict[str, int] = {}
        self.tenant_slo_met_degraded: Dict[str, int] = {}

    def push(
        self,
        request: InferenceRequest,
        batching_delay: float,
        dispatch_delay: float,
        service_seconds: float,
    ) -> None:
        sojourn = batching_delay + dispatch_delay + service_seconds
        self.latency.push(sojourn)
        self.batching_sum += batching_delay
        self.dispatch_sum += dispatch_delay
        self.service_sum += service_seconds
        tenant = request.tenant
        degraded = request.workload.quality == QUALITY_DEGRADED
        per_tenant = self.tenant_latency.get(tenant)
        if per_tenant is None:
            per_tenant = StreamingLatencyStats(track_approx=False)
            self.tenant_latency[tenant] = per_tenant
        per_tenant.push(sojourn)
        self.tenant_served[tenant] = self.tenant_served.get(tenant, 0) + 1
        if degraded:
            self.served_degraded += 1
            self.tenant_degraded[tenant] = self.tenant_degraded.get(tenant, 0) + 1
        if self.slo is None or sojourn <= self.slo.slo_for(request.workload, tenant):
            if self.slo is not None:
                self.slo_met += 1
                if degraded:
                    self.slo_met_degraded += 1
            self.tenant_slo_met[tenant] = self.tenant_slo_met.get(tenant, 0) + 1
            if degraded:
                self.tenant_slo_met_degraded[tenant] = (
                    self.tenant_slo_met_degraded.get(tenant, 0) + 1
                )

    def push_shed(self, request: InferenceRequest) -> None:
        tenant = request.tenant
        self.tenant_shed[tenant] = self.tenant_shed.get(tenant, 0) + 1

    def aggregates(self, count: int, shed_count: int):
        from repro.serving.cluster import ReportAggregates

        from repro.analysis.metrics import LatencyStats, TenantStats

        tenants = {}
        for tenant in sorted(set(self.tenant_served) | set(self.tenant_shed)):
            served = self.tenant_served.get(tenant, 0)
            shed = self.tenant_shed.get(tenant, 0)
            latency = self.tenant_latency.get(tenant)
            tenants[tenant] = TenantStats(
                tenant=tenant,
                offered=served + shed,
                served=served,
                shed=shed,
                slo_met=self.tenant_slo_met.get(tenant, 0),
                latency=latency.stats() if latency is not None else LatencyStats(),
                served_degraded=self.tenant_degraded.get(tenant, 0),
                slo_met_degraded=self.tenant_slo_met_degraded.get(tenant, 0),
            )
        return ReportAggregates(
            count=count,
            shed_count=shed_count,
            latency=self.latency.stats(),
            batching_sum=self.batching_sum,
            dispatch_sum=self.dispatch_sum,
            service_sum=self.service_sum,
            slo_met=self.slo_met if self.slo is not None else count,
            tenants=tenants,
            served_degraded=self.served_degraded,
            slo_met_degraded=(
                self.slo_met_degraded if self.slo is not None else self.served_degraded
            ),
        )


def _cached_serve(
    cluster: "ShardedServiceCluster", shard: "GNNService", workload: WorkloadProfile
) -> Tuple["ServiceReport", float]:
    """Serve ``workload`` on ``shard`` through the serve-transition cache.

    A hit replays the memoized ``(report, duration, end state)`` transition:
    the report object is shared (it is immutable in practice and compares by
    value), and ``apply_state`` moves the shard to the exact state a fresh
    pass would have left — including the reconfiguration event log, which
    the controller re-derives from the (old, new) configuration pair.
    """
    state = shard.preprocessing.state_key()
    key = (state, workload)
    hit = cluster._serve_cache.get(key)
    if hit is not None:
        report, duration, snapshot = hit
        shard.preprocessing.apply_state(snapshot)
        return report, duration
    report = shard.serve(workload)
    duration = report.total_seconds
    cluster._serve_cache[key] = (report, duration, shard.preprocessing.snapshot_state())
    return report, duration


def _merged_workload(
    batch: RequestBatch, merged_cache: Dict[tuple, WorkloadProfile]
) -> WorkloadProfile:
    """The batch's merged workload, memoized on (base profile, summed size).

    The merge itself is delegated to ``RequestBatch.workload`` — the same
    property the reference loop evaluates — so the two engines cannot drift
    if the merge formula ever changes; this wrapper only avoids re-running
    it for every batch of an identical composition.
    """
    base = batch.requests[0].workload
    total = sum(request.workload.batch_size for request in batch.requests)
    key = (base, total)
    workload = merged_cache.get(key)
    if workload is None:
        workload = batch.workload
        merged_cache[key] = workload
    return workload


def _pick_shard(
    cluster: "ShardedServiceCluster",
    heap: ShardHeap,
    batch: RequestBatch,
    workload: WorkloadProfile,
    active_count: int,
) -> int:
    """Replicates ``ShardedServiceCluster._pick_shard`` on the shard heap."""
    from repro.serving.cluster import (
        POLICY_LOCALITY,
        POLICY_ROUND_ROBIN,
        _home_shard,
    )

    if cluster._order is not None:
        # Domain-aware placement: the active set is an activation-order
        # slice, not the index prefix the heap shortcuts assume.  Delegate
        # to the reference picker over the heap's authoritative busy list —
        # the same call the fault path makes — so both engines pick
        # identically under any topology.
        return cluster._pick_shard(batch, heap.busy, cluster._order[:active_count])
    if cluster.policy == POLICY_ROUND_ROBIN:
        shard_id = cluster._rr_next % active_count
        cluster._rr_next += 1
        return shard_id
    if cluster.policy == POLICY_LOCALITY:
        busy = heap.busy
        configured = [
            i
            for i in range(active_count)
            if cluster.shards[i].configured_for(workload)
        ]
        if configured:
            preferred = min(configured, key=lambda i: (busy[i], i))
        else:
            preferred = _home_shard(batch, active_count)
            if cluster.rebalance_seconds is not None:
                # Stale-state re-homing is written once, on the cluster;
                # the heap's busy list is the authoritative horizon view.
                preferred = cluster._rebalance(
                    batch, busy, range(active_count), preferred
                )
        backlog = busy[preferred] - batch.ready_seconds
        if backlog <= cluster.locality_spill_seconds:
            chosen = preferred
        else:
            chosen = heap.pick(active_count)
        if cluster.rebalance_seconds is not None:
            cluster._shard_key[chosen] = (batch.key, batch.ready_seconds)
        return chosen
    return heap.pick(active_count)


class _BatchView:
    """Mutable stand-in for :class:`RequestBatch` in the chunked dispatch loop.

    ``_pick_shard`` (both the heap shortcut and the delegated reference
    picker) reads only ``key``, ``ready_seconds`` and ``workload`` — never
    the member list — so the chunked loop reuses one view object per run
    instead of materializing a ``RequestBatch`` per batch."""

    __slots__ = ("key", "ready_seconds", "workload")


class _ChunkedServedLog:
    """Lazy per-request record list of a chunked run.

    Holds the plan arrays and per-batch dispatch results; the
    ``ServedRequest`` objects (and the request objects they wrap) are built
    only if somebody actually reads the log.  ``as_dict``/``compact`` never
    do — they read the streaming aggregates — so a chunked 1M-request run
    never pays the object materialization unless a caller iterates the
    records.  Materialization order is batch dispatch order with members in
    arrival order: exactly the event loop's append order, with every float
    recomputed by the same scalar expression, so the records compare equal
    to an event-loop run's list."""

    __slots__ = (
        "_trace",
        "_plan",
        "_shard_ids",
        "_starts",
        "_durations",
        "_reports",
        "_records",
    )

    def __init__(self, trace, plan, shard_ids, starts, durations, reports) -> None:
        self._trace = trace
        self._plan = plan
        self._shard_ids = shard_ids
        self._starts = starts
        self._durations = durations
        self._reports = reports
        self._records: Optional[list] = None

    def _materialize(self) -> list:
        if self._records is None:
            from repro.serving.cluster import ServedRequest

            requests = self._trace.requests
            plan = self._plan
            positions = plan.member_positions.tolist()
            offsets = plan.batch_offsets.tolist()
            ready_seconds = plan.ready_seconds.tolist()
            shard_ids = self._shard_ids.tolist()
            starts = self._starts.tolist()
            durations = self._durations.tolist()
            reports = self._reports
            records = []
            for b in range(len(ready_seconds)):
                lo, hi = offsets[b], offsets[b + 1]
                ready = ready_seconds[b]
                shard_id = shard_ids[b]
                duration = durations[b]
                report = reports[b]
                batch_size = hi - lo
                dispatch_delay = starts[b] - ready
                for p in positions[lo:hi]:
                    request = requests[p]
                    records.append(
                        ServedRequest(
                            request=request,
                            shard_id=shard_id,
                            batch_size=batch_size,
                            batching_delay=ready - request.arrival_seconds,
                            dispatch_delay=dispatch_delay,
                            service_seconds=duration,
                            report=report,
                        )
                    )
            self._records = records
        return self._records

    def __len__(self) -> int:
        return len(self._plan.member_positions)

    def __bool__(self) -> bool:
        return len(self._plan.member_positions) > 0

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other):
        if isinstance(other, _ChunkedServedLog):
            other = other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __repr__(self) -> str:
        state = "materialized" if self._records is not None else "lazy"
        return f"<_ChunkedServedLog {len(self)} records ({state})>"


def _left_fold_sum(prior: float, values: np.ndarray) -> float:
    """Sequential left-fold sum of ``values`` starting from ``prior``.

    Bit-identical to ``for v in values: prior += v``:
    ``numpy.add.accumulate`` is a sequential fold (unlike ``numpy.sum``'s
    pairwise reduction), so the chunked engine's decomposition sums carry
    the exact rounding trail of the event loop's ``+=`` chain."""
    if values.size == 0:
        return prior
    acc = np.empty(values.size + 1, dtype=np.float64)
    acc[0] = prior
    acc[1:] = values
    return float(np.add.accumulate(acc)[-1])


def _serve_trace_chunked(
    cluster: "ShardedServiceCluster",
    trace,
    slo: Optional["SLOPolicy"],
):
    """Array-native offline replay: the chunked core of ``serve_trace_fast``.

    Batch formation, per-request accounting and the streaming aggregates all
    operate on NumPy views of the trace's structure-of-arrays form
    (:class:`~repro.serving.scheduler.BatchPlan`); the only per-batch Python
    work left is the dispatch decision itself — shard pick, serve-transition
    cache lookup, busy-horizon update — which is inherently sequential
    because each pick depends on the horizons the previous batch wrote.
    Request objects are never materialized: the returned report carries a
    :class:`_ChunkedServedLog` that builds the per-request records only on
    first access.

    Byte-identity with the event loop is by construction:

    * batches come from the same :meth:`BatchScheduler.schedule_arrays` plan
      the event loop's ``schedule_fast`` wraps,
    * every float lands through the same scalar expression shape
      (elementwise ``(batching + dispatch) + service``, broadcast of the
      per-batch ``start - ready``), and
    * sums fold left-to-right from the same initial values
      (:func:`_left_fold_sum`, ``StreamingLatencyStats.extend``).

    Callers gate on eligibility: no fault schedule and no fair-mode
    scheduler (both make the next event state-dependent in ways the plan
    cannot precompute), otherwise ``serve_trace_fast`` degrades to the
    per-event loop.
    """
    from repro.serving.cluster import POLICY_LEAST_LOADED, ClusterReport

    cluster._reset_dispatch_state()
    arrays = trace.arrays()
    plan = cluster.scheduler.schedule_arrays(trace)
    num_shards = cluster.num_shards
    heap = ShardHeap(num_shards)
    busy_total = [0.0] * num_shards
    shard_requests = [0] * num_shards
    merged_cache: Dict[tuple, WorkloadProfile] = {}
    last_finish = 0.0

    pool = arrays.workload_pool
    key_of_slot = [workload.batch_key for workload in pool]
    num_batches = plan.num_batches
    offsets = plan.batch_offsets
    counts = np.diff(offsets)
    ready_array = plan.ready_seconds
    # Python scalars for the dispatch loop: ndarray item reads in a tight
    # loop cost ~3x a list index.
    ready_list = ready_array.tolist()
    counts_list = counts.tolist()
    base_slots = plan.base_slot.tolist()
    merged_totals = plan.merged_sizes.tolist()

    shard_ids = np.empty(num_batches, dtype=np.int64)
    starts = np.empty(num_batches, dtype=np.float64)
    durations = np.empty(num_batches, dtype=np.float64)
    reports: List[object] = [None] * num_batches

    # The common dispatch configuration (least-loaded, no topology) is a
    # bare heap pick; hoisting the policy test out of the loop skips the
    # delegating ``_pick_shard`` call per batch.
    simple_pick = cluster._order is None and cluster.policy == POLICY_LEAST_LOADED
    shards = cluster.shards
    busy = heap.busy
    view = _BatchView()
    for b in range(num_batches):
        slot = base_slots[b]
        total = merged_totals[b]
        merged_key = (slot, total)
        workload = merged_cache.get(merged_key)
        if workload is None:
            # Same merge the event loop evaluates through
            # ``RequestBatch.workload``: base profile, member sizes summed.
            workload = pool[slot].with_batch_size(total)
            merged_cache[merged_key] = workload
        ready = ready_list[b]
        if simple_pick:
            shard_id = heap.pick(num_shards)
        else:
            view.key = key_of_slot[slot]
            view.ready_seconds = ready
            view.workload = workload
            shard_id = _pick_shard(cluster, heap, view, workload, num_shards)
        start = max(ready, busy[shard_id])
        report, duration = _cached_serve(cluster, shards[shard_id], workload)
        finish = start + duration
        heap.update(shard_id, finish)
        busy_total[shard_id] += duration
        shard_requests[shard_id] += counts_list[b]
        if finish > last_finish:
            last_finish = finish
        shard_ids[b] = shard_id
        starts[b] = start
        durations[b] = duration
        reports[b] = report

    # ---------------------------------------------- vectorized accounting
    member_positions = plan.member_positions
    total_requests = len(member_positions)
    arrivals = arrays.arrival_seconds
    batch_of = np.repeat(np.arange(num_batches, dtype=np.int64), counts)
    # Same scalar expressions as the event loop, elementwise: the per-batch
    # ``start - ready`` broadcast hands every member the identical double.
    batching = ready_array[batch_of] - arrivals[member_positions]
    dispatch = (starts - ready_array)[batch_of]
    service = durations[batch_of]
    sojourn = batching + dispatch + service

    workload_slots = arrays.workload_index[member_positions]
    tenant_slots = arrays.tenant_index[member_positions]
    tenant_pool = arrays.tenant_pool
    degraded_of_slot = np.asarray(
        [workload.quality == QUALITY_DEGRADED for workload in pool], dtype=bool
    )
    degraded = degraded_of_slot[workload_slots]

    accumulator = _RunAccumulator(slo)
    accumulator.latency.extend(sojourn)
    accumulator.batching_sum = _left_fold_sum(0.0, batching)
    accumulator.dispatch_sum = _left_fold_sum(0.0, dispatch)
    accumulator.service_sum = _left_fold_sum(0.0, service)
    accumulator.served_degraded = int(np.count_nonzero(degraded))
    if slo is not None:
        # ``slo_for`` depends only on the workload's name and the tenant, so
        # one threshold per (workload slot, tenant slot) pair covers every
        # request.
        thresholds = np.empty((len(pool), len(tenant_pool)), dtype=np.float64)
        for slot, workload in enumerate(pool):
            for tenant_slot, tenant in enumerate(tenant_pool):
                thresholds[slot, tenant_slot] = slo.slo_for(workload, tenant)
        met = sojourn <= thresholds[workload_slots, tenant_slots]
        accumulator.slo_met = int(np.count_nonzero(met))
        accumulator.slo_met_degraded = int(np.count_nonzero(met & degraded))
    else:
        # The reference loop counts every request into the per-tenant met
        # tallies when no SLO is set (the global ones stay zero and
        # ``aggregates`` substitutes the counts).
        met = np.ones(total_requests, dtype=bool)
    for tenant_slot, tenant in enumerate(tenant_pool):
        mask = tenant_slots == tenant_slot
        tenant_count = int(np.count_nonzero(mask))
        if tenant_count == 0:
            # A pool entry no surviving request references (merge dedupe
            # keeps it) — the reference accumulator never sees the tenant.
            continue
        stats = StreamingLatencyStats(track_approx=False)
        # Boolean masking preserves served order, so the per-tenant fold
        # carries the same rounding trail as the reference per-tenant push.
        stats.extend(sojourn[mask])
        accumulator.tenant_latency[tenant] = stats
        accumulator.tenant_served[tenant] = tenant_count
        accumulator.tenant_slo_met[tenant] = int(np.count_nonzero(met[mask]))
        tenant_degraded = degraded[mask]
        accumulator.tenant_degraded[tenant] = int(np.count_nonzero(tenant_degraded))
        accumulator.tenant_slo_met_degraded[tenant] = int(
            np.count_nonzero(met[mask] & tenant_degraded)
        )

    served = _ChunkedServedLog(trace, plan, shard_ids, starts, durations, reports)
    first_arrival = float(arrivals[0])
    makespan = last_finish - first_arrival if total_requests else 0.0
    return ClusterReport(
        system=cluster.system_name,
        policy=cluster.policy,
        num_shards=num_shards,
        served=served,
        num_batches=num_batches,
        makespan_seconds=makespan,
        shard_busy_seconds=busy_total,
        shard_requests=shard_requests,
        slo=slo,
        aggregates=accumulator.aggregates(count=total_requests, shed_count=0),
        faults=None,
    )


# --------------------------------------------------------------------- offline
def serve_trace_fast(
    cluster: "ShardedServiceCluster",
    trace,
    slo: Optional["SLOPolicy"] = None,
    faults: Optional[FaultSchedule] = None,
    chunked: Optional[bool] = None,
):
    """Fast offline replay — the ``engine="fast"`` path of ``serve_trace``.

    ``chunked`` selects the array-native loop (:func:`_serve_trace_chunked`)
    over the per-event one; the default ``None`` auto-enables it whenever
    the run is eligible — no fault schedule, no fair-mode scheduler, a
    non-empty trace — and degrades gracefully to the per-event loop
    otherwise.  Both paths produce byte-identical reports; ``chunked=False``
    forces the per-event loop (the equivalence suite and the speed benchmark
    compare the two)."""
    from repro.serving.cluster import ClusterReport, ServedRequest

    if chunked is None:
        chunked = faults is None and not cluster.scheduler.fair and len(trace) > 0
    if chunked:
        if faults is not None:
            raise ValueError("chunked replay does not support fault schedules")
        if cluster.scheduler.fair:
            raise ValueError("chunked replay does not support fair-mode batching")
        return _serve_trace_chunked(cluster, trace, slo)

    cluster._reset_dispatch_state()
    batches = cluster.scheduler.schedule_fast(trace)
    num_shards = cluster.num_shards
    heap = ShardHeap(num_shards)
    busy_total = [0.0] * num_shards
    shard_requests = [0] * num_shards
    served: List[ServedRequest] = []
    accumulator = _RunAccumulator(slo)
    merged_cache: Dict[tuple, WorkloadProfile] = {}
    last_finish = 0.0
    fault_stats = None
    num_batches = len(batches)

    if faults is None:
        for batch in batches:
            members = batch.requests
            workload = _merged_workload(batch, merged_cache)
            ready = batch.ready_seconds
            shard_id = _pick_shard(cluster, heap, batch, workload, num_shards)
            start = max(ready, heap.busy[shard_id])
            report, duration = _cached_serve(cluster, cluster.shards[shard_id], workload)
            finish = start + duration
            heap.update(shard_id, finish)
            busy_total[shard_id] += duration
            shard_requests[shard_id] += len(members)
            last_finish = max(last_finish, finish)
            batch_size = len(members)
            dispatch_delay = start - ready
            for request in members:
                batching_delay = ready - request.arrival_seconds
                served.append(
                    ServedRequest(
                        request=request,
                        shard_id=shard_id,
                        batch_size=batch_size,
                        batching_delay=batching_delay,
                        dispatch_delay=dispatch_delay,
                        service_seconds=duration,
                        report=report,
                    )
                )
                accumulator.push(request, batching_delay, dispatch_delay, duration)
    else:
        # The fault runtime owns every fault decision; these hooks only
        # expose the loop's state.  Dispatch goes through the *reference*
        # ``_pick_shard`` over the heap's authoritative busy list so both
        # engines pick identically under a fluid (non-prefix) active set.
        ctx = faults.runtime(
            num_shards, slo, order=cluster._order, topology=cluster.topology
        )
        num_batches = 0

        def commit(batch, shard_id, start, duration, report, finish):
            nonlocal last_finish, num_batches
            members = batch.requests
            ready = batch.ready_seconds
            shard_requests[shard_id] += len(members)
            num_batches += 1
            last_finish = max(last_finish, finish)
            batch_size = len(members)
            dispatch_delay = start - ready
            for request in members:
                batching_delay = ready - request.arrival_seconds
                served.append(
                    ServedRequest(
                        request=request,
                        shard_id=shard_id,
                        batch_size=batch_size,
                        batching_delay=batching_delay,
                        dispatch_delay=dispatch_delay,
                        service_seconds=duration,
                        report=report,
                    )
                )
                accumulator.push(request, batching_delay, dispatch_delay, duration)

        def add_busy(shard_id: int, seconds: float) -> None:
            busy_total[shard_id] += seconds

        order = cluster._order
        env = FaultLoopHooks(
            active_count=lambda: num_shards,
            active_ids=(
                (lambda: order[:num_shards]) if order is not None else None
            ),
            busy=lambda shard_id: heap.busy[shard_id],
            set_busy=heap.update,
            add_busy=add_busy,
            merged=lambda batch: _merged_workload(batch, merged_cache),
            pick=lambda batch, workload, active: cluster._pick_shard(
                batch, heap.busy, active
            ),
            serve=lambda shard_id, workload: _cached_serve(
                cluster, cluster.shards[shard_id], workload
            ),
            commit=commit,
            on_failed=lambda request, seconds: None,
        )
        for batch in batches:
            ctx.step(env, batch)
        ctx.drain(env)
        fault_stats = ctx.finalize(trace[0].arrival_seconds, last_finish)

    first_arrival = trace[0].arrival_seconds
    # A faulted replay can fail every request; an empty run has no span.
    makespan = last_finish - first_arrival if served else 0.0
    return ClusterReport(
        system=cluster.system_name,
        policy=cluster.policy,
        num_shards=num_shards,
        served=served,
        num_batches=num_batches,
        makespan_seconds=makespan,
        shard_busy_seconds=busy_total,
        shard_requests=shard_requests,
        slo=slo,
        aggregates=accumulator.aggregates(count=len(served), shed_count=0),
        faults=fault_stats,
    )


# ---------------------------------------------------------------------- online
def serve_online_fast(
    cluster: "ShardedServiceCluster",
    source,
    slo: Optional["SLOPolicy"] = None,
    admission: Optional["AdmissionController"] = None,
    autoscaler: Optional["Autoscaler"] = None,
    faults: Optional[FaultSchedule] = None,
):
    """Fast online co-simulation — the ``engine="fast"`` path of ``serve_online``.

    Control flow and every float expression mirror the reference loop; the
    differences are the deadline heap (next expiring batch is a heap top,
    with lazy invalidation keyed on the opening request's id), the running
    open-request counter feeding the autoscaler, the shard heap behind
    dispatch and admission-backlog reads, and the serve-transition cache.
    Under a fault schedule, dispatch and the admission backlog instead go
    through the shared fault runtime and the reference ``_pick_shard`` (the
    active set is no longer a prefix), exactly as the reference loop does.
    """
    from repro.serving.cluster import (
        ClusterReport,
        ServedRequest,
        ShardLeaseTracker,
        ShedRecord,
        _admission_estimate,
    )

    cluster._reset_dispatch_state()
    num_shards = cluster.num_shards
    heap = ShardHeap(num_shards)
    busy_total = [0.0] * num_shards
    shard_requests = [0] * num_shards
    served: List[ServedRequest] = []
    accumulator = _RunAccumulator(slo)
    merged_cache: Dict[tuple, WorkloadProfile] = {}
    last_finish = 0.0
    num_batches = 0

    scheduler = cluster.scheduler
    fair = scheduler.fair
    batcher = scheduler.fair_batcher() if fair else None
    open_members: Dict[object, List[InferenceRequest]] = {}
    open_deadline: Dict[object, float] = {}
    open_count = 0
    deadline_heap: List[tuple] = []
    inflight: List[float] = []
    shed_records: List[ShedRecord] = []
    decisions: List[object] = []
    pending_estimates: Dict[int, float] = {}
    recent_sheds: deque = deque()
    active_count = num_shards
    start_seconds = 0.0
    if autoscaler is not None:
        first_peek = source.peek_time()
        start_seconds = first_peek if first_peek is not None else 0.0
        active_count = autoscaler.start(start_seconds)
    if admission is not None:
        admission.reset()
    first_arrival: Optional[float] = None
    # Guaranteed-tier tenants whose open-queue pressure a tenant-aware
    # autoscaler watches separately from the global depth.
    guaranteed_tenants: Optional[frozenset] = None
    if autoscaler is not None and autoscaler.tenant_aware and slo is not None:
        guaranteed_tenants = frozenset(
            tenant
            for tenant, quota in slo.per_tenant.items()
            if quota.guaranteed_rps > 0
        )
    guaranteed_open = 0
    ctx = (
        faults.runtime(
            num_shards, slo, order=cluster._order, topology=cluster.topology
        )
        if faults is not None
        else None
    )
    planner = (
        DrainPlanner(num_shards)
        if autoscaler is not None and autoscaler.drain
        else None
    )
    if ctx is not None and planner is not None:
        ctx.attach_planner(planner)
    order = cluster._order

    def active_ids():
        """The active shard set in activation order (identity w/o topology)."""
        return order[:active_count] if order is not None else range(active_count)

    leases: Optional[ShardLeaseTracker] = None
    if autoscaler is not None:
        leases = ShardLeaseTracker(num_shards)
        for shard_id in active_ids():
            leases.open(shard_id, start_seconds)

    def dispatch_batch(batch: RequestBatch) -> None:
        nonlocal last_finish, num_batches, guaranteed_open
        if guaranteed_tenants:
            for request in batch.requests:
                if request.tenant in guaranteed_tenants:
                    guaranteed_open -= 1
        if ctx is not None:
            ctx.dispatch(batch, env)
            return
        if planner is not None:
            planner.dispatch(batch, env)
            return
        members = batch.requests
        ready_seconds = batch.ready_seconds
        workload = _merged_workload(batch, merged_cache)
        shard_id = _pick_shard(cluster, heap, batch, workload, active_count)
        start = max(ready_seconds, heap.busy[shard_id])
        report, duration = _cached_serve(cluster, cluster.shards[shard_id], workload)
        finish = start + duration
        heap.update(shard_id, finish)
        busy_total[shard_id] += duration
        shard_requests[shard_id] += len(members)
        num_batches += 1
        last_finish = max(last_finish, finish)
        batch_size = len(members)
        dispatch_delay = start - ready_seconds
        for request in members:
            batching_delay = ready_seconds - request.arrival_seconds
            served.append(
                ServedRequest(
                    request=request,
                    shard_id=shard_id,
                    batch_size=batch_size,
                    batching_delay=batching_delay,
                    dispatch_delay=dispatch_delay,
                    service_seconds=duration,
                    report=report,
                )
            )
            accumulator.push(request, batching_delay, dispatch_delay, duration)
        for request in members:
            pending_estimates.pop(request.request_id, None)
            heapq.heappush(inflight, finish)
            source.on_complete(request, finish)

    def close_batch(key: object, ready_seconds: float) -> None:
        nonlocal open_count
        members = open_members.pop(key)
        open_deadline.pop(key)
        open_count -= len(members)
        dispatch_batch(RequestBatch(requests=members, ready_seconds=ready_seconds))

    def next_deadline() -> Optional[tuple]:
        """Valid top of the deadline heap: (deadline, first request id, key)."""
        while deadline_heap:
            deadline, first_id, key = deadline_heap[0]
            members = open_members.get(key)
            if (
                members is not None
                and open_deadline[key] == deadline
                and members[0].request_id == first_id
            ):
                return deadline_heap[0]
            heapq.heappop(deadline_heap)
        return None

    def fault_commit(batch: RequestBatch, shard_id, start, duration, report, finish):
        nonlocal last_finish, num_batches
        members = batch.requests
        ready_seconds = batch.ready_seconds
        shard_requests[shard_id] += len(members)
        num_batches += 1
        last_finish = max(last_finish, finish)
        batch_size = len(members)
        dispatch_delay = start - ready_seconds
        for request in members:
            batching_delay = ready_seconds - request.arrival_seconds
            served.append(
                ServedRequest(
                    request=request,
                    shard_id=shard_id,
                    batch_size=batch_size,
                    batching_delay=batching_delay,
                    dispatch_delay=dispatch_delay,
                    service_seconds=duration,
                    report=report,
                )
            )
            accumulator.push(request, batching_delay, dispatch_delay, duration)
        for request in members:
            pending_estimates.pop(request.request_id, None)
            heapq.heappush(inflight, finish)
            source.on_complete(request, finish)

    def fault_failed(request: InferenceRequest, seconds: float) -> None:
        pending_estimates.pop(request.request_id, None)
        source.on_shed(request, seconds)

    def add_busy(shard_id: int, seconds: float) -> None:
        busy_total[shard_id] += seconds

    env = (
        FaultLoopHooks(
            active_count=lambda: active_count,
            active_ids=active_ids if order is not None else None,
            busy=lambda shard_id: heap.busy[shard_id],
            set_busy=heap.update,
            add_busy=add_busy,
            merged=lambda batch: _merged_workload(batch, merged_cache),
            pick=lambda batch, workload, active: cluster._pick_shard(
                batch, heap.busy, active
            ),
            serve=lambda shard_id, workload: _cached_serve(
                cluster, cluster.shards[shard_id], workload
            ),
            commit=fault_commit,
            on_failed=fault_failed,
        )
        if ctx is not None or planner is not None
        else None
    )
    if planner is not None:

        def on_planned(batch: RequestBatch) -> None:
            # Admitted estimates clear at plan time, not commit time: the
            # planned work is already priced into the busy horizon the
            # admission backlog reads.
            for request in batch.requests:
                pending_estimates.pop(request.request_id, None)

        planner.on_planned = on_planned

    def enqueue(request: InferenceRequest, now: float) -> None:
        nonlocal guaranteed_open, open_count
        if guaranteed_tenants and request.tenant in guaranteed_tenants:
            guaranteed_open += 1
        if fair:
            for batch in batcher.add(request, now):
                dispatch_batch(batch)
            return
        key = request.workload.batch_key
        members = open_members.get(key)
        if members is None:
            members = []
            open_members[key] = members
            deadline = now + scheduler.max_wait_seconds
            open_deadline[key] = deadline
            heapq.heappush(deadline_heap, (deadline, request.request_id, key))
        members.append(request)
        open_count += 1
        if len(members) >= scheduler.max_batch_size:
            close_batch(key, now)

    while True:
        t_arrival = source.peek_time()
        if fair:
            expiring = batcher.peek_deadline()
        else:
            expiring = next_deadline()
        t_deadline = expiring[0] if expiring is not None else None
        t_fault = ctx.next_fault_time() if ctx is not None else None
        t_retry = ctx.next_retry_time() if ctx is not None else None
        t_commit = planner.next_commit_time() if planner is not None else None
        # Event precedence at timestamp ties: commit < fault < deadline <
        # retry < arrival (shared with the reference engine through
        # ``due``).  Commits fire first so work whose service has begun is
        # in flight — and immovable — before any same-instant scale
        # decision or fault consults the plan.
        if due(t_commit, t_fault, t_deadline, t_retry, t_arrival):
            planner.commit_next(env)
            continue
        if due(t_fault, t_deadline, t_retry, t_arrival):
            ctx.advance(env, t_fault)
            continue
        if due(t_deadline, t_retry, t_arrival):
            if fair:
                for batch in batcher.fire_deadline(expiring):
                    dispatch_batch(batch)
            else:
                heapq.heappop(deadline_heap)
                close_batch(expiring[2], expiring[0])
            continue
        if due(t_retry, t_arrival):
            retry_request, retry_now = ctx.pop_retry()
            enqueue(retry_request, retry_now)
            continue
        if t_arrival is None:
            break
        request = source.pop()
        now = request.arrival_seconds
        key = request.workload.batch_key
        if first_arrival is None:
            first_arrival = now
        while inflight and inflight[0] <= now:
            heapq.heappop(inflight)
        if autoscaler is not None:
            while recent_sheds and recent_sheds[0] < now - autoscaler.shed_memory_seconds:
                recent_sheds.popleft()
            pending = batcher.pending_count if fair else open_count
            queue_depth = 1 + len(inflight) + pending + len(recent_sheds)
            if ctx is not None:
                # Work the fault layer is holding (retries, parked batches)
                # is still demand the autoscaler must see.
                queue_depth += ctx.backlog_count()
            if planner is not None:
                # Planned-but-uncommitted dispatches are queued work too;
                # commit-at-dispatch counted them via inflight.
                queue_depth += planner.planned
            previous = active_count
            if guaranteed_tenants is not None:
                guaranteed_depth = guaranteed_open + (
                    1 if request.tenant in guaranteed_tenants else 0
                )
                active_count = autoscaler.observe(
                    now, queue_depth, guaranteed_depth=guaranteed_depth
                )
            else:
                active_count = autoscaler.observe(now, queue_depth)
            joining = (
                order[previous:active_count]
                if order is not None
                else range(previous, active_count)
            )
            for shard_id in joining:
                warmup = autoscaler.warmup_seconds
                if warmup is None:
                    warmup = cluster.shards[shard_id].warmup_seconds
                heap.update(shard_id, max(heap.busy[shard_id], now + warmup))
                leases.open(shard_id, now)
            if ctx is not None and active_count > previous:
                ctx.flush(env)
            if active_count < previous:
                if planner is not None:
                    if ctx is not None:
                        # Leaving = dispatchable before minus dispatchable
                        # after, so standby substitution under faults is
                        # honoured (a dead prefix shard drains nothing).
                        surviving = set(ctx.active_alive(active_count))
                        leaving = [
                            shard_id
                            for shard_id in ctx.active_alive(previous)
                            if shard_id not in surviving
                        ]
                    else:
                        leaving = (
                            list(order[active_count:previous])
                            if order is not None
                            else list(range(active_count, previous))
                        )
                    drained, completed = planner.drain(leaving, now, env)
                    migrated = 0
                    for stranded in drained:
                        migrated += len(stranded.requests)
                        rebatch = RequestBatch(
                            requests=stranded.requests, ready_seconds=now
                        )
                        if ctx is not None:
                            ctx.dispatch(rebatch, env)
                        else:
                            planner.dispatch(rebatch, env)
                    autoscaler.record_drain(migrated, completed)
                # Leases close after the drain so a drained shard is
                # billed to its lowered (post-migration) horizon.
                departing = (
                    order[active_count:previous]
                    if order is not None
                    else range(active_count, previous)
                )
                for shard_id in departing:
                    leases.close(shard_id, max(now, heap.busy[shard_id]))
        if admission is not None:
            # Same prediction as the reference loop: least-loaded active
            # backlog plus admitted-but-undispatched work spread across the
            # active shards.  The pending sum is re-reduced (not maintained
            # incrementally) so its float accumulation order matches.
            if ctx is not None:
                # Only live shards can absorb work (textually the reference
                # loop's expression, over the heap's busy list).
                alive = ctx.active_alive(active_count)
                if alive:
                    backlog = min(
                        max(heap.busy[i] - now, 0.0) for i in alive
                    ) + sum(pending_estimates.values()) / len(alive)
                else:
                    backlog = float("inf")
            elif order is not None:
                # Non-prefix active set: the heap's prefix shortcut does not
                # apply; reduce over the order slice exactly like the
                # reference loop (value-identical floats either way).
                backlog = min(
                    max(heap.busy[i] - now, 0.0) for i in active_ids()
                ) + sum(pending_estimates.values()) / active_count
            else:
                backlog = max(heap.min_busy(active_count) - now, 0.0) + sum(
                    pending_estimates.values()
                ) / active_count
            if fair:
                # Mirror the reference loop: spill-bound requests pay a
                # full standalone pass, not the marginal increment.
                joinable = (
                    batcher.open_members(key)
                    if batcher.can_join(key, request.tenant)
                    else None
                )
            else:
                joinable = open_members.get(key)
            estimate = _admission_estimate(cluster.template, request, admission, joinable)
            # Degraded-quality tier: price the request's cheaper profile
            # against *its own* open batch (degraded requests batch under
            # their own key) so the controller can admit it degraded when
            # the full-quality prediction violates the SLO.
            degraded_workload = admission.degraded_profile(
                request.workload, request.tenant
            )
            degraded_estimate = None
            degraded_request = None
            if degraded_workload is not None:
                degraded_key = degraded_workload.batch_key
                if fair:
                    degraded_joinable = (
                        batcher.open_members(degraded_key)
                        if batcher.can_join(degraded_key, request.tenant)
                        else None
                    )
                else:
                    degraded_joinable = open_members.get(degraded_key)
                degraded_request = replace(request, workload=degraded_workload)
                degraded_estimate = _admission_estimate(
                    cluster.template, degraded_request, admission, degraded_joinable
                )
            decision = admission.decide(
                request, now, backlog, estimate, degraded_estimate
            )
            if admission.record_decisions:
                decisions.append(decision)
            if decision.admitted:
                if decision.degraded:
                    request = degraded_request
                    estimate = degraded_estimate
                pending_estimates[request.request_id] = estimate
            if not decision.admitted:
                shed_records.append(
                    ShedRecord(
                        request=request,
                        shed_seconds=now,
                        predicted_sojourn=decision.predicted_sojourn,
                        slo_seconds=decision.slo_seconds,
                    )
                )
                accumulator.push_shed(request)
                recent_sheds.append(now)
                source.on_shed(request, now)
                continue
        enqueue(request, now)

    fault_stats = (
        ctx.finalize(first_arrival, last_finish) if ctx is not None else None
    )
    shard_seconds = leases.finish(last_finish) if leases is not None else None
    makespan = 0.0
    if served and first_arrival is not None:
        makespan = last_finish - first_arrival
    return ClusterReport(
        system=cluster.system_name,
        policy=cluster.policy,
        num_shards=num_shards,
        served=served,
        num_batches=num_batches,
        makespan_seconds=makespan,
        shard_busy_seconds=busy_total,
        shard_requests=shard_requests,
        shed=shed_records,
        slo=slo,
        decisions=decisions,
        scaling_timeline=list(autoscaler.timeline()) if autoscaler is not None else [],
        aggregates=accumulator.aggregates(
            count=len(served), shed_count=len(shed_records)
        ),
        faults=fault_stats,
        shard_seconds=shard_seconds,
    )
