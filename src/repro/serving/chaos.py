"""Chaos-sweep invariant harness for the fault-tolerant serving stack.

Every fault-layer PR so far pinned *specific* scenarios (one crash, one
drain, one retry).  This module sweeps *families* of adversarial schedules —
correlated whole-domain outages racing autoscaler drains, retry storms,
recover-at-the-same-instant edges — and asserts the stack's hard invariants
on every run:

1. **conservation** — exactly
   ``offered == served_full + served_degraded + shed + failed``, and the
   arrival source saw one terminal callback per request;
2. **engine-identity** — the reference and fast engines render
   byte-identical ``ClusterReport.as_dict()`` JSON;
3. **no-dead-dispatch** — no served request's service interval overlaps a
   dead interval of its shard, and nothing starts on a shard outside the
   autoscaler's active set (modulo fault-time standby substitution, which
   is excused only while an active-prefix shard is actually dead);
4. **retry-budget** — ``retried <= retry_budget * offered`` (retries are
   per-request), a zero budget never retries, and a crash-free schedule
   never fails or retries anything;
5. **lease-accounting** — the lease-tracked ``shard_seconds`` of an
   autoscaled run is bounded by ``min_shards * makespan`` from below and
   ``num_shards * makespan`` from above.

The sweep is fully deterministic: scenario ``i`` of ``run_chaos_sweep(seed)``
is always the same schedule (the generators are seeded, simulated time has
no wall clock), so a failure reproduces from the artifact alone — the
artifact embeds the generator provenance *and* the expanded schedule.

Run it directly::

    PYTHONPATH=src python -m repro.serving.chaos --examples 50 --seed 0 \
        --artifact chaos_failure.json

Exit status 1 and the artifact file mean an invariant was violated; the
pytest tier (``tests/test_chaos.py``) runs a smaller budget on every push
and the CI ``chaos`` job runs the full sweep.
"""

from __future__ import annotations

import argparse
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.cluster import ShardedServiceCluster
from repro.serving.config import ServingConfig
from repro.serving.control import Autoscaler, DegradationPolicy, SLOPolicy
from repro.serving.faults import (
    FAULT_CRASH,
    FAULT_CRASH_DOMAIN,
    FAULT_RECOVER_DOMAIN,
    CorrelatedFaults,
    DomainFaultEvent,
    FaultSchedule,
    RandomFaults,
)
from repro.serving.requests import OpenLoopArrivals, RequestTrace, TraceArrivals
from repro.serving.scheduler import BatchScheduler
from repro.serving.topology import ClusterTopology
from repro.system.workload import WorkloadProfile

#: The five invariants, in check order (artifact ``invariant`` values).
INVARIANTS = (
    "conservation",
    "engine-identity",
    "no-dead-dispatch",
    "retry-budget",
    "lease-accounting",
)

#: Service template the sweep runs against (calibrated, deterministic).
CHAOS_SYSTEM = "DynPre"

#: Workload pool mirroring the property-test pool (kept local so the harness
#: is importable outside pytest).
CHAOS_WORKLOADS = (
    WorkloadProfile(name="wl-s", num_nodes=20_000, num_edges=150_000,
                    avg_degree=7.5, batch_size=500),
    WorkloadProfile(name="wl-m", num_nodes=80_000, num_edges=900_000,
                    avg_degree=11.25, batch_size=1500),
    WorkloadProfile(name="wl-u", num_nodes=40_000, num_edges=300_000,
                    avg_degree=7.5, batch_size=800, update_fraction=0.2),
)


class ChaosInvariantError(AssertionError):
    """One chaos run violated a serving invariant.

    Attributes:
        invariant: which of :data:`INVARIANTS` failed.
        scenario: name of the offending scenario.
        artifact: JSON-serializable reproduction record (scenario
            parameters, generator provenance and the expanded schedule).
    """

    def __init__(self, invariant: str, scenario: str, message: str,
                 artifact: Dict[str, object]) -> None:
        super().__init__(f"[{scenario}] {invariant}: {message}")
        self.invariant = invariant
        self.scenario = scenario
        self.artifact = artifact


@dataclass(frozen=True)
class ChaosScenario:
    """One deterministic chaos run: a schedule plus its serving context."""

    name: str
    num_shards: int
    faults: FaultSchedule
    provenance: Dict[str, object]
    topology: Optional[ClusterTopology] = None
    trace_seed: int = 0
    num_requests: int = 60
    rate_rps: float = 400.0
    degradation: bool = False
    via_config_override: bool = False

    def as_dict(self) -> Dict[str, object]:
        """Reproduction record embedded in the failure artifact."""
        return {
            "name": self.name,
            "num_shards": self.num_shards,
            "trace_seed": self.trace_seed,
            "num_requests": self.num_requests,
            "rate_rps": self.rate_rps,
            "degradation": self.degradation,
            "via_config_override": self.via_config_override,
            "topology": self.topology.as_dict() if self.topology else None,
            "provenance": self.provenance,
            "schedule": self.faults.as_dict(),
        }


class _CountingSource(TraceArrivals):
    """Trace replay tallying terminal callbacks for the conservation check."""

    def __init__(self, trace: RequestTrace) -> None:
        super().__init__(trace)
        self.completed = 0
        self.dropped = 0

    def on_complete(self, request, seconds):  # noqa: D102 - see TraceArrivals
        self.completed += 1
        super().on_complete(request, seconds)

    def on_shed(self, request, seconds):  # noqa: D102 - see TraceArrivals
        self.dropped += 1
        super().on_shed(request, seconds)


# ------------------------------------------------------- scenario generation
def _edge_scenarios(seed: int) -> List[ChaosScenario]:
    """Handcrafted adversarial edges the random sweep may miss."""
    topo4 = ClusterTopology.uniform(4, 2)
    topo6 = ClusterTopology.uniform(6, 3)
    scenarios = [
        # One domain recovers at the exact instant another crashes: the
        # alive set swaps wholesale at a single simulated timestamp.
        ChaosScenario(
            name="edge-recover-same-instant",
            num_shards=4,
            topology=topo4,
            faults=FaultSchedule(
                domain_events=(
                    DomainFaultEvent(0.02, "rack0", FAULT_CRASH_DOMAIN),
                    DomainFaultEvent(0.08, "rack0", FAULT_RECOVER_DOMAIN),
                    DomainFaultEvent(0.08, "rack1", FAULT_CRASH_DOMAIN),
                    DomainFaultEvent(0.14, "rack1", FAULT_RECOVER_DOMAIN),
                ),
                topology=topo4,
                retry_budget=2,
                retry_backoff_seconds=0.004,
            ),
            provenance={"generator": "handcrafted",
                        "name": "edge-recover-same-instant"},
            trace_seed=seed + 1,
        ),
        # A whole-rack outage landing mid-run, where the autoscaler has had
        # time to scale up and is draining back down as the outage hits.
        ChaosScenario(
            name="edge-outage-races-drain",
            num_shards=6,
            topology=topo6,
            faults=FaultSchedule(
                domain_events=(
                    DomainFaultEvent(0.05, "rack1", FAULT_CRASH_DOMAIN),
                    DomainFaultEvent(0.12, "rack1", FAULT_RECOVER_DOMAIN),
                    DomainFaultEvent(0.13, "rack2", FAULT_CRASH_DOMAIN),
                    DomainFaultEvent(0.2, "rack2", FAULT_RECOVER_DOMAIN),
                ),
                topology=topo6,
                retry_budget=3,
                retry_backoff_seconds=0.005,
            ),
            provenance={"generator": "handcrafted",
                        "name": "edge-outage-races-drain"},
            trace_seed=seed + 2,
            degradation=True,
        ),
        # Retry storm with a zero budget: every fault-doomed request must
        # fail immediately, never retry.
        ChaosScenario(
            name="edge-retry-storm-budget0",
            num_shards=4,
            topology=topo4,
            faults=FaultSchedule(
                domain_events=(
                    DomainFaultEvent(0.01, "rack0", FAULT_CRASH_DOMAIN),
                    DomainFaultEvent(0.03, "rack1", FAULT_CRASH_DOMAIN),
                    DomainFaultEvent(0.09, "rack0", FAULT_RECOVER_DOMAIN),
                    DomainFaultEvent(0.11, "rack1", FAULT_RECOVER_DOMAIN),
                ),
                topology=topo4,
                retry_budget=0,
            ),
            provenance={"generator": "handcrafted",
                        "name": "edge-retry-storm-budget0"},
            trace_seed=seed + 3,
        ),
        # Full-cluster blackout window with a generous retry budget: the
        # backoff ladder must carry everything across the outage.
        ChaosScenario(
            name="edge-whole-cluster-outage",
            num_shards=4,
            topology=topo4,
            faults=FaultSchedule(
                domain_events=(
                    DomainFaultEvent(0.02, "rack0", FAULT_CRASH_DOMAIN),
                    DomainFaultEvent(0.02, "rack1", FAULT_CRASH_DOMAIN),
                    DomainFaultEvent(0.06, "rack0", FAULT_RECOVER_DOMAIN),
                    DomainFaultEvent(0.06, "rack1", FAULT_RECOVER_DOMAIN),
                ),
                topology=topo4,
                retry_budget=3,
                retry_backoff_seconds=0.01,
            ),
            provenance={"generator": "handcrafted",
                        "name": "edge-whole-cluster-outage"},
            trace_seed=seed + 4,
            degradation=True,
        ),
    ]
    return scenarios


def _random_scenarios(count: int, seed: int) -> List[ChaosScenario]:
    """Seeded correlated-fault scenarios (scenario ``i`` is reproducible)."""
    scenarios: List[ChaosScenario] = []
    uptimes = (0.03, 0.06, 0.15)
    downtimes = (0.02, 0.04, 0.08)
    for i in range(count):
        num_shards = 6 if i % 2 == 0 else 4
        num_domains = 3 if i % 2 == 0 else 2
        topology = ClusterTopology.uniform(num_shards, num_domains)
        generator = RandomFaults(
            num_shards=num_shards,
            horizon_seconds=0.25,
            mean_uptime_seconds=uptimes[i % len(uptimes)],
            mean_downtime_seconds=downtimes[(i // 3) % len(downtimes)],
            slowdown_probability=0.5 if i % 3 == 0 else 0.0,
            slowdown_factor=2.0,
            retry_budget=i % 4,
            retry_backoff_seconds=0.003,
            seed=seed * 100_003 + i,
            topology=topology,
            correlated=CorrelatedFaults(
                mean_uptime_seconds=0.08 if i % 2 == 0 else 0.12,
                mean_downtime_seconds=0.03 if i % 4 < 2 else 0.05,
            ),
        )
        scenarios.append(
            ChaosScenario(
                name=f"random-{i:03d}",
                num_shards=num_shards,
                topology=topology,
                faults=generator.schedule(),
                provenance=generator.provenance(),
                trace_seed=seed * 7 + i,
                degradation=i % 2 == 1,
                via_config_override=i % 5 == 0,
            )
        )
    return scenarios


def chaos_scenarios(num_examples: int, seed: int = 0) -> List[ChaosScenario]:
    """The deterministic scenario list of one sweep (edges first)."""
    edges = _edge_scenarios(seed)
    if num_examples <= len(edges):
        return edges[:num_examples]
    return edges + _random_scenarios(num_examples - len(edges), seed)


# ------------------------------------------------------------ one chaos run
def _dead_intervals(schedule: FaultSchedule,
                    num_shards: int) -> List[List[Tuple[float, float]]]:
    """Per-shard half-open ``[crash, recover)`` intervals (inf when open)."""
    intervals: List[List[Tuple[float, float]]] = [[] for _ in range(num_shards)]
    down_at: Dict[int, float] = {}
    for event in schedule.expanded_events:
        if event.kind == FAULT_CRASH:
            down_at[event.shard_id] = event.seconds
        elif event.shard_id in down_at:
            intervals[event.shard_id].append(
                (down_at.pop(event.shard_id), event.seconds)
            )
    for shard_id, crash_at in down_at.items():
        intervals[shard_id].append((crash_at, math.inf))
    return intervals


#: Tolerance for float drift when reconstructing service intervals from a
#: report's delay decomposition (sums/differences of exact event instants).
_FLOAT_SLACK = 1e-9


def _dead_during(intervals: Sequence[Tuple[float, float]],
                 lo: float, hi: float) -> bool:
    """Whether a shard with these dead intervals is dead anywhere in [lo, hi]."""
    return any(crash <= hi and lo < recover for crash, recover in intervals)


def _active_counts_at(timeline, instant: float, default: int) -> Tuple[int, int]:
    """Active shard counts (just before, at-or-after) ``instant``.

    The scaling timeline is a step function; boundary instants are checked
    against both sides so a batch dispatched at the exact scale event
    timestamp is not misflagged.
    """
    if not timeline:
        return default, default
    before = timeline[0].active_shards
    at = timeline[0].active_shards
    for event in timeline:
        if event.seconds < instant:
            before = event.active_shards
        if event.seconds <= instant:
            at = event.active_shards
        else:
            break
    return before, at


def _check_run(scenario: ChaosScenario, report, source: _CountingSource,
               min_shards: int) -> None:
    """Assert invariants 1, 3, 4 and 5 on one engine's report."""
    artifact = scenario.as_dict()
    goodput = report.goodput

    # 1. conservation ------------------------------------------------------
    served_full = goodput.served - goodput.served_degraded
    total = served_full + goodput.served_degraded + goodput.shed + goodput.failed
    if goodput.offered != scenario.num_requests or goodput.offered != total:
        raise ChaosInvariantError(
            "conservation", scenario.name,
            f"offered={goodput.offered} (trace {scenario.num_requests}) != "
            f"served_full={served_full} + degraded={goodput.served_degraded} "
            f"+ shed={goodput.shed} + failed={goodput.failed}",
            artifact,
        )
    if source.completed != goodput.served or source.dropped != (
        goodput.shed + goodput.failed
    ):
        raise ChaosInvariantError(
            "conservation", scenario.name,
            f"source callbacks disagree: completed={source.completed} vs "
            f"served={goodput.served}, dropped={source.dropped} vs "
            f"shed+failed={goodput.shed + goodput.failed}",
            artifact,
        )

    # 3. no dispatch to dead or deactivated shards -------------------------
    dead = _dead_intervals(scenario.faults, scenario.num_shards)
    if scenario.topology is not None:
        order = scenario.topology.activation_order()
    else:
        order = tuple(range(scenario.num_shards))
    position = {shard: index for index, shard in enumerate(order)}
    timeline = report.scaling_timeline
    for record in report.served:
        finish = record.request.arrival_seconds + record.sojourn_seconds
        start = finish - record.service_seconds
        ready = record.request.arrival_seconds + record.batching_delay
        for crash, recover in dead[record.shard_id]:
            # _FLOAT_SLACK absorbs reconstruction drift: ``start`` is derived
            # as ``finish - service`` and can land ~1e-17 below a recover
            # instant the engine dispatched at exactly.
            if start < recover - _FLOAT_SLACK and crash < finish - _FLOAT_SLACK:
                raise ChaosInvariantError(
                    "no-dead-dispatch", scenario.name,
                    f"request {record.request.request_id} served on shard "
                    f"{record.shard_id} over [{start:.6f}, {finish:.6f}) while "
                    f"the shard was dead over [{crash:.6f}, {recover:.6f})",
                    artifact,
                )
        limit = max(
            *_active_counts_at(timeline, ready, scenario.num_shards),
            *_active_counts_at(timeline, start, scenario.num_shards),
        )
        if position[record.shard_id] >= limit:
            # Fault-time standby substitution legitimately reaches past the
            # active prefix — but only while a prefix shard is actually dead.
            substitution = any(
                _dead_during(dead[shard], ready, start)
                for shard in order[:limit]
            )
            if not substitution:
                raise ChaosInvariantError(
                    "no-dead-dispatch", scenario.name,
                    f"request {record.request.request_id} started on shard "
                    f"{record.shard_id} (activation position "
                    f"{position[record.shard_id]}) with only {limit} shards "
                    f"active and no dead prefix shard to substitute for",
                    artifact,
                )

    # 4. retry budgets ------------------------------------------------------
    faults = report.faults
    budget = scenario.faults.retry_budget
    if faults.retried > budget * goodput.offered:
        raise ChaosInvariantError(
            "retry-budget", scenario.name,
            f"retried={faults.retried} exceeds budget {budget} x "
            f"offered={goodput.offered}",
            artifact,
        )
    if budget == 0 and faults.retried != 0:
        raise ChaosInvariantError(
            "retry-budget", scenario.name,
            f"zero budget but retried={faults.retried}", artifact,
        )
    crash_free = not any(
        event.kind == FAULT_CRASH for event in scenario.faults.expanded_events
    )
    if crash_free and (faults.failed or faults.retried):
        raise ChaosInvariantError(
            "retry-budget", scenario.name,
            f"crash-free schedule failed={faults.failed} retried={faults.retried}",
            artifact,
        )

    # 5. lease-based shard_seconds accounting ------------------------------
    if report.shard_seconds is not None and goodput.served > 0:
        makespan = report.makespan_seconds
        slack = 1e-6 + 1e-9 * scenario.num_shards * makespan
        low = min_shards * makespan - slack
        high = scenario.num_shards * makespan + slack
        if not low <= report.shard_seconds <= high:
            raise ChaosInvariantError(
                "lease-accounting", scenario.name,
                f"shard_seconds={report.shard_seconds:.9f} outside "
                f"[{low:.9f}, {high:.9f}] (makespan={makespan:.9f}, "
                f"min_shards={min_shards}, num_shards={scenario.num_shards})",
                artifact,
            )


def run_scenario(services, scenario: ChaosScenario) -> Dict[str, object]:
    """Run one scenario through both engines and assert all invariants."""
    trace = OpenLoopArrivals(
        list(CHAOS_WORKLOADS), rate_rps=scenario.rate_rps,
        seed=scenario.trace_seed,
    ).trace(scenario.num_requests)
    slo = SLOPolicy(default_slo_seconds=0.5)
    min_shards = 2
    renders: Dict[str, str] = {}
    reports = {}
    for engine in ("reference", "fast"):
        if scenario.via_config_override:
            cluster = ShardedServiceCluster(
                services[CHAOS_SYSTEM], num_shards=scenario.num_shards,
                engine=engine,
                scheduler=BatchScheduler(max_batch_size=3, max_wait_seconds=0.003),
            )
            config_topology = scenario.topology
        else:
            cluster = ShardedServiceCluster(
                services[CHAOS_SYSTEM], num_shards=scenario.num_shards,
                engine=engine, topology=scenario.topology,
                scheduler=BatchScheduler(max_batch_size=3, max_wait_seconds=0.003),
            )
            config_topology = None
        source = _CountingSource(trace)
        config = ServingConfig(
            slo=slo,
            admit=True,
            degradation=DegradationPolicy() if scenario.degradation else None,
            autoscaler=Autoscaler(
                min_shards=min_shards, max_shards=scenario.num_shards,
                scale_up_depth=3.0, scale_down_depth=0.5,
                hysteresis_observations=2,
            ),
            faults=scenario.faults,
            topology=config_topology,
        )
        report = cluster.serve_online(source, config=config)
        renders[engine] = json.dumps(report.as_dict(), sort_keys=True)
        reports[engine] = report
        _check_run(scenario, report, source, min_shards)

    # 2. engine byte-identity ----------------------------------------------
    if renders["reference"] != renders["fast"]:
        raise ChaosInvariantError(
            "engine-identity", scenario.name,
            "reference and fast reports differ byte-wise", scenario.as_dict(),
        )

    goodput = reports["fast"].goodput
    faults = reports["fast"].faults
    domains = faults.domains or ()
    return {
        "scenario": scenario.name,
        "offered": goodput.offered,
        "served": goodput.served,
        "served_degraded": goodput.served_degraded,
        "shed": goodput.shed,
        "failed": goodput.failed,
        "retried": faults.retried,
        "migrated": faults.migrated,
        "domain_outages": sum(stats.outages for stats in domains),
    }


def run_chaos_sweep(
    num_examples: int = 50,
    seed: int = 0,
    services=None,
    artifact_path: Optional[str] = None,
    verbose: bool = False,
) -> Dict[str, object]:
    """Sweep ``num_examples`` deterministic schedules; raise on violation.

    Returns a summary dict (per-scenario rows plus totals).  On an invariant
    violation the reproduction artifact is written to ``artifact_path`` (when
    given) before :class:`ChaosInvariantError` propagates.
    """
    if services is None:
        from repro.system.service import build_services

        services = build_services()
    scenarios = chaos_scenarios(num_examples, seed)
    rows: List[Dict[str, object]] = []
    try:
        for scenario in scenarios:
            row = run_scenario(services, scenario)
            rows.append(row)
            if verbose:
                print(
                    f"  {row['scenario']}: offered={row['offered']} "
                    f"served={row['served']} shed={row['shed']} "
                    f"failed={row['failed']} retried={row['retried']} "
                    f"domain_outages={row['domain_outages']}"
                )
    except ChaosInvariantError as error:
        if artifact_path is not None:
            payload = dict(error.artifact)
            payload["invariant"] = error.invariant
            payload["message"] = str(error)
            with open(artifact_path, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
        raise
    totals = {
        key: sum(int(row[key]) for row in rows)
        for key in ("offered", "served", "served_degraded", "shed", "failed",
                    "retried", "migrated", "domain_outages")
    }
    return {
        "examples": len(rows),
        "seed": seed,
        "invariants": list(INVARIANTS),
        "totals": totals,
        "runs": rows,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.serving.chaos``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--examples", type=int, default=50,
                        help="number of seeded schedules to sweep")
    parser.add_argument("--seed", type=int, default=0,
                        help="sweep seed (scenario i is a pure function of it)")
    parser.add_argument("--artifact", default="chaos_failure.json",
                        help="where to write the reproduction artifact on "
                             "an invariant violation")
    parser.add_argument("--verbose", action="store_true",
                        help="print one line per scenario")
    args = parser.parse_args(argv)
    try:
        summary = run_chaos_sweep(
            num_examples=args.examples, seed=args.seed,
            artifact_path=args.artifact, verbose=args.verbose,
        )
    except ChaosInvariantError as error:
        print(f"CHAOS INVARIANT VIOLATED: {error}")
        print(f"reproduction artifact written to {args.artifact}")
        return 1
    totals = summary["totals"]
    print(
        f"chaos sweep passed: {summary['examples']} schedules, "
        f"{totals['offered']} requests offered, {totals['served']} served "
        f"({totals['served_degraded']} degraded), {totals['shed']} shed, "
        f"{totals['failed']} failed, {totals['retried']} retries, "
        f"{totals['domain_outages']} whole-domain outages; all "
        f"{len(INVARIANTS)} invariants held with byte-identical reports."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
