"""Analysis helpers: latency containers, speedups and report formatting."""

from repro.analysis.metrics import (
    TaskLatencies,
    EndToEndLatency,
    speedup,
    geometric_mean,
    normalize,
    breakdown_percentages,
)
from repro.analysis.report import format_table, format_series, Table

__all__ = [
    "TaskLatencies",
    "EndToEndLatency",
    "speedup",
    "geometric_mean",
    "normalize",
    "breakdown_percentages",
    "format_table",
    "format_series",
    "Table",
]
