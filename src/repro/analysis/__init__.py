"""Analysis helpers: latency containers, speedups and report formatting."""

from repro.analysis.metrics import (
    TaskLatencies,
    EndToEndLatency,
    LatencyStats,
    percentile,
    speedup,
    geometric_mean,
    normalize,
    breakdown_percentages,
)
from repro.analysis.report import format_table, format_series, format_distribution, Table

__all__ = [
    "TaskLatencies",
    "EndToEndLatency",
    "LatencyStats",
    "percentile",
    "speedup",
    "geometric_mean",
    "normalize",
    "breakdown_percentages",
    "format_table",
    "format_series",
    "format_distribution",
    "Table",
]
