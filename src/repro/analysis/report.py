"""Plain-text table/series formatting used by the benchmark harness.

The benchmarks print the same rows and series the paper's tables and figures
report; these helpers keep that output consistent and readable in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Sequence, Union

Number = Union[int, float]


@dataclass
class Table:
    """A simple column-aligned text table.

    Attributes:
        title: heading printed above the table.
        columns: column names.
        rows: list of row value lists (same length as ``columns``).
    """

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append a row; raises ``ValueError`` on a column-count mismatch."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render the table as aligned plain text."""
        return format_table(self.title, self.columns, self.rows)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format a title, header and rows into an aligned plain-text table."""
    str_rows = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
) -> str:
    """Format one or more y-series against a shared x-axis as a table."""
    columns = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(title, columns, rows)


def format_distribution(title: str, stats_by_label: Mapping[str, object]) -> str:
    """Format latency summaries (one :class:`LatencyStats`-like per label).

    Each value must expose ``count``/``mean``/``p50``/``p95``/``p99``/``max``
    attributes (duck-typed so the serving layer's cluster reports and any ad
    hoc summary can share the same table shape).
    """
    columns = ["label", "count", "mean", "p50", "p95", "p99", "max"]
    rows = [
        [label, stats.count, stats.mean, stats.p50, stats.p95, stats.p99, stats.max]
        for label, stats in stats_by_label.items()
    ]
    return format_table(title, columns, rows)


def format_timeline(title: str, events: Sequence[object]) -> str:
    """Format a scaling timeline (autoscaler events) as a table.

    Each event must expose ``seconds``/``active_shards``/``reason``
    attributes (duck-typed against the control plane's ``ScalingEvent``)
    and may expose drain outcomes (``migrated``/``completed`` request
    counts from a drained scale-down); events without them — older
    captures, ad hoc rows — render as zeros rather than misreporting a
    drain as outcome-free.
    """
    columns = ["t_seconds", "active_shards", "reason", "migrated", "completed"]
    rows = [
        [
            event.seconds,
            event.active_shards,
            event.reason,
            getattr(event, "migrated", 0),
            getattr(event, "completed", 0),
        ]
        for event in events
    ]
    return format_table(title, columns, rows)


def format_domain_outages(title: str, domain_stats: Sequence[object]) -> str:
    """Format per-failure-domain outage accounting as a table.

    Each entry must expose ``domain``/``shards``/``outages``/
    ``outage_seconds``/``downtime_seconds`` attributes (duck-typed against
    :class:`~repro.serving.faults.DomainOutageStats`).  ``outage_seconds``
    counts whole-domain blackout time (every member down at once);
    ``downtime_seconds`` sums the members' individual dead time.  The
    interval-level view renders through :func:`format_timeline` via
    ``FaultStats.domain_timeline()``.
    """
    columns = ["domain", "shards", "outages", "outage_s", "downtime_s"]
    rows = [
        [
            stats.domain,
            len(stats.shards),
            stats.outages,
            stats.outage_seconds,
            stats.downtime_seconds,
        ]
        for stats in domain_stats
    ]
    return format_table(title, columns, rows)


def format_tenant_table(title: str, tenant_stats: Mapping[str, object]) -> str:
    """Format per-tenant serving accounting as a table.

    Each value must expose ``offered``/``served``/``shed``/``shed_rate``/
    ``slo_attainment``/``latency`` attributes (duck-typed against
    :class:`~repro.analysis.metrics.TenantStats`).
    """
    columns = ["tenant", "offered", "served", "shed", "shed_rate", "attainment", "p95_s"]
    rows = [
        [
            tenant,
            stats.offered,
            stats.served,
            stats.shed,
            stats.shed_rate,
            stats.slo_attainment,
            stats.latency.p95,
        ]
        for tenant, stats in tenant_stats.items()
    ]
    return format_table(title, columns, rows)


def print_table(title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a formatted table (convenience for benchmark scripts)."""
    print()
    print(format_table(title, columns, rows))
