"""Latency containers and metric helpers shared across baselines and systems."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

#: Task names in the paper's presentation order.
TASK_NAMES = ("ordering", "reshaping", "selecting", "reindexing")


@dataclass
class TaskLatencies:
    """Per-task preprocessing latency in seconds.

    Attributes mirror the paper's four preprocessing tasks.
    """

    ordering: float = 0.0
    reshaping: float = 0.0
    selecting: float = 0.0
    reindexing: float = 0.0

    @property
    def total(self) -> float:
        """Total preprocessing latency."""
        return self.ordering + self.reshaping + self.selecting + self.reindexing

    def as_dict(self) -> Dict[str, float]:
        """Latencies keyed by task name."""
        return {
            "ordering": self.ordering,
            "reshaping": self.reshaping,
            "selecting": self.selecting,
            "reindexing": self.reindexing,
        }

    def scaled(self, factor: float) -> "TaskLatencies":
        """Return a copy with every task latency multiplied by ``factor``."""
        return TaskLatencies(
            ordering=self.ordering * factor,
            reshaping=self.reshaping * factor,
            selecting=self.selecting * factor,
            reindexing=self.reindexing * factor,
        )

    def __add__(self, other: "TaskLatencies") -> "TaskLatencies":
        return TaskLatencies(
            ordering=self.ordering + other.ordering,
            reshaping=self.reshaping + other.reshaping,
            selecting=self.selecting + other.selecting,
            reindexing=self.reindexing + other.reindexing,
        )

    @classmethod
    def from_dict(cls, values: Mapping[str, float]) -> "TaskLatencies":
        """Build from a mapping keyed by task name (missing tasks default to 0)."""
        return cls(
            ordering=float(values.get("ordering", 0.0)),
            reshaping=float(values.get("reshaping", 0.0)),
            selecting=float(values.get("selecting", 0.0)),
            reindexing=float(values.get("reindexing", 0.0)),
        )


@dataclass
class EndToEndLatency:
    """End-to-end GNN service latency decomposition in seconds.

    Attributes:
        preprocessing: per-task preprocessing latencies.
        transfer: host/accelerator/GPU data-movement latency.
        inference: GNN model execution latency.
        reconfiguration: FPGA partial-reconfiguration latency (AutoGNN only).
    """

    preprocessing: TaskLatencies = field(default_factory=TaskLatencies)
    transfer: float = 0.0
    inference: float = 0.0
    reconfiguration: float = 0.0

    @property
    def total(self) -> float:
        """Total service latency."""
        return self.preprocessing.total + self.transfer + self.inference + self.reconfiguration

    @property
    def preprocessing_share(self) -> float:
        """Fraction of the total spent in preprocessing (+ transfers)."""
        if self.total == 0:
            return 0.0
        return (self.preprocessing.total + self.transfer + self.reconfiguration) / self.total

    def as_dict(self) -> Dict[str, float]:
        """Flat component dictionary, preprocessing expanded per task."""
        out = self.preprocessing.as_dict()
        out["transfer"] = self.transfer
        out["inference"] = self.inference
        out["reconfiguration"] = self.reconfiguration
        return out


def speedup(baseline: float, candidate: float) -> float:
    """Baseline-over-candidate latency ratio (``>1`` means candidate is faster)."""
    if candidate <= 0:
        return math.inf
    return baseline / candidate


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 0 when the input is empty."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Divide every value by ``reference`` (guarding against zero)."""
    if reference == 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]


def breakdown_percentages(components: Mapping[str, float]) -> Dict[str, float]:
    """Convert a component dictionary to percentages of its sum."""
    total = sum(components.values())
    if total <= 0:
        return {key: 0.0 for key in components}
    return {key: 100.0 * value / total for key, value in components.items()}
