"""Latency containers and metric helpers shared across baselines and systems."""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

#: Task names in the paper's presentation order.
TASK_NAMES = ("ordering", "reshaping", "selecting", "reindexing")


@dataclass
class TaskLatencies:
    """Per-task preprocessing latency in seconds.

    Attributes mirror the paper's four preprocessing tasks.
    """

    ordering: float = 0.0
    reshaping: float = 0.0
    selecting: float = 0.0
    reindexing: float = 0.0

    @property
    def total(self) -> float:
        """Total preprocessing latency."""
        return self.ordering + self.reshaping + self.selecting + self.reindexing

    def as_dict(self) -> Dict[str, float]:
        """Latencies keyed by task name."""
        return {
            "ordering": self.ordering,
            "reshaping": self.reshaping,
            "selecting": self.selecting,
            "reindexing": self.reindexing,
        }

    def scaled(self, factor: float) -> "TaskLatencies":
        """Return a copy with every task latency multiplied by ``factor``."""
        return TaskLatencies(
            ordering=self.ordering * factor,
            reshaping=self.reshaping * factor,
            selecting=self.selecting * factor,
            reindexing=self.reindexing * factor,
        )

    def __add__(self, other: "TaskLatencies") -> "TaskLatencies":
        return TaskLatencies(
            ordering=self.ordering + other.ordering,
            reshaping=self.reshaping + other.reshaping,
            selecting=self.selecting + other.selecting,
            reindexing=self.reindexing + other.reindexing,
        )

    @classmethod
    def from_dict(cls, values: Mapping[str, float]) -> "TaskLatencies":
        """Build from a mapping keyed by task name (missing tasks default to 0)."""
        return cls(
            ordering=float(values.get("ordering", 0.0)),
            reshaping=float(values.get("reshaping", 0.0)),
            selecting=float(values.get("selecting", 0.0)),
            reindexing=float(values.get("reindexing", 0.0)),
        )


@dataclass
class EndToEndLatency:
    """End-to-end GNN service latency decomposition in seconds.

    Attributes:
        preprocessing: per-task preprocessing latencies.
        transfer: host/accelerator/GPU data-movement latency.
        inference: GNN model execution latency.
        reconfiguration: FPGA partial-reconfiguration latency (AutoGNN only).
    """

    preprocessing: TaskLatencies = field(default_factory=TaskLatencies)
    transfer: float = 0.0
    inference: float = 0.0
    reconfiguration: float = 0.0

    @property
    def total(self) -> float:
        """Total service latency."""
        return self.preprocessing.total + self.transfer + self.inference + self.reconfiguration

    @property
    def preprocessing_share(self) -> float:
        """Fraction of the total spent in preprocessing (+ transfers)."""
        if self.total == 0:
            return 0.0
        return (self.preprocessing.total + self.transfer + self.reconfiguration) / self.total

    def as_dict(self) -> Dict[str, float]:
        """Flat component dictionary, preprocessing expanded per task."""
        out = self.preprocessing.as_dict()
        out["transfer"] = self.transfer
        out["inference"] = self.inference
        out["reconfiguration"] = self.reconfiguration
        return out


def _percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile of an already-sorted sequence.

    Shared by :func:`percentile` and the streaming accumulator's exact
    report-time path, so both produce bit-identical values from the same
    sample multiset.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[lower])
    weight = rank - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile of ``values`` (0 when empty).

    Matches ``numpy.percentile``'s default (linear) method; implemented on
    plain sequences so small report aggregations skip array round trips and
    this module keeps its no-import policy.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    return _percentile_sorted(sorted(values), q)


@dataclass
class LatencyStats:
    """Summary statistics of a latency sample (seconds).

    Attributes:
        count: number of samples.
        mean: arithmetic mean.
        p50: median.
        p95: 95th percentile.
        p99: 99th percentile.
        max: largest sample.
    """

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Compute the summary of a (possibly empty) latency sample."""
        if not samples:
            return cls()
        ordered = sorted(samples)
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=_percentile_sorted(ordered, 50),
            p95=_percentile_sorted(ordered, 95),
            p99=_percentile_sorted(ordered, 99),
            max=float(ordered[-1]),
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the summary (for JSON reports)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


class P2Quantile:
    """Single-pass quantile estimate (Jain & Chlamtac's P² algorithm).

    Maintains five markers in O(1) memory and time per observation — the
    serving fast engine uses it to expose live percentile estimates while a
    run is in flight, without holding the sample.  Report-time numbers never
    come from here: :class:`StreamingLatencyStats` falls back to the exact
    sorted-sample computation at report boundaries.

    :meth:`estimate` raises on an empty sample instead of returning a
    sentinel — a ``0.0`` would be indistinguishable from a true
    zero-latency quantile; callers that want a default should check
    :attr:`count` first.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, q: float) -> None:
        if not 0 < q < 100:
            raise ValueError("q must be within (0, 100)")
        self.q = q
        #: Observations fed so far (0 means :meth:`estimate` would raise).
        self.count = 0
        p = q / 100.0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def push(self, sample: float) -> None:
        """Feed one observation into the marker state."""
        heights = self._heights
        self.count += 1
        if len(heights) < 5:
            heights.append(sample)
            heights.sort()
            return
        if sample < heights[0]:
            heights[0] = sample
            cell = 0
        elif sample >= heights[4]:
            heights[4] = sample
            cell = 3
        else:
            cell = 0
            while sample >= heights[cell + 1]:
                cell += 1
        positions = self._positions
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if not (heights[i - 1] < candidate < heights[i + 1]):
                    candidate = self._linear(i, step)
                    # Degenerate markers (duplicate heights among the first
                    # five samples leave flat spans) can push the linear
                    # update a hair outside the bracket through float
                    # error, after which the parabolic update drifts on
                    # the inverted span; clamp so the marker invariant
                    # h[i-1] <= h[i] <= h[i+1] always holds.
                    if candidate < heights[i - 1]:
                        candidate = heights[i - 1]
                    elif candidate > heights[i + 1]:
                        candidate = heights[i + 1]
                heights[i] = candidate
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        return heights[i] + step / (positions[i + 1] - positions[i - 1]) * (
            (positions[i] - positions[i - 1] + step)
            * (heights[i + 1] - heights[i])
            / (positions[i + 1] - positions[i])
            + (positions[i + 1] - positions[i] - step)
            * (heights[i] - heights[i - 1])
            / (positions[i] - positions[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        j = i + int(step)
        return heights[i] + step * (heights[j] - heights[i]) / (positions[j] - positions[i])

    def estimate(self) -> float:
        """Current quantile estimate (exact while fewer than five samples).

        Raises ``ValueError`` when no observation has been pushed yet: an
        empty estimator has no quantile, and returning ``0.0`` (the old
        behaviour) was indistinguishable from a true zero-latency sample.
        """
        if not self._heights:
            raise ValueError(
                "P2Quantile.estimate() on an empty sample; check .count first"
            )
        if len(self._heights) < 5:
            return _percentile_sorted(self._heights, self.q)
        return float(self._heights[2])


class StreamingLatencyStats:
    """Single-pass latency accumulator with an exact report-time summary.

    The serving fast engine pushes one sojourn per served request instead of
    collecting them in a Python list of boxed floats: the sample is kept in a
    compact ``array('d')`` buffer (8 bytes/sample), the mean is accumulated
    running in push order (bit-identical to ``sum(list)`` over the same
    order), and P² markers provide O(1) *approximate* percentiles while the
    run is in flight.  :meth:`stats` sorts the buffer once and produces a
    :class:`LatencyStats` that is bit-identical to
    ``LatencyStats.from_samples`` on the same push sequence — the exact
    fallback that report boundaries (and the golden-report byte-stability
    tests) rely on.
    """

    __slots__ = ("_samples", "_sum", "_p2")

    #: Percentiles tracked by the live P² estimators.
    APPROX_QUANTILES = (50.0, 95.0, 99.0)

    def __init__(self, track_approx: bool = True) -> None:
        self._samples = array("d")
        self._sum = 0.0
        # track_approx=False skips the per-push P² marker updates for hot
        # paths that only need the exact report-time summary (the serving
        # fast engine); approx_percentile then raises.
        self._p2 = (
            {q: P2Quantile(q) for q in self.APPROX_QUANTILES} if track_approx else {}
        )

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        """Samples pushed so far."""
        return len(self._samples)

    @property
    def total(self) -> float:
        """Running sum of all pushed samples (push order)."""
        return self._sum

    def push(self, sample: float) -> None:
        """Accumulate one latency sample."""
        self._samples.append(sample)
        self._sum += sample
        if self._p2:
            for marker in self._p2.values():
                marker.push(sample)

    def extend(self, samples) -> None:
        """Bulk-accumulate ``samples`` (a float64 ndarray or any iterable).

        Bit-identical to pushing the samples one by one in order: the
        running sum folds left-to-right (``numpy.add.accumulate`` is a
        sequential fold, unlike ``numpy.sum``'s pairwise reduction), so a
        later :meth:`stats` cannot tell the chunked path from the per-event
        one.  This is the serving engine's array-native hot path; with P²
        tracking enabled it falls back to per-sample pushes because the
        marker state is inherently sequential.
        """
        if self._p2:
            for sample in samples:
                self.push(sample)
            return
        import numpy as np

        chunk = np.ascontiguousarray(samples, dtype=np.float64)
        if chunk.size == 0:
            return
        # array('d') shares numpy's machine representation of float64, so
        # the raw buffer append is exact.
        self._samples.frombytes(chunk.tobytes())
        acc = np.empty(chunk.size + 1, dtype=np.float64)
        acc[0] = self._sum
        acc[1:] = chunk
        self._sum = float(np.add.accumulate(acc)[-1])

    def approx_percentile(self, q: float) -> float:
        """Live P² estimate for one of :data:`APPROX_QUANTILES` (O(1)).

        Raises ``KeyError`` for untracked quantiles, including every
        quantile when the accumulator was built with ``track_approx=False``.
        """
        if q not in self._p2:
            raise KeyError(
                f"no live estimator for q={q}; tracked: {tuple(self._p2)}"
            )
        return self._p2[q].estimate()

    def stats(self) -> LatencyStats:
        """Exact summary — bit-identical to ``LatencyStats.from_samples``."""
        if not self._samples:
            return LatencyStats()
        ordered = sorted(self._samples)
        return LatencyStats(
            count=len(self._samples),
            mean=self._sum / len(self._samples),
            p50=_percentile_sorted(ordered, 50),
            p95=_percentile_sorted(ordered, 95),
            p99=_percentile_sorted(ordered, 99),
            max=float(ordered[-1]),
        )


@dataclass
class GoodputStats:
    """Offered/served/shed/failed accounting of one SLO-scored serving run.

    ``offered == served + shed + failed`` by construction (the control plane
    either admits a request or sheds it at arrival, and an admitted request
    either completes or permanently fails under fault injection; nothing is
    dropped silently), and ``goodput_rps <= throughput_rps`` because only
    served requests that met their SLO count as goodput.

    ``served`` further splits by quality tier: under a degradation policy
    (see :class:`~repro.serving.control.DegradationPolicy`) a request may
    complete at a cheaper degraded profile instead of being shed, so
    ``served == served_full + served_degraded`` and the full conservation
    identity is ``offered == served_full + served_degraded + shed + failed``
    — exact integers, property-tested.

    Attributes:
        offered: requests that reached the cluster front-end.
        served: requests that completed service (any quality tier).
        shed: requests rejected at admission.
        failed: admitted requests lost to shard faults (retry budget spent).
        slo_met: served requests whose sojourn met their SLO (any tier).
        served_degraded: served requests executed at the degraded tier.
        slo_met_degraded: degraded-tier served requests that met their SLO.
        makespan_seconds: first arrival to last completion.
    """

    offered: int = 0
    served: int = 0
    shed: int = 0
    slo_met: int = 0
    makespan_seconds: float = 0.0
    failed: int = 0
    served_degraded: int = 0
    slo_met_degraded: int = 0

    @property
    def served_full(self) -> int:
        """Served requests executed at full quality."""
        return self.served - self.served_degraded

    @property
    def slo_met_full(self) -> int:
        """Full-quality served requests that met their SLO."""
        return self.slo_met - self.slo_met_degraded

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests rejected at admission."""
        if self.offered <= 0:
            return 0.0
        return self.shed / self.offered

    @property
    def slo_attainment(self) -> float:
        """Fraction of served requests that met their SLO."""
        if self.served <= 0:
            return 0.0
        return self.slo_met / self.served

    @property
    def throughput_rps(self) -> float:
        """Served requests per second of makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.served / self.makespan_seconds

    @property
    def goodput_rps(self) -> float:
        """SLO-met served requests per second of makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.slo_met / self.makespan_seconds

    def slo_weighted_goodput_rps(self, degraded_utility: float) -> float:
        """Goodput with degraded completions discounted to their utility.

        A full-quality SLO-met completion is worth 1, a degraded one
        ``degraded_utility`` (the :class:`DegradationPolicy` knob) — the
        headline the graceful-degradation benchmark compares against binary
        shedding.
        """
        if self.makespan_seconds <= 0:
            return 0.0
        weighted = self.slo_met_full + degraded_utility * self.slo_met_degraded
        return weighted / self.makespan_seconds

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the accounting (for JSON reports)."""
        return {
            "offered": self.offered,
            "served": self.served,
            "served_full": self.served_full,
            "served_degraded": self.served_degraded,
            "shed": self.shed,
            "failed": self.failed,
            "shed_rate": self.shed_rate,
            "slo_met": self.slo_met,
            "slo_met_full": self.slo_met_full,
            "slo_met_degraded": self.slo_met_degraded,
            "slo_attainment": self.slo_attainment,
            "goodput_rps": self.goodput_rps,
        }


@dataclass
class TenantStats:
    """Per-tenant slice of one serving run's accounting.

    Attributes:
        tenant: tenant name.
        offered: requests of the tenant that reached the cluster front-end.
        served: requests of the tenant that completed service (any tier).
        shed: requests of the tenant rejected at admission.
        slo_met: served requests of the tenant that met their SLO.
        latency: sojourn-time summary of the tenant's served requests.
        served_degraded: the tenant's served requests executed at the
            degraded quality tier.
        slo_met_degraded: the tenant's degraded-tier served requests that
            met their SLO.
    """

    tenant: str
    offered: int = 0
    served: int = 0
    shed: int = 0
    slo_met: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    served_degraded: int = 0
    slo_met_degraded: int = 0

    @property
    def served_full(self) -> int:
        """The tenant's served requests executed at full quality."""
        return self.served - self.served_degraded

    @property
    def slo_met_full(self) -> int:
        """The tenant's full-quality served requests that met their SLO."""
        return self.slo_met - self.slo_met_degraded

    @property
    def shed_rate(self) -> float:
        """Fraction of the tenant's offered requests rejected at admission."""
        if self.offered <= 0:
            return 0.0
        return self.shed / self.offered

    @property
    def slo_attainment(self) -> float:
        """Fraction of the tenant's served requests that met their SLO."""
        if self.served <= 0:
            return 0.0
        return self.slo_met / self.served

    def slo_weighted_goodput(self, degraded_utility: float) -> float:
        """SLO-met completions weighted by degraded-tier utility.

        A full-quality SLO-met completion counts 1, a degraded one
        ``degraded_utility`` — the per-tenant analogue of
        :meth:`GoodputStats.slo_weighted_goodput_rps` (a count, not a rate:
        tenants share the run's makespan, so callers divide once).
        """
        return self.slo_met_full + degraded_utility * self.slo_met_degraded

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary of the per-tenant accounting (for JSON reports)."""
        return {
            "offered": self.offered,
            "served": self.served,
            "served_degraded": self.served_degraded,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "slo_met": self.slo_met,
            "slo_met_degraded": self.slo_met_degraded,
            "slo_attainment": self.slo_attainment,
            "latency": self.latency.as_dict(),
        }


def attainment_spread(tenant_stats: Iterable[TenantStats]) -> float:
    """Max-over-min per-tenant SLO attainment — the fairness headline.

    1.0 means every tenant sees the same attainment; large values mean some
    tenant is starved relative to another.  Tenants that served nothing are
    scored 0 attainment (they count as maximally starved); returns 0.0 when
    there are no tenants.
    """
    values = [stats.slo_attainment for stats in tenant_stats]
    if not values:
        return 0.0
    worst = min(values)
    best = max(values)
    if worst <= 0.0:
        return math.inf if best > 0.0 else 0.0
    return best / worst


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index of a non-negative allocation (1.0 = equal).

    ``(sum x)^2 / (n * sum x^2)``, the standard [1/n, 1] fairness score;
    0.0 when the input is empty or all-zero.
    """
    values = [max(v, 0.0) for v in values]
    total = sum(values)
    if not values or total <= 0:
        return 0.0
    return total * total / (len(values) * sum(v * v for v in values))


def speedup(baseline: float, candidate: float) -> float:
    """Baseline-over-candidate latency ratio (``>1`` means candidate is faster)."""
    if candidate <= 0:
        return math.inf
    return baseline / candidate


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 0 when the input is empty."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Divide every value by ``reference`` (guarding against zero)."""
    if reference == 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]


def breakdown_percentages(components: Mapping[str, float]) -> Dict[str, float]:
    """Convert a component dictionary to percentages of its sum."""
    total = sum(components.values())
    if total <= 0:
        return {key: 0.0 for key in components}
    return {key: 100.0 * value / total for key, value in components.items()}
