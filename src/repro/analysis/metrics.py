"""Latency containers and metric helpers shared across baselines and systems."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

#: Task names in the paper's presentation order.
TASK_NAMES = ("ordering", "reshaping", "selecting", "reindexing")


@dataclass
class TaskLatencies:
    """Per-task preprocessing latency in seconds.

    Attributes mirror the paper's four preprocessing tasks.
    """

    ordering: float = 0.0
    reshaping: float = 0.0
    selecting: float = 0.0
    reindexing: float = 0.0

    @property
    def total(self) -> float:
        """Total preprocessing latency."""
        return self.ordering + self.reshaping + self.selecting + self.reindexing

    def as_dict(self) -> Dict[str, float]:
        """Latencies keyed by task name."""
        return {
            "ordering": self.ordering,
            "reshaping": self.reshaping,
            "selecting": self.selecting,
            "reindexing": self.reindexing,
        }

    def scaled(self, factor: float) -> "TaskLatencies":
        """Return a copy with every task latency multiplied by ``factor``."""
        return TaskLatencies(
            ordering=self.ordering * factor,
            reshaping=self.reshaping * factor,
            selecting=self.selecting * factor,
            reindexing=self.reindexing * factor,
        )

    def __add__(self, other: "TaskLatencies") -> "TaskLatencies":
        return TaskLatencies(
            ordering=self.ordering + other.ordering,
            reshaping=self.reshaping + other.reshaping,
            selecting=self.selecting + other.selecting,
            reindexing=self.reindexing + other.reindexing,
        )

    @classmethod
    def from_dict(cls, values: Mapping[str, float]) -> "TaskLatencies":
        """Build from a mapping keyed by task name (missing tasks default to 0)."""
        return cls(
            ordering=float(values.get("ordering", 0.0)),
            reshaping=float(values.get("reshaping", 0.0)),
            selecting=float(values.get("selecting", 0.0)),
            reindexing=float(values.get("reindexing", 0.0)),
        )


@dataclass
class EndToEndLatency:
    """End-to-end GNN service latency decomposition in seconds.

    Attributes:
        preprocessing: per-task preprocessing latencies.
        transfer: host/accelerator/GPU data-movement latency.
        inference: GNN model execution latency.
        reconfiguration: FPGA partial-reconfiguration latency (AutoGNN only).
    """

    preprocessing: TaskLatencies = field(default_factory=TaskLatencies)
    transfer: float = 0.0
    inference: float = 0.0
    reconfiguration: float = 0.0

    @property
    def total(self) -> float:
        """Total service latency."""
        return self.preprocessing.total + self.transfer + self.inference + self.reconfiguration

    @property
    def preprocessing_share(self) -> float:
        """Fraction of the total spent in preprocessing (+ transfers)."""
        if self.total == 0:
            return 0.0
        return (self.preprocessing.total + self.transfer + self.reconfiguration) / self.total

    def as_dict(self) -> Dict[str, float]:
        """Flat component dictionary, preprocessing expanded per task."""
        out = self.preprocessing.as_dict()
        out["transfer"] = self.transfer
        out["inference"] = self.inference
        out["reconfiguration"] = self.reconfiguration
        return out


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated ``q``-th percentile of ``values`` (0 when empty).

    Matches ``numpy.percentile``'s default (linear) method; implemented on
    plain sequences so small report aggregations skip array round trips and
    this module keeps its no-import policy.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[lower])
    weight = rank - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


@dataclass
class LatencyStats:
    """Summary statistics of a latency sample (seconds).

    Attributes:
        count: number of samples.
        mean: arithmetic mean.
        p50: median.
        p95: 95th percentile.
        p99: 99th percentile.
        max: largest sample.
    """

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Compute the summary of a (possibly empty) latency sample."""
        if not samples:
            return cls()
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            max=float(max(samples)),
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the summary (for JSON reports)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass
class GoodputStats:
    """Offered/served/shed accounting of one SLO-scored serving run.

    ``offered == served + shed`` by construction (the control plane either
    admits a request or sheds it at arrival; nothing is dropped silently),
    and ``goodput_rps <= throughput_rps`` because only served requests that
    met their SLO count as goodput.

    Attributes:
        offered: requests that reached the cluster front-end.
        served: requests that completed service.
        shed: requests rejected at admission.
        slo_met: served requests whose sojourn met their SLO.
        makespan_seconds: first arrival to last completion.
    """

    offered: int = 0
    served: int = 0
    shed: int = 0
    slo_met: int = 0
    makespan_seconds: float = 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests rejected at admission."""
        if self.offered <= 0:
            return 0.0
        return self.shed / self.offered

    @property
    def slo_attainment(self) -> float:
        """Fraction of served requests that met their SLO."""
        if self.served <= 0:
            return 0.0
        return self.slo_met / self.served

    @property
    def throughput_rps(self) -> float:
        """Served requests per second of makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.served / self.makespan_seconds

    @property
    def goodput_rps(self) -> float:
        """SLO-met served requests per second of makespan."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.slo_met / self.makespan_seconds

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the accounting (for JSON reports)."""
        return {
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "slo_met": self.slo_met,
            "slo_attainment": self.slo_attainment,
            "goodput_rps": self.goodput_rps,
        }


def speedup(baseline: float, candidate: float) -> float:
    """Baseline-over-candidate latency ratio (``>1`` means candidate is faster)."""
    if candidate <= 0:
        return math.inf
    return baseline / candidate


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 0 when the input is empty."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Divide every value by ``reference`` (guarding against zero)."""
    if reference == 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]


def breakdown_percentages(components: Mapping[str, float]) -> Dict[str, float]:
    """Convert a component dictionary to percentages of its sum."""
    total = sum(components.values())
    if total <= 0:
        return {key: 0.0 for key in components}
    return {key: 100.0 * value / total for key, value in components.items()}
