"""Coordinate-format (COO) graph container.

The COO format stores each edge as a ``(source VID, destination VID)`` pair in
an unsorted edge array.  The paper uses COO as the storage format of raw and
frequently-updated graphs (Section II-A); AutoGNN's graph-conversion stage
turns it into CSC.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

VID_DTYPE = np.int64


@dataclass
class COOGraph:
    """An edge-array graph.

    Attributes:
        src: 1-D array of source VIDs, one entry per edge.
        dst: 1-D array of destination VIDs, one entry per edge.
        num_nodes: number of vertices; VIDs are integers in ``[0, num_nodes)``.
        name: optional human-readable name (dataset key).
        validate_vids: skip the O(E) VID range check when False — only for
            internal constructions whose edges are valid by derivation.
    """

    src: np.ndarray
    dst: np.ndarray
    num_nodes: int
    name: str = ""
    _degree_cache: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _out_degree_cache: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    validate_vids: InitVar[bool] = True

    def __post_init__(self, validate_vids: bool = True) -> None:
        self.src = np.asarray(self.src, dtype=VID_DTYPE).ravel()
        self.dst = np.asarray(self.dst, dtype=VID_DTYPE).ravel()
        if self.src.shape != self.dst.shape:
            raise ValueError(
                f"src and dst must have the same length, got {self.src.shape} vs {self.dst.shape}"
            )
        if self.num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        if self.num_edges and validate_vids:
            max_vid = int(max(self.src.max(), self.dst.max()))
            if max_vid >= self.num_nodes:
                raise ValueError(
                    f"VID {max_vid} out of range for num_nodes={self.num_nodes}"
                )
            min_vid = int(min(self.src.min(), self.dst.min()))
            if min_vid < 0:
                raise ValueError("VIDs must be non-negative")

    # ------------------------------------------------------------------ basic
    @property
    def num_edges(self) -> int:
        """Number of edges in the graph."""
        return int(self.src.shape[0])

    @property
    def avg_degree(self) -> float:
        """Average in-degree (edges per vertex)."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def __len__(self) -> int:
        return self.num_edges

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for s, d in zip(self.src.tolist(), self.dst.tolist()):
            yield int(s), int(d)

    def edges(self) -> np.ndarray:
        """Return a ``(num_edges, 2)`` array of ``(src, dst)`` pairs."""
        return np.stack([self.src, self.dst], axis=1)

    # ----------------------------------------------------------------- stats
    def in_degrees(self) -> np.ndarray:
        """Return the in-degree (edges arriving) per destination VID."""
        if self._degree_cache is None:
            self._degree_cache = np.bincount(self.dst, minlength=self.num_nodes).astype(VID_DTYPE)
        return self._degree_cache

    def out_degrees(self) -> np.ndarray:
        """Return the out-degree per source VID (cached like :meth:`in_degrees`)."""
        if self._out_degree_cache is None:
            self._out_degree_cache = np.bincount(self.src, minlength=self.num_nodes).astype(
                VID_DTYPE
            )
        return self._out_degree_cache


    def max_degree(self) -> int:
        """Maximum in-degree over all vertices."""
        degrees = self.in_degrees()
        return int(degrees.max()) if degrees.size else 0

    # ------------------------------------------------------------ operations
    @classmethod
    def from_edge_list(
        cls, edges: Iterable[Tuple[int, int]], num_nodes: Optional[int] = None, name: str = ""
    ) -> "COOGraph":
        """Build a COO graph from an iterable of ``(src, dst)`` pairs."""
        pairs = list(edges)
        if pairs:
            src = np.array([p[0] for p in pairs], dtype=VID_DTYPE)
            dst = np.array([p[1] for p in pairs], dtype=VID_DTYPE)
        else:
            src = np.empty(0, dtype=VID_DTYPE)
            dst = np.empty(0, dtype=VID_DTYPE)
        if num_nodes is None:
            num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1 if pairs else 0
        return cls(src=src, dst=dst, num_nodes=num_nodes, name=name)

    def concatenate_vids(self) -> np.ndarray:
        """Concatenate (dst, src) VID pairs into single 64-bit sort keys.

        The UPE controller concatenates destination and source VIDs so that a
        single radix sort orders edges primarily by destination and secondarily
        by source (Section V-A, Fig. 15).  Destination occupies the high bits.
        """
        shift = max(int(self.num_nodes).bit_length(), 1)
        return (self.dst.astype(np.int64) << shift) | self.src.astype(np.int64)

    @staticmethod
    def deconcatenate_vids(keys: np.ndarray, num_nodes: int) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`concatenate_vids`: split keys back into (src, dst)."""
        shift = max(int(num_nodes).bit_length(), 1)
        mask = (1 << shift) - 1
        keys = np.asarray(keys, dtype=np.int64)
        src = keys & mask
        dst = keys >> shift
        return src.astype(VID_DTYPE, copy=False), dst.astype(VID_DTYPE, copy=False)

    def with_edges(self, src: np.ndarray, dst: np.ndarray, validate: bool = True) -> "COOGraph":
        """Return a new graph with the same node count but different edges.

        The result is a fresh instance, so it never inherits this graph's
        degree caches; they are rebuilt on first use.  ``validate=False``
        skips the VID range check for edges known valid by derivation (e.g.
        permutations of this graph's own edges).
        """
        return COOGraph(
            src=src, dst=dst, num_nodes=self.num_nodes, name=self.name, validate_vids=validate
        )

    def add_edges(self, src: np.ndarray, dst: np.ndarray, num_nodes: Optional[int] = None) -> "COOGraph":
        """Return a new graph with the given edges appended (caches not inherited)."""
        new_nodes = self.num_nodes if num_nodes is None else num_nodes
        new_src = np.concatenate([self.src, np.asarray(src, dtype=VID_DTYPE)])
        new_dst = np.concatenate([self.dst, np.asarray(dst, dtype=VID_DTYPE)])
        return COOGraph(src=new_src, dst=new_dst, num_nodes=new_nodes, name=self.name)

    def subgraph_edges(self, mask: np.ndarray) -> "COOGraph":
        """Return a new graph keeping only edges where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        return self.with_edges(self.src[mask], self.dst[mask])

    def nbytes(self) -> int:
        """Approximate in-memory size of the edge arrays in bytes."""
        return int(self.src.nbytes + self.dst.nbytes)

    def copy(self) -> "COOGraph":
        """Deep copy of the edge arrays."""
        return COOGraph(
            src=self.src.copy(), dst=self.dst.copy(), num_nodes=self.num_nodes, name=self.name
        )

    def is_sorted(self) -> bool:
        """True when edges are sorted by (dst, src) — the post-ordering layout."""
        keys = self.concatenate_vids()
        return bool(np.all(keys[:-1] <= keys[1:])) if keys.size else True
