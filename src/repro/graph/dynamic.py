"""Dynamic graphs and update streams.

Social and e-commerce graphs grow continuously (Section III-A reports 0.52 %
and 0.95 % edge growth per day for SO and TB).  The experiments in Figs. 7,
28, 29 and 30 replay such growth; this module models the graph-over-time
substrate they run on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.generators import grow_graph

#: Daily edge-growth rates reported in the paper for the two dynamic datasets.
DAILY_GROWTH_RATE = {"SO": 0.0052, "TB": 0.0095}


@dataclass
class UpdateBatch:
    """One batch of graph updates (new edges arriving in a time step).

    Attributes:
        step: the time-step index (e.g. day or hour).
        src: source VIDs of the new edges.
        dst: destination VIDs of the new edges.
        new_nodes: number of vertices added in this step.
    """

    step: int
    src: np.ndarray
    dst: np.ndarray
    new_nodes: int = 0

    @property
    def num_edges(self) -> int:
        """Number of edges added in this batch."""
        return int(self.src.shape[0])


@dataclass
class DynamicGraph:
    """A graph that accumulates update batches over time."""

    graph: COOGraph
    history: List[UpdateBatch] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        """Number of update batches applied so far."""
        return len(self.history)

    def apply(self, batch: UpdateBatch) -> COOGraph:
        """Apply an update batch and return the new snapshot."""
        num_nodes = self.graph.num_nodes + batch.new_nodes
        self.graph = self.graph.add_edges(batch.src, batch.dst, num_nodes=num_nodes)
        self.history.append(batch)
        return self.graph

    def update_ratio(self, batch: UpdateBatch) -> float:
        """Fraction of the current edge set that a batch represents."""
        if self.graph.num_edges == 0:
            return 0.0
        return batch.num_edges / self.graph.num_edges


class GraphUpdateStream:
    """Generates a stream of update batches with a fixed per-step growth rate.

    Each step adds ``growth_rate`` × current-edge-count new edges; a fraction
    ``new_node_rate`` of added edges introduce previously unseen vertices
    (low-connectivity newcomers, as the paper observes for SO/TB), while the
    rest attach preferentially to existing hubs (JR/AM-style).
    """

    def __init__(
        self,
        base_graph: COOGraph,
        growth_rate: float,
        new_node_rate: float = 0.1,
        preferential: bool = True,
        seed: int = 0,
    ) -> None:
        if growth_rate < 0:
            raise ValueError("growth_rate must be non-negative")
        self.base_graph = base_graph
        self.growth_rate = growth_rate
        self.new_node_rate = new_node_rate
        self.preferential = preferential
        self._rng = np.random.default_rng(seed)

    def generate(self, num_steps: int) -> Iterator[UpdateBatch]:
        """Yield ``num_steps`` update batches, growing the edge count geometrically."""
        current = self.base_graph.copy()
        for step in range(num_steps):
            add = max(int(round(current.num_edges * self.growth_rate)), 1)
            new_nodes = int(round(add * self.new_node_rate))
            total_nodes = current.num_nodes + new_nodes
            grown = grow_graph(
                current, add, rng=self._rng, preferential=self.preferential
            )
            src = grown.src[current.num_edges :].copy()
            dst = grown.dst[current.num_edges :].copy()
            if new_nodes > 0:
                # Route a share of the new edges to the freshly added vertices.
                idx = self._rng.choice(add, size=min(new_nodes, add), replace=False)
                dst[idx] = current.num_nodes + np.arange(len(idx), dtype=VID_DTYPE)
            batch = UpdateBatch(step=step, src=src, dst=dst, new_nodes=new_nodes)
            current = COOGraph(
                src=np.concatenate([current.src, src]),
                dst=np.concatenate([current.dst, dst]),
                num_nodes=total_nodes,
                name=current.name,
            )
            yield batch

    def replay(self, num_steps: int) -> DynamicGraph:
        """Build a :class:`DynamicGraph` by applying ``num_steps`` batches."""
        dynamic = DynamicGraph(graph=self.base_graph.copy())
        for batch in self.generate(num_steps):
            dynamic.apply(batch)
        return dynamic


def affected_vertex_ratio(
    graph: COOGraph,
    updated_dst: np.ndarray,
    num_layers: int,
) -> float:
    """Fraction of vertices reachable within ``num_layers`` hops of the updates.

    Used in Fig. 29a: with highly connected newcomers (JR/AM) a small update
    touches most of the graph after a few layers, while low-connectivity
    newcomers (SO/TB) keep the affected fraction nearly constant.
    """
    if graph.num_nodes == 0:
        return 0.0
    from repro.graph.convert import coo_to_csc

    csc = coo_to_csc(graph)
    affected = set(np.unique(np.asarray(updated_dst, dtype=VID_DTYPE)).tolist())
    frontier = set(affected)
    for _ in range(num_layers):
        next_frontier = set()
        for node in frontier:
            if 0 <= node < csc.num_nodes:
                for nb in csc.in_neighbors(int(node)).tolist():
                    if nb not in affected:
                        affected.add(int(nb))
                        next_frontier.add(int(nb))
        frontier = next_frontier
        if not frontier:
            break
    return len(affected) / graph.num_nodes


def critical_update_ratio(
    graph: COOGraph,
    num_layers: int,
    target_fraction: float = 0.5,
    seed: int = 0,
    max_ratio: float = 0.1,
    steps: int = 8,
) -> float:
    """Smallest update ratio whose ``num_layers``-hop influence reaches ``target_fraction``.

    A bisection over the update ratio, mirroring the paper's "minimum
    graph-update ratio that perturbs GNN outputs" metric (Fig. 29a).
    Returns ``max_ratio`` when even the largest probe falls short.
    """
    rng = np.random.default_rng(seed)
    lo, hi = 0.0, max_ratio
    if graph.num_edges == 0:
        return max_ratio
    result = max_ratio
    for _ in range(steps):
        mid = (lo + hi) / 2.0
        count = max(int(graph.num_edges * mid), 1)
        picked = rng.integers(0, graph.num_edges, size=count)
        ratio = affected_vertex_ratio(graph, graph.dst[picked], num_layers)
        if ratio >= target_fraction:
            result = mid
            hi = mid
        else:
            lo = mid
    return result
