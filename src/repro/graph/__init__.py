"""Graph substrate: containers, conversion, datasets, sampling, dynamics.

This package provides the pure-software graph layer that every other part of
the reproduction builds on: COO and CSC containers, reference conversion
between them, the synthetic dataset registry matching Table II of the paper,
neighbour sampling and subgraph reindexing references, and the dynamic-graph
update streams used by the time-series experiments (Figs. 7, 28-31).
"""

from repro.graph.coo import COOGraph
from repro.graph.csc import CSCGraph
from repro.graph.convert import coo_to_csc, csc_to_coo, edge_order, build_pointer_array
from repro.graph.generators import (
    power_law_graph,
    uniform_random_graph,
    GraphSpec,
)
from repro.graph.datasets import (
    DatasetInfo,
    DATASETS,
    DATASET_ORDER,
    load_dataset,
    dataset_table,
)
from repro.graph.sampling import (
    MODE_REFERENCE,
    MODE_VECTORIZED,
    sample_neighbors,
    node_wise_sample,
    layer_wise_sample,
    SampledSubgraph,
    SelectionStats,
)
from repro.graph.reindex import reindex_subgraph, ReindexResult
from repro.graph.dynamic import DynamicGraph, GraphUpdateStream, UpdateBatch

__all__ = [
    "COOGraph",
    "CSCGraph",
    "coo_to_csc",
    "csc_to_coo",
    "edge_order",
    "build_pointer_array",
    "power_law_graph",
    "uniform_random_graph",
    "GraphSpec",
    "DatasetInfo",
    "DATASETS",
    "DATASET_ORDER",
    "load_dataset",
    "dataset_table",
    "MODE_REFERENCE",
    "MODE_VECTORIZED",
    "sample_neighbors",
    "node_wise_sample",
    "layer_wise_sample",
    "SampledSubgraph",
    "SelectionStats",
    "reindex_subgraph",
    "ReindexResult",
    "DynamicGraph",
    "GraphUpdateStream",
    "UpdateBatch",
]
