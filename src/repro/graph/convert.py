"""Reference graph-format conversion (COO <-> CSC).

These are the pure-software reference implementations of the two graph
conversion tasks the paper decomposes (Section II-B): *edge ordering* (sort
edges by destination then source) and *data reshaping* (build the CSC pointer
array from the sorted edge array).  Every hardware/baseline implementation in
the repo is checked against these functions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.csc import CSCGraph


def edge_order(graph: COOGraph) -> COOGraph:
    """Sort edges by destination VID, breaking ties by source VID.

    This produces the layout that data reshaping turns into CSC: edges sharing
    a destination are contiguous, and within a destination sources ascend.
    Sorting the concatenated ``(dst, src)`` keys with a single-key sort is
    equivalent to ``np.lexsort((src, dst))`` (destination occupies the high
    bits) and several times faster.
    """
    keys = np.sort(graph.concatenate_vids())
    src, dst = COOGraph.deconcatenate_vids(keys, graph.num_nodes)
    # A permutation of already-validated edges needs no range re-check.
    return graph.with_edges(src, dst, validate=False)


def build_pointer_array(sorted_dst: np.ndarray, num_nodes: int) -> np.ndarray:
    """Build the CSC pointer array from a destination-sorted edge array.

    ``pointer[v]`` equals the number of edges whose destination VID is strictly
    smaller than ``v`` — exactly the set-counting formulation of Section IV-A.
    """
    sorted_dst = np.asarray(sorted_dst, dtype=VID_DTYPE)
    counts = np.bincount(sorted_dst, minlength=num_nodes) if sorted_dst.size else np.zeros(
        num_nodes, dtype=VID_DTYPE
    )
    indptr = np.zeros(num_nodes + 1, dtype=VID_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    return indptr


def coo_to_csc(graph: COOGraph) -> CSCGraph:
    """Convert a COO graph to CSC (edge ordering followed by data reshaping)."""
    ordered = edge_order(graph)
    indptr = build_pointer_array(ordered.dst, graph.num_nodes)
    return CSCGraph(
        indptr=indptr,
        indices=ordered.src.copy(),
        num_nodes=graph.num_nodes,
        name=graph.name,
    )


def csc_to_coo(graph: CSCGraph) -> COOGraph:
    """Convert a CSC graph back to COO (destination-major edge order)."""
    src, dst = graph.edge_arrays()
    return COOGraph(src=src, dst=dst, num_nodes=graph.num_nodes, name=graph.name)


def validate_conversion(coo: COOGraph, csc: CSCGraph) -> bool:
    """Return True when ``csc`` is a faithful conversion of ``coo``.

    The check is order-insensitive on the COO side: the multiset of edges must
    match and the CSC must be internally consistent.
    """
    csc.validate()
    if coo.num_edges != csc.num_edges or coo.num_nodes != csc.num_nodes:
        return False
    ref = coo_to_csc(coo)
    if not np.array_equal(ref.indptr, csc.indptr):
        return False
    # Within a destination group, source order may legitimately differ between
    # implementations; compare groups as multisets.
    for dst in range(csc.num_nodes):
        a = np.sort(ref.in_neighbors(dst))
        b = np.sort(csc.in_neighbors(dst))
        if not np.array_equal(a, b):
            return False
    return True


def sorted_coo_arrays(graph: COOGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(src, dst)`` arrays sorted by (dst, src); convenience helper."""
    ordered = edge_order(graph)
    return ordered.src, ordered.dst
