"""Synthetic graph generators.

The paper evaluates on 11 real datasets (Table II).  Those datasets are not
redistributable inside this repository, so we generate synthetic graphs whose
node count, edge count and degree skew match the originals proportionally.
Preprocessing cost depends only on those aggregate characteristics, so the
substitution preserves the trends the evaluation reports (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.coo import COOGraph, VID_DTYPE


@dataclass(frozen=True)
class GraphSpec:
    """A target shape for a synthetic graph.

    Attributes:
        num_nodes: number of vertices.
        num_edges: number of edges.
        degree_skew: power-law exponent-like knob; 0 gives uniform destination
            choice, larger values concentrate edges on a few hub destinations
            (high-degree graphs such as MV/TB in the paper).
        name: dataset key.
        seed: RNG seed for reproducibility.
    """

    num_nodes: int
    num_edges: int
    degree_skew: float = 0.0
    name: str = ""
    seed: int = 0


def _zipf_probabilities(num_nodes: int, skew: float) -> np.ndarray:
    """Zipf-like probability vector over VIDs; ``skew==0`` means uniform."""
    if num_nodes <= 0:
        return np.empty(0)
    if skew <= 0:
        return np.full(num_nodes, 1.0 / num_nodes)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def power_law_graph(spec: GraphSpec) -> COOGraph:
    """Generate a graph whose in-degree distribution follows a Zipf-like law.

    Destinations are drawn from a Zipf-like distribution (hubs attract most
    edges), sources uniformly.  This mimics the heavy-tailed degree profile of
    the interaction/e-commerce graphs in Table II (MV, FR, TB) while a skew of
    zero reproduces the flatter citation graphs (PH, AX, CL).
    """
    rng = np.random.default_rng(spec.seed)
    if spec.num_nodes == 0 or spec.num_edges == 0:
        return COOGraph(
            src=np.empty(0, dtype=VID_DTYPE),
            dst=np.empty(0, dtype=VID_DTYPE),
            num_nodes=spec.num_nodes,
            name=spec.name,
        )
    probs = _zipf_probabilities(spec.num_nodes, spec.degree_skew)
    dst = rng.choice(spec.num_nodes, size=spec.num_edges, p=probs)
    src = rng.integers(0, spec.num_nodes, size=spec.num_edges)
    # Permute destination identities so hubs are not simply the lowest VIDs;
    # radix sort behaviour should not get an artificial advantage.
    perm = rng.permutation(spec.num_nodes)
    dst = perm[dst]
    return COOGraph(
        src=src.astype(VID_DTYPE),
        dst=dst.astype(VID_DTYPE),
        num_nodes=spec.num_nodes,
        name=spec.name,
    )


def uniform_random_graph(
    num_nodes: int, num_edges: int, seed: int = 0, name: str = ""
) -> COOGraph:
    """Generate an Erdos-Renyi-style graph with uniformly random endpoints."""
    return power_law_graph(
        GraphSpec(num_nodes=num_nodes, num_edges=num_edges, degree_skew=0.0, name=name, seed=seed)
    )


def skew_for_average_degree(avg_degree: float) -> float:
    """Heuristic mapping from a dataset's average degree to a Zipf skew.

    Low-degree citation graphs get nearly uniform destinations; very dense
    interaction graphs (degree in the hundreds or thousands) get a strong
    skew so a handful of hub nodes dominate, reproducing the node-explosion
    behaviour the paper describes for MV and TB.
    """
    if avg_degree < 20:
        return 0.0
    if avg_degree < 120:
        return 0.6
    if avg_degree < 700:
        return 0.9
    return 1.1


def grow_graph(
    graph: COOGraph,
    new_edges: int,
    rng: Optional[np.random.Generator] = None,
    preferential: bool = True,
) -> COOGraph:
    """Append ``new_edges`` edges, optionally with preferential attachment.

    Used by the dynamic-graph experiments (Figs. 7, 29, 30): social and
    e-commerce graphs keep growing, and new edges tend to attach to already
    popular destinations.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if new_edges <= 0:
        return graph.copy()
    if preferential and graph.num_edges > 0:
        picked = rng.integers(0, graph.num_edges, size=new_edges)
        dst = graph.dst[picked]
    else:
        dst = rng.integers(0, max(graph.num_nodes, 1), size=new_edges)
    src = rng.integers(0, max(graph.num_nodes, 1), size=new_edges)
    return graph.add_edges(src.astype(VID_DTYPE), dst.astype(VID_DTYPE))
