"""Dataset registry reproducing Table II of the paper.

Each entry records the real dataset's node count, edge count, average degree
and network category; :func:`load_dataset` generates a synthetic stand-in at a
configurable scale (default 1/1000 of the original edge count) whose shape
matches those characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graph.coo import COOGraph
from repro.graph.generators import GraphSpec, power_law_graph, skew_for_average_degree

#: Default down-scaling factor applied to the paper's edge counts so that the
#: full benchmark suite runs on a laptop.  1/1000 keeps the relative ordering
#: of dataset sizes and degrees intact.
DEFAULT_SCALE = 1.0 / 1000.0

#: Minimum synthetic graph size so tiny scales still exercise every code path.
_MIN_NODES = 64
_MIN_EDGES = 256


@dataclass(frozen=True)
class DatasetInfo:
    """Characteristics of one dataset from Table II.

    Attributes:
        key: two-letter abbreviation used throughout the paper's figures.
        full_name: dataset name as published.
        category: network category (citation / interaction / social / e-commerce).
        num_edges: edge count of the real dataset.
        num_nodes: node count of the real dataset.
        avg_degree: average degree of the real dataset.
    """

    key: str
    full_name: str
    category: str
    num_edges: int
    num_nodes: int
    avg_degree: float

    def spec(self, scale: float = DEFAULT_SCALE, seed: Optional[int] = None) -> GraphSpec:
        """Return a synthetic :class:`GraphSpec` matching this dataset at ``scale``."""
        edges = max(int(self.num_edges * scale), _MIN_EDGES)
        nodes = max(int(self.num_nodes * scale), _MIN_NODES)
        # Preserve the dataset's average degree: degree = edges / nodes.
        nodes = max(min(nodes, edges), _MIN_NODES)
        target_nodes = max(int(round(edges / self.avg_degree)), _MIN_NODES)
        nodes = max(target_nodes, _MIN_NODES)
        if seed is None:
            seed = abs(hash(self.key)) % (2**31)
        return GraphSpec(
            num_nodes=nodes,
            num_edges=edges,
            degree_skew=skew_for_average_degree(self.avg_degree),
            name=self.key,
            seed=seed,
        )


def _info(key, full_name, category, num_edges, num_nodes, avg_degree) -> DatasetInfo:
    return DatasetInfo(
        key=key,
        full_name=full_name,
        category=category,
        num_edges=num_edges,
        num_nodes=num_nodes,
        avg_degree=avg_degree,
    )


#: Table II of the paper, keyed by the two-letter abbreviation.
DATASETS: Dict[str, DatasetInfo] = {
    "PH": _info("PH", "Physics", "citation", 495_000, 34_500, 14.4),
    "AX": _info("AX", "ogbn-arxiv", "citation", 1_160_000, 169_000, 6.84),
    "CL": _info("CL", "ogbl-collab", "citation", 2_360_000, 236_000, 10.0),
    "YL": _info("YL", "Yelp", "interaction", 6_810_000, 46_000, 148.0),
    "FR": _info("FR", "Fraud", "interaction", 7_130_000, 11_900, 597.0),
    "MV": _info("MV", "Movie", "interaction", 11_300_000, 3_710, 3052.0),
    "RD": _info("RD", "Reddit2", "social", 23_200_000, 233_000, 99.6),
    "SO": _info("SO", "StackOverflow", "social", 63_500_000, 6_020_000, 10.5),
    "JR": _info("JR", "LiveJournal", "social", 69_000_000, 4_850_000, 14.2),
    "AM": _info("AM", "ogbn-products (Amazon)", "e-commerce", 123_000_000, 2_450_000, 50.5),
    "TB": _info("TB", "Taobao", "e-commerce", 400_000_000, 230_000, 1744.0),
}

#: Presentation order used by the paper's figures (per-domain, ascending edges).
DATASET_ORDER: List[str] = ["PH", "AX", "CL", "YL", "FR", "MV", "RD", "SO", "JR", "AM", "TB"]

#: Small/medium/large grouping used in the motivation analysis (Section III-A).
SMALL_EDGE_THRESHOLD = 500_000
LARGE_EDGE_THRESHOLD = 10_000_000


def load_dataset(
    key: str, scale: float = DEFAULT_SCALE, seed: Optional[int] = None
) -> COOGraph:
    """Generate the synthetic stand-in for dataset ``key`` at ``scale``.

    Raises ``KeyError`` for unknown dataset keys.
    """
    info = DATASETS[key]
    return power_law_graph(info.spec(scale=scale, seed=seed))


def dataset_table() -> List[Dict[str, object]]:
    """Return Table II as a list of row dictionaries (used by the bench harness)."""
    rows = []
    for key in DATASET_ORDER:
        info = DATASETS[key]
        rows.append(
            {
                "key": info.key,
                "name": info.full_name,
                "category": info.category,
                "num_edges": info.num_edges,
                "num_nodes": info.num_nodes,
                "avg_degree": info.avg_degree,
            }
        )
    return rows


def datasets_by_category(category: str) -> List[DatasetInfo]:
    """Return all datasets belonging to ``category`` in presentation order."""
    return [DATASETS[k] for k in DATASET_ORDER if DATASETS[k].category == category]


def size_class(info: DatasetInfo) -> str:
    """Classify a dataset as small / medium / large by its real edge count."""
    if info.num_edges < SMALL_EDGE_THRESHOLD:
        return "small"
    if info.num_edges < LARGE_EDGE_THRESHOLD:
        return "medium"
    return "large"
