"""Subgraph reindexing: reference hash-map loop and vectorized fast path.

After sampling, the subgraph's original VIDs must be renumbered to a compact
``[0, num_sampled)`` range so the extracted embedding table lines up with the
new indices (Section II-B, Fig. 4b).  The reference implementation walks the
edge list with a hash map; the vectorized fast path reproduces the exact same
first-encounter numbering through a single ``np.unique`` factorization (both
the SCR reindexer and the fast path are verified bit-exact against the
reference — see DESIGN.md, "Reference vs. vectorized fast path").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.sampling import MODE_REFERENCE, MODE_VECTORIZED, SampledSubgraph, check_mode


class ReindexResult:
    """Output of subgraph reindexing.

    Attributes:
        mapping: dict from original VID to new compact VID, in first-seen
            order.  Built lazily from ``original_vids`` when not supplied, so
            the fast path never pays for a dictionary nobody reads.
        edges: the reindexed subgraph edges in COO format (new VIDs).
        original_vids: array such that ``original_vids[new_vid]`` recovers the
            original VID; this is the order embeddings must be gathered in.
    """

    def __init__(
        self,
        mapping: Optional[Dict[int, int]] = None,
        edges: Optional[COOGraph] = None,
        original_vids: Optional[np.ndarray] = None,
    ) -> None:
        self._mapping = mapping
        self.edges = edges
        self.original_vids = original_vids

    @property
    def mapping(self) -> Dict[int, int]:
        """Original-to-new VID dictionary (materialised on first access)."""
        if self._mapping is None:
            self._mapping = dict(
                zip(self.original_vids.tolist(), range(self.original_vids.shape[0]))
            )
        return self._mapping

    @property
    def num_sampled_nodes(self) -> int:
        """Number of distinct vertices in the reindexed subgraph."""
        return int(self.original_vids.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReindexResult(num_sampled_nodes={self.num_sampled_nodes}, "
            f"edges={self.edges!r})"
        )


# ---------------------------------------------------------------------------
# Vectorized building blocks (shared with the SCR kernel)
# ---------------------------------------------------------------------------
def interleave_endpoints(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Endpoint stream in reindexer scan order: ``dst[0], src[0], dst[1], ...``.

    This is the order the hardware reindexer (and the reference loop) assigns
    new IDs in, so factorizing this stream reproduces the same numbering.
    """
    src = np.asarray(src, dtype=VID_DTYPE)
    dst = np.asarray(dst, dtype=VID_DTYPE)
    out = np.empty(src.shape[0] * 2, dtype=VID_DTYPE)
    out[0::2] = dst
    out[1::2] = src
    return out


def factorize_first_occurrence(
    values: np.ndarray, num_vids: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense codes in first-appearance order; returns ``(codes, originals)``.

    ``codes[i]`` is the rank of ``values[i]`` among the distinct values ordered
    by first appearance, and ``originals[code]`` recovers the value — exactly
    the numbering a first-encounter hash map produces, without a per-element
    loop.  When ``num_vids`` bounds the value range (VIDs live in
    ``[0, num_vids)``) and the bound is not wildly larger than the input, an
    O(n) scatter through a lookup table is used; otherwise a sort-based
    ``np.unique`` factorization.  Both paths are bit-identical.
    """
    values = np.asarray(values, dtype=VID_DTYPE)
    n = int(values.shape[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=VID_DTYPE)
    if num_vids is not None and 0 < num_vids <= max(4 * n, 1024):
        # Scatter positions in reverse: with duplicate indices the last write
        # wins, so each VID's slot ends up holding its *first* occurrence.
        positions = np.arange(n, dtype=np.int64)
        first_pos = np.empty(num_vids, dtype=np.int64)
        first_pos[values[::-1]] = positions[::-1]
        is_first = first_pos[values] == positions
        originals = values[is_first]
        code_lut = np.empty(num_vids, dtype=np.int64)
        code_lut[originals] = np.arange(originals.shape[0], dtype=np.int64)
        return code_lut[values], originals
    uniques, first_index, inverse = np.unique(values, return_index=True, return_inverse=True)
    appearance = np.argsort(first_index, kind="stable")
    rank = np.empty(appearance.shape[0], dtype=np.int64)
    rank[appearance] = np.arange(appearance.shape[0], dtype=np.int64)
    return rank[inverse.ravel()], uniques[appearance]


def reindex_mapping_sizes(codes: np.ndarray) -> np.ndarray:
    """Mapping occupancy seen by each endpoint lookup, in closed form.

    ``sizes[i]`` is the number of mappings resident when endpoint ``i`` is
    looked up (at least 1: an empty SRAM bank still takes one scan).  Because
    ``codes`` are first-appearance ranks, the occupancy before position ``i``
    is ``max(codes[:i]) + 1``.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    running_max = np.maximum.accumulate(codes)
    sizes = np.empty(codes.shape[0], dtype=np.int64)
    sizes[0] = 1
    sizes[1:] = running_max[:-1] + 1
    return sizes


# ---------------------------------------------------------------------------
# Reindexing entry points
# ---------------------------------------------------------------------------
def reindex_edges_reference(
    src: np.ndarray, dst: np.ndarray, mapping: Dict[int, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-edge hash-map walk assigning IDs in (dst, src) scan order.

    The verification reference the vectorized factorization and the SCR
    kernel are both held bit-exact against; ``mapping`` is filled in place.
    """
    new_src = np.empty_like(src)
    new_dst = np.empty_like(dst)
    for i in range(src.shape[0]):
        for arr, out in ((dst, new_dst), (src, new_src)):
            vid = int(arr[i])
            if vid not in mapping:
                mapping[vid] = len(mapping)
            out[i] = mapping[vid]
    return new_src, new_dst


def reindex_edges(
    src: np.ndarray,
    dst: np.ndarray,
    mapping: Optional[Dict[int, int]] = None,
    mode: str = MODE_VECTORIZED,
    num_vids: Optional[int] = None,
) -> ReindexResult:
    """Renumber the VIDs of an edge list to a dense ``[0, n)`` range.

    New IDs are assigned in first-encounter order while scanning the
    destination array then the source array edge by edge — the same order the
    hardware reindexer processes the uni-random selection output, so results
    are directly comparable.  Both modes produce bit-identical results; a
    pre-populated ``mapping`` forces the reference walk (the fast path only
    factorizes from an empty mapping).  ``num_vids`` optionally bounds the
    VID range, enabling the O(n) lookup-table factorization.
    """
    check_mode(mode)
    src = np.asarray(src, dtype=VID_DTYPE)
    dst = np.asarray(dst, dtype=VID_DTYPE)
    if mode == MODE_REFERENCE or mapping:
        if mapping is None:
            mapping = {}
        new_src, new_dst = reindex_edges_reference(src, dst, mapping)
        original = np.empty(len(mapping), dtype=VID_DTYPE)
        for vid, new in mapping.items():
            original[new] = vid
    else:
        codes, original = factorize_first_occurrence(
            interleave_endpoints(src, dst), num_vids=num_vids
        )
        new_dst = codes[0::2].astype(VID_DTYPE, copy=False)
        new_src = codes[1::2].astype(VID_DTYPE, copy=False)
        if mapping is not None:
            # The caller's dict must observe the assignment (legacy contract).
            mapping.update(zip(original.tolist(), range(original.shape[0])))
    num_nodes = int(original.shape[0])
    edges = COOGraph(
        src=new_src,
        dst=new_dst,
        num_nodes=max(num_nodes, 1),
        name="reindexed",
        validate_vids=False,
    )
    return ReindexResult(mapping=mapping, edges=edges, original_vids=original)


def reindex_subgraph(sample: SampledSubgraph, mode: str = MODE_VECTORIZED) -> ReindexResult:
    """Reindex all layers of a sampled subgraph into one compact edge list."""
    combined = sample.all_edges()
    return reindex_edges(combined.src, combined.dst, mode=mode, num_vids=combined.num_nodes)


def gather_embeddings(embeddings: np.ndarray, result: ReindexResult) -> np.ndarray:
    """Extract the embedding rows of the sampled vertices, in new-VID order.

    ``embeddings`` is the original embedding table indexed by original VID;
    the returned table is indexed by the compact reindexed VID.
    """
    return embeddings[result.original_vids]
