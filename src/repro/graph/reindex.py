"""Reference subgraph reindexing.

After sampling, the subgraph's original VIDs must be renumbered to a compact
``[0, num_sampled)`` range so the extracted embedding table lines up with the
new indices (Section II-B, Fig. 4b).  This module provides the hash-map-based
reference implementation the SCR reindexer is verified against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.sampling import SampledSubgraph


@dataclass
class ReindexResult:
    """Output of subgraph reindexing.

    Attributes:
        mapping: dict from original VID to new compact VID, in first-seen order.
        edges: the reindexed subgraph edges in COO format (new VIDs).
        original_vids: array such that ``original_vids[new_vid]`` recovers the
            original VID; this is the order embeddings must be gathered in.
    """

    mapping: Dict[int, int]
    edges: COOGraph
    original_vids: np.ndarray

    @property
    def num_sampled_nodes(self) -> int:
        """Number of distinct vertices in the reindexed subgraph."""
        return int(self.original_vids.shape[0])


def reindex_edges(
    src: np.ndarray,
    dst: np.ndarray,
    mapping: Optional[Dict[int, int]] = None,
) -> ReindexResult:
    """Renumber the VIDs of an edge list to a dense ``[0, n)`` range.

    New IDs are assigned in first-encounter order while scanning the
    destination array then the source array edge by edge — the same order the
    hardware reindexer processes the uni-random selection output, so results
    are directly comparable.
    """
    if mapping is None:
        mapping = {}
    src = np.asarray(src, dtype=VID_DTYPE)
    dst = np.asarray(dst, dtype=VID_DTYPE)
    new_src = np.empty_like(src)
    new_dst = np.empty_like(dst)
    for i in range(src.shape[0]):
        for arr, out in ((dst, new_dst), (src, new_src)):
            vid = int(arr[i])
            if vid not in mapping:
                mapping[vid] = len(mapping)
            out[i] = mapping[vid]
    original = np.empty(len(mapping), dtype=VID_DTYPE)
    for vid, new in mapping.items():
        original[new] = vid
    num_nodes = len(mapping)
    edges = COOGraph(src=new_src, dst=new_dst, num_nodes=max(num_nodes, 1), name="reindexed")
    return ReindexResult(mapping=mapping, edges=edges, original_vids=original)


def reindex_subgraph(sample: SampledSubgraph) -> ReindexResult:
    """Reindex all layers of a sampled subgraph into one compact edge list."""
    combined = sample.all_edges()
    return reindex_edges(combined.src, combined.dst)


def gather_embeddings(embeddings: np.ndarray, result: ReindexResult) -> np.ndarray:
    """Extract the embedding rows of the sampled vertices, in new-VID order.

    ``embeddings`` is the original embedding table indexed by original VID;
    the returned table is indexed by the compact reindexed VID.
    """
    return embeddings[result.original_vids]
