"""Compressed sparse column (CSC) graph container.

CSC is the vertex-centric structure GNN frameworks traverse during sampling
and aggregation: a *pointer array* indexed by destination VID and an *index
array* of source VIDs (Section II-A, Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.graph.coo import VID_DTYPE


@dataclass
class CSCGraph:
    """A vertex-centric graph in compressed sparse column layout.

    Attributes:
        indptr: pointer array of length ``num_nodes + 1``; ``indptr[v]`` is the
            offset into ``indices`` where destination ``v``'s incoming edges
            start.
        indices: index array of source VIDs, grouped by destination.
        num_nodes: number of vertices.
        name: optional dataset name.
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_nodes: int
    name: str = ""

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=VID_DTYPE).ravel()
        self.indices = np.asarray(self.indices, dtype=VID_DTYPE).ravel()
        if self.indptr.shape[0] != self.num_nodes + 1:
            raise ValueError(
                f"indptr must have length num_nodes+1={self.num_nodes + 1}, "
                f"got {self.indptr.shape[0]}"
            )
        if self.indptr.size and int(self.indptr[-1]) != self.indices.shape[0]:
            raise ValueError(
                f"indptr[-1]={int(self.indptr[-1])} does not match "
                f"len(indices)={self.indices.shape[0]}"
            )
        if self.indptr.size and np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")

    # ------------------------------------------------------------------ basic
    @property
    def num_edges(self) -> int:
        """Number of edges stored in the index array."""
        return int(self.indices.shape[0])

    @property
    def avg_degree(self) -> float:
        """Average in-degree per destination vertex."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def __len__(self) -> int:
        return self.num_edges

    # --------------------------------------------------------------- queries
    def in_neighbors(self, dst: int) -> np.ndarray:
        """Return the source VIDs of all edges arriving at ``dst``."""
        if dst < 0 or dst >= self.num_nodes:
            raise IndexError(f"destination VID {dst} out of range")
        start = int(self.indptr[dst])
        end = int(self.indptr[dst + 1])
        return self.indices[start:end]

    def in_degree(self, dst: int) -> int:
        """In-degree of a single destination vertex."""
        if dst < 0 or dst >= self.num_nodes:
            raise IndexError(f"destination VID {dst} out of range")
        return int(self.indptr[dst + 1] - self.indptr[dst])

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for every destination vertex."""
        return np.diff(self.indptr)

    def in_degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        """In-degrees of a batch of destination vertices (one indptr slice)."""
        nodes = np.asarray(nodes, dtype=VID_DTYPE)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise IndexError("destination VID out of range")
        return self.indptr[nodes + 1] - self.indptr[nodes]

    def in_neighbors_batch(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Gather the in-neighbour lists of many destinations at once.

        Returns ``(flat, offsets)`` where ``flat`` concatenates the neighbour
        arrays of ``nodes`` in order and ``offsets`` (length ``len(nodes)+1``)
        delimits them: node ``i``'s neighbours are
        ``flat[offsets[i]:offsets[i+1]]``.  The gather is pure ``indptr``
        arithmetic (no per-node Python loop): each segment's positions are the
        segment start repeated plus a running within-segment offset.
        """
        nodes = np.asarray(nodes, dtype=VID_DTYPE)
        degs = self.in_degrees_of(nodes)
        offsets = np.zeros(nodes.shape[0] + 1, dtype=VID_DTYPE)
        np.cumsum(degs, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return np.empty(0, dtype=VID_DTYPE), offsets
        starts = self.indptr[nodes]
        flat_idx = np.repeat(starts - offsets[:-1], degs) + np.arange(total, dtype=VID_DTYPE)
        return self.indices[flat_idx], offsets

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(src, dst)`` pairs in destination-major order."""
        for dst in range(self.num_nodes):
            for src in self.in_neighbors(dst).tolist():
                yield int(src), dst

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays in destination-major order."""
        dst = np.repeat(np.arange(self.num_nodes, dtype=VID_DTYPE), self.in_degrees())
        return self.indices.copy(), dst

    def nbytes(self) -> int:
        """Approximate in-memory size of the pointer + index arrays in bytes."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    def validate(self) -> None:
        """Raise ``ValueError`` if the structure is internally inconsistent."""
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.num_nodes):
            raise ValueError("index array contains out-of-range source VIDs")
        if int(self.indptr[0]) != 0:
            raise ValueError("indptr must start at 0")

    def copy(self) -> "CSCGraph":
        """Deep copy of the pointer and index arrays."""
        return CSCGraph(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            num_nodes=self.num_nodes,
            name=self.name,
        )

    @classmethod
    def empty(cls, num_nodes: int, name: str = "") -> "CSCGraph":
        """Create a CSC graph with no edges."""
        return cls(
            indptr=np.zeros(num_nodes + 1, dtype=VID_DTYPE),
            indices=np.empty(0, dtype=VID_DTYPE),
            num_nodes=num_nodes,
            name=name,
        )
