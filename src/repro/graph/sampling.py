"""Neighbour sampling (unique random selection): reference and fast paths.

GNN preprocessing samples a fixed number ``k`` of unique neighbours per node
(node-wise) or per layer (layer-wise) before inference, bounding the node
explosion of multi-hop traversal (Section II-B).

Every sampler exists in two functionally identical execution modes:

* ``"reference"`` — the per-node Python loop the accelerated implementations
  are verified against;
* ``"vectorized"`` — a NumPy fast path that gathers whole frontiers through
  ``CSCGraph.in_neighbors_batch`` and replaces the per-node loops with
  segment arithmetic.

Both modes follow the same *priority-draw* rule and consume the RNG stream in
the same order, so their outputs are bit-identical (see DESIGN.md,
"Reference vs. vectorized fast path"):

* a node's candidate set is its unique in-neighbour array, ascending;
* if the candidate set has at most ``k`` entries it is taken whole and the
  RNG is untouched;
* otherwise one uniform priority per candidate is drawn (in ascending
  candidate order) and the ``k`` candidates with the smallest priorities are
  kept, emitted in ascending VID order.

The equivalence relies on NumPy's ``Generator.random`` producing the same
stream whether drawn in one flat call or in consecutive per-node calls of the
same total length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.csc import CSCGraph

#: Execution-mode names shared by the samplers, kernels and pipeline.
MODE_REFERENCE = "reference"
MODE_VECTORIZED = "vectorized"
SAMPLING_MODES = (MODE_REFERENCE, MODE_VECTORIZED)


def check_mode(mode: str) -> str:
    """Validate an execution-mode name and return it."""
    if mode not in SAMPLING_MODES:
        raise ValueError(f"unknown execution mode {mode!r}; expected one of {SAMPLING_MODES}")
    return mode


@dataclass
class SelectionStats:
    """Work counters of one multi-hop selection (drives cycle accounting).

    Attributes:
        arrays: neighbour arrays processed (frontier nodes with >= 1 neighbour).
        draws: unique neighbour draws performed (``min(k, unique degree)`` per
            processed array).
    """

    arrays: int = 0
    draws: int = 0


@dataclass
class SampledSubgraph:
    """The result of multi-hop neighbourhood sampling.

    Attributes:
        batch_nodes: the seed (batch) VIDs, in the original graph's numbering.
        layers: one COO edge list per GNN layer, outermost hop first, with
            original VIDs.  ``layers[i]`` holds the edges traversed at hop
            ``num_layers - i`` (matching the paper's layer-1-first inference).
        sampled_nodes: all distinct original VIDs touched by the sample,
            including the batch nodes.
        num_nodes: node count of the graph the sample was drawn from (kept so
            degenerate zero-layer samples still carry the VID range).
    """

    batch_nodes: np.ndarray
    layers: List[COOGraph] = field(default_factory=list)
    sampled_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=VID_DTYPE))
    num_nodes: int = 0

    @property
    def num_layers(self) -> int:
        """Number of sampled hops."""
        return len(self.layers)

    @property
    def num_sampled_nodes(self) -> int:
        """Number of distinct vertices in the sample."""
        return int(self.sampled_nodes.shape[0])

    @property
    def num_sampled_edges(self) -> int:
        """Total number of edges across all sampled layers."""
        return int(sum(layer.num_edges for layer in self.layers))

    def all_edges(self) -> COOGraph:
        """Concatenate every layer's edges into one COO graph (original VIDs)."""
        num_nodes = int(self.layers[0].num_nodes) if self.layers else int(self.num_nodes)
        if not self.layers:
            return COOGraph(
                src=np.empty(0, dtype=VID_DTYPE),
                dst=np.empty(0, dtype=VID_DTYPE),
                num_nodes=num_nodes,
            )
        src = np.concatenate([layer.src for layer in self.layers])
        dst = np.concatenate([layer.dst for layer in self.layers])
        return COOGraph(src=src, dst=dst, num_nodes=num_nodes, validate_vids=False)


# ---------------------------------------------------------------------------
# The shared priority-draw rule
# ---------------------------------------------------------------------------
def draw_k_smallest(candidates: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Select ``k`` of the ``candidates`` by priority draw; ascending output.

    ``candidates`` must be unique and ascending.  When the set already fits in
    ``k`` it is returned whole without consuming the RNG; otherwise one
    priority per candidate is drawn and the ``k`` smallest win (the random
    64-bit priorities are almost surely distinct, so the winning set does not
    depend on the sort algorithm).
    """
    candidates = np.asarray(candidates, dtype=VID_DTYPE)
    if candidates.shape[0] <= k:
        return candidates.copy()
    priorities = rng.random(candidates.shape[0])
    winners = np.argsort(priorities)[:k]
    return candidates[np.sort(winners)]


def sample_neighbors(
    graph: CSCGraph,
    node: int,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample up to ``k`` unique in-neighbours of ``node`` uniformly at random.

    If the node has fewer than ``k`` neighbours, all of them are returned.
    Uniqueness is guaranteed (priority draw over the unique neighbour set).
    """
    unique = np.unique(graph.in_neighbors(node))
    return draw_k_smallest(unique, k, rng)


# ---------------------------------------------------------------------------
# Per-layer cores (reference loop vs. vectorized segment arithmetic)
# ---------------------------------------------------------------------------
def _node_layer_reference(
    graph: CSCGraph, frontier: np.ndarray, k: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """One node-wise hop, per-node loop.  Returns (src, dst, arrays, draws)."""
    layer_src: List[int] = []
    layer_dst: List[int] = []
    arrays = 0
    draws = 0
    for node in frontier.tolist():
        unique = np.unique(graph.in_neighbors(int(node)))
        if unique.shape[0] == 0:
            continue
        arrays += 1
        take = min(k, int(unique.shape[0]))
        draws += take
        picked = draw_k_smallest(unique, k, rng)
        for src in picked.tolist():
            layer_src.append(int(src))
            layer_dst.append(int(node))
    return (
        np.array(layer_src, dtype=VID_DTYPE),
        np.array(layer_dst, dtype=VID_DTYPE),
        arrays,
        draws,
    )


def _vid_shift(num_nodes: int) -> int:
    """Bits needed to pack a VID below a segment id in one 64-bit key."""
    return max(int(num_nodes).bit_length(), 1)


def _unique_per_segment(
    flat: np.ndarray, offsets: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate each segment of a concatenated neighbour gather.

    Returns ``(values, segments, unique_degrees)``: the per-segment unique
    values in (segment-major, ascending-value) order, the segment id of each
    value, and the unique-degree of every segment.  Values and segment ids
    are packed into single 64-bit keys so one single-key sort (much faster
    than a two-key lexsort) orders and deduplicates everything at once.
    """
    num_segments = int(offsets.shape[0] - 1)
    degs = np.diff(offsets)
    if flat.shape[0] == 0:
        return (
            np.empty(0, dtype=VID_DTYPE),
            np.empty(0, dtype=np.int64),
            np.zeros(num_segments, dtype=np.int64),
        )
    shift = _vid_shift(num_nodes)
    seg = np.repeat(np.arange(num_segments, dtype=np.int64), degs)
    keys = (seg << shift) | flat.astype(np.int64, copy=False)
    # CSCs built by the pipeline store each neighbour list ascending, making
    # the packed keys already sorted; only sort when they are not.
    if keys.shape[0] > 1 and not bool((keys[1:] >= keys[:-1]).all()):
        keys = np.sort(keys)
    keep = np.ones(keys.shape[0], dtype=bool)
    keep[1:] = keys[1:] != keys[:-1]
    unique_keys = keys[keep]
    values = (unique_keys & ((1 << shift) - 1)).astype(VID_DTYPE)
    segments = unique_keys >> shift
    unique_degrees = np.bincount(segments, minlength=num_segments)
    return values, segments, unique_degrees


def _node_layer_vectorized(
    graph: CSCGraph, frontier: np.ndarray, k: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """One node-wise hop over the whole frontier with array arithmetic.

    Bit-identical to :func:`_node_layer_reference`: uniques per frontier node
    are enumerated in the same (node-major, ascending) order, priorities are
    drawn from the same RNG stream, and stable sorting reproduces the same
    tie-breaking.
    """
    flat, offsets = graph.in_neighbors_batch(frontier)
    values, segments, unique_degrees = _unique_per_segment(flat, offsets, graph.num_nodes)
    arrays = int((unique_degrees > 0).sum())
    draws = int(np.minimum(unique_degrees, k).sum())
    if values.shape[0] == 0:
        return np.empty(0, dtype=VID_DTYPE), np.empty(0, dtype=VID_DTYPE), arrays, draws

    oversized = unique_degrees > k
    needs_draw = oversized[segments]
    draw_positions = np.flatnonzero(needs_draw)
    # One flat priority draw covers every oversized segment, assigned in the
    # same (node-major, ascending-candidate) order the reference loop uses;
    # segments that fit in k are taken whole and never touch the RNG.
    num_draw_entries = draw_positions.shape[0]
    priorities = rng.random(num_draw_entries)
    draw_seg = segments[draw_positions]
    # Order candidates by (segment, priority) without a slow two-key float
    # lexsort: rank the priorities globally (they are almost surely distinct)
    # and pack segment + rank into one integer key.
    order = np.argsort(priorities)
    ranks = np.empty(num_draw_entries, dtype=np.int64)
    ranks[order] = np.arange(num_draw_entries, dtype=np.int64)
    rank_shift = max(int(num_draw_entries).bit_length(), 1)
    keys = np.sort((draw_seg << rank_shift) | ranks)
    grouped = keys >> rank_shift
    is_start = np.ones(grouped.shape[0], dtype=bool)
    is_start[1:] = grouped[1:] != grouped[:-1]
    start_of = np.maximum.accumulate(np.where(is_start, np.arange(grouped.shape[0]), 0))
    in_first_k = (np.arange(grouped.shape[0]) - start_of) < k
    winners = order[(keys & ((1 << rank_shift) - 1))[in_first_k]]

    # values/segments are already (node-major, ascending-source); flipping the
    # winners back on in a selection mask emits in that order with no sort.
    selected = ~needs_draw
    selected[draw_positions[winners]] = True
    src = values[selected]
    dst = frontier[segments[selected]].astype(VID_DTYPE, copy=False)
    return src, dst, arrays, draws


# ---------------------------------------------------------------------------
# Multi-hop samplers
# ---------------------------------------------------------------------------
def _sorted_unique(values: np.ndarray, num_nodes: int) -> np.ndarray:
    """Sorted distinct VIDs, by boolean scatter or ``np.unique``.

    The O(n + N) scatter wins when the VID range is comparable to the input
    size (the dense frontiers of the pipeline); for small inputs against a
    huge graph it would allocate and scan O(num_nodes) per call, so sparse
    inputs fall back to ``np.unique``.  Both produce the identical array.
    """
    if values.size == 0:
        return np.empty(0, dtype=VID_DTYPE)
    if num_nodes <= 4 * values.size + 1024:
        mask = np.zeros(num_nodes, dtype=bool)
        mask[values] = True
        return np.flatnonzero(mask).astype(VID_DTYPE, copy=False)
    return np.unique(values).astype(VID_DTYPE, copy=False)


def node_wise_sample_with_stats(
    graph: CSCGraph,
    batch_nodes: Sequence[int],
    k: int,
    num_layers: int,
    seed: int = 0,
    mode: str = MODE_VECTORIZED,
) -> Tuple[SampledSubgraph, SelectionStats]:
    """Node-wise sampling plus the work counters the UPE kernel charges for."""
    check_mode(mode)
    rng = np.random.default_rng(seed)
    batch = np.asarray(list(batch_nodes), dtype=VID_DTYPE)
    frontier = _sorted_unique(batch, graph.num_nodes)
    layers: List[COOGraph] = []
    touched: List[np.ndarray] = [frontier]
    stats = SelectionStats()
    layer_fn = _node_layer_reference if mode == MODE_REFERENCE else _node_layer_vectorized

    for _ in range(num_layers):
        src, dst, arrays, draws = layer_fn(graph, frontier, k, rng)
        stats.arrays += arrays
        stats.draws += draws
        layers.append(COOGraph(src=src, dst=dst, num_nodes=graph.num_nodes, validate_vids=False))
        touched.append(src)
        frontier = _sorted_unique(src, graph.num_nodes)
        if frontier.size == 0:
            break

    sampled = _sorted_unique(np.concatenate(touched), graph.num_nodes)
    # Present layers outermost-hop first, matching the inference order.
    sample = SampledSubgraph(
        batch_nodes=batch,
        layers=list(reversed(layers)),
        sampled_nodes=sampled,
        num_nodes=graph.num_nodes,
    )
    return sample, stats


def node_wise_sample(
    graph: CSCGraph,
    batch_nodes: Sequence[int],
    k: int,
    num_layers: int,
    seed: int = 0,
    mode: str = MODE_VECTORIZED,
) -> SampledSubgraph:
    """Node-wise neighbourhood sampling (GraphSAGE-style, Fig. 4a).

    Starting from the batch nodes, each hop samples ``k`` unique neighbours of
    every frontier node; the sampled neighbours become the next frontier.
    """
    sample, _ = node_wise_sample_with_stats(
        graph, batch_nodes, k, num_layers, seed=seed, mode=mode
    )
    return sample


def layer_wise_sample(
    graph: CSCGraph,
    batch_nodes: Sequence[int],
    k: int,
    num_layers: int,
    seed: int = 0,
    mode: str = MODE_VECTORIZED,
) -> SampledSubgraph:
    """Layer-wise sampling (FastGCN-style): ``k`` nodes per layer, aggregated.

    All frontier neighbour arrays of a layer are pooled into one candidate set
    and ``k`` unique nodes are drawn from the pool (Section V-A control path).
    Edges are emitted source-major with destinations ascending within a
    source, identically in both execution modes.
    """
    check_mode(mode)
    rng = np.random.default_rng(seed)
    batch = np.asarray(list(batch_nodes), dtype=VID_DTYPE)
    frontier = _sorted_unique(batch, graph.num_nodes)
    layers: List[COOGraph] = []
    touched: List[np.ndarray] = [frontier]

    for _ in range(num_layers):
        if mode == MODE_REFERENCE:
            cand_src: List[int] = []
            cand_dst: List[int] = []
            for node in frontier.tolist():
                unique = np.unique(graph.in_neighbors(int(node)))
                for src in unique.tolist():
                    cand_src.append(int(src))
                    cand_dst.append(int(node))
            values = np.array(cand_src, dtype=VID_DTYPE)
            dsts = np.array(cand_dst, dtype=VID_DTYPE)
        else:
            flat, offsets = graph.in_neighbors_batch(frontier)
            values, segments, _ = _unique_per_segment(flat, offsets, graph.num_nodes)
            dsts = frontier[segments] if segments.size else np.empty(0, dtype=VID_DTYPE)
        if values.size == 0:
            break
        pool = _sorted_unique(values, graph.num_nodes)
        chosen = draw_k_smallest(pool, k, rng)
        keep = np.isin(values, chosen)
        src = values[keep]
        dst = dsts[keep]
        # Emit source-major with destinations ascending within a source.
        shift = _vid_shift(graph.num_nodes)
        keys = np.sort((src.astype(np.int64, copy=False) << shift) | dst)
        layers.append(
            COOGraph(
                src=(keys >> shift).astype(VID_DTYPE, copy=False),
                dst=(keys & ((1 << shift) - 1)).astype(VID_DTYPE, copy=False),
                num_nodes=graph.num_nodes,
                validate_vids=False,
            )
        )
        touched.append(chosen)
        frontier = chosen

    sampled = _sorted_unique(np.concatenate(touched), graph.num_nodes)
    layers = list(reversed(layers))
    return SampledSubgraph(
        batch_nodes=batch, layers=layers, sampled_nodes=sampled, num_nodes=graph.num_nodes
    )


def expected_sampled_nodes(batch_size: int, k: int, num_layers: int) -> int:
    """Upper bound on sampled node count: ``b * (k^(l+1) - 1) / (k - 1)``.

    The paper's cost model (Table I) uses the related total-selection count
    ``s = b * (k^(l+1) - 1)``; this helper gives the geometric-series bound on
    distinct nodes, useful for sanity checks and memory provisioning.
    """
    if k <= 1:
        return batch_size * (num_layers + 1)
    return int(batch_size * (k ** (num_layers + 1) - 1) // (k - 1))
