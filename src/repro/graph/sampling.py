"""Reference neighbour sampling (unique random selection).

GNN preprocessing samples a fixed number ``k`` of unique neighbours per node
(node-wise) or per layer (layer-wise) before inference, bounding the node
explosion of multi-hop traversal (Section II-B).  These are the software
reference implementations every accelerated sampler is verified against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.csc import CSCGraph


@dataclass
class SampledSubgraph:
    """The result of multi-hop neighbourhood sampling.

    Attributes:
        batch_nodes: the seed (batch) VIDs, in the original graph's numbering.
        layers: one COO edge list per GNN layer, outermost hop first, with
            original VIDs.  ``layers[i]`` holds the edges traversed at hop
            ``num_layers - i`` (matching the paper's layer-1-first inference).
        sampled_nodes: all distinct original VIDs touched by the sample,
            including the batch nodes.
    """

    batch_nodes: np.ndarray
    layers: List[COOGraph] = field(default_factory=list)
    sampled_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=VID_DTYPE))

    @property
    def num_layers(self) -> int:
        """Number of sampled hops."""
        return len(self.layers)

    @property
    def num_sampled_nodes(self) -> int:
        """Number of distinct vertices in the sample."""
        return int(self.sampled_nodes.shape[0])

    @property
    def num_sampled_edges(self) -> int:
        """Total number of edges across all sampled layers."""
        return int(sum(layer.num_edges for layer in self.layers))

    def all_edges(self) -> COOGraph:
        """Concatenate every layer's edges into one COO graph (original VIDs)."""
        if not self.layers:
            return COOGraph(
                src=np.empty(0, dtype=VID_DTYPE),
                dst=np.empty(0, dtype=VID_DTYPE),
                num_nodes=int(self.layers[0].num_nodes) if self.layers else 0,
            )
        src = np.concatenate([layer.src for layer in self.layers])
        dst = np.concatenate([layer.dst for layer in self.layers])
        return COOGraph(src=src, dst=dst, num_nodes=self.layers[0].num_nodes)


def sample_neighbors(
    graph: CSCGraph,
    node: int,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample up to ``k`` unique in-neighbours of ``node`` uniformly at random.

    If the node has fewer than ``k`` neighbours, all of them are returned.
    Uniqueness is guaranteed (sampling without replacement).
    """
    neighbors = graph.in_neighbors(node)
    unique = np.unique(neighbors)
    if unique.shape[0] <= k:
        return unique.copy()
    return rng.choice(unique, size=k, replace=False)


def node_wise_sample(
    graph: CSCGraph,
    batch_nodes: Sequence[int],
    k: int,
    num_layers: int,
    seed: int = 0,
) -> SampledSubgraph:
    """Node-wise neighbourhood sampling (GraphSAGE-style, Fig. 4a).

    Starting from the batch nodes, each hop samples ``k`` unique neighbours of
    every frontier node; the sampled neighbours become the next frontier.
    """
    rng = np.random.default_rng(seed)
    batch = np.asarray(list(batch_nodes), dtype=VID_DTYPE)
    frontier = np.unique(batch)
    layers: List[COOGraph] = []
    seen = set(frontier.tolist())

    for _ in range(num_layers):
        layer_src: List[int] = []
        layer_dst: List[int] = []
        next_frontier: List[int] = []
        for node in frontier.tolist():
            picked = sample_neighbors(graph, int(node), k, rng)
            for src in picked.tolist():
                layer_src.append(int(src))
                layer_dst.append(int(node))
                next_frontier.append(int(src))
                seen.add(int(src))
        layers.append(
            COOGraph(
                src=np.array(layer_src, dtype=VID_DTYPE),
                dst=np.array(layer_dst, dtype=VID_DTYPE),
                num_nodes=graph.num_nodes,
            )
        )
        frontier = np.unique(np.array(next_frontier, dtype=VID_DTYPE)) if next_frontier else np.empty(
            0, dtype=VID_DTYPE
        )
        if frontier.size == 0:
            break

    sampled = np.array(sorted(seen), dtype=VID_DTYPE)
    # Present layers outermost-hop first, matching the inference order.
    layers = list(reversed(layers))
    return SampledSubgraph(batch_nodes=batch, layers=layers, sampled_nodes=sampled)


def layer_wise_sample(
    graph: CSCGraph,
    batch_nodes: Sequence[int],
    k: int,
    num_layers: int,
    seed: int = 0,
) -> SampledSubgraph:
    """Layer-wise sampling (FastGCN-style): ``k`` nodes per layer, aggregated.

    All frontier neighbour arrays of a layer are pooled into one candidate set
    and ``k`` unique nodes are drawn from the pool (Section V-A control path).
    """
    rng = np.random.default_rng(seed)
    batch = np.asarray(list(batch_nodes), dtype=VID_DTYPE)
    frontier = np.unique(batch)
    layers: List[COOGraph] = []
    seen = set(frontier.tolist())

    for _ in range(num_layers):
        candidates: List[int] = []
        incoming: Dict[int, List[int]] = {}
        for node in frontier.tolist():
            neigh = np.unique(graph.in_neighbors(int(node)))
            for src in neigh.tolist():
                candidates.append(int(src))
                incoming.setdefault(int(src), []).append(int(node))
        if not candidates:
            break
        pool = np.unique(np.array(candidates, dtype=VID_DTYPE))
        take = min(k, pool.shape[0])
        chosen = rng.choice(pool, size=take, replace=False)
        layer_src: List[int] = []
        layer_dst: List[int] = []
        for src in chosen.tolist():
            for dst in incoming[int(src)]:
                layer_src.append(int(src))
                layer_dst.append(int(dst))
            seen.add(int(src))
        layers.append(
            COOGraph(
                src=np.array(layer_src, dtype=VID_DTYPE),
                dst=np.array(layer_dst, dtype=VID_DTYPE),
                num_nodes=graph.num_nodes,
            )
        )
        frontier = np.unique(chosen.astype(VID_DTYPE))

    sampled = np.array(sorted(seen), dtype=VID_DTYPE)
    layers = list(reversed(layers))
    return SampledSubgraph(batch_nodes=batch, layers=layers, sampled_nodes=sampled)


def expected_sampled_nodes(batch_size: int, k: int, num_layers: int) -> int:
    """Upper bound on sampled node count: ``b * (k^(l+1) - 1) / (k - 1)``.

    The paper's cost model (Table I) uses the related total-selection count
    ``s = b * (k^(l+1) - 1)``; this helper gives the geometric-series bound on
    distinct nodes, useful for sanity checks and memory provisioning.
    """
    if k <= 1:
        return batch_size * (num_layers + 1)
    return int(batch_size * (k ** (num_layers + 1) - 1) // (k - 1))
