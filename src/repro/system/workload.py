"""Workload profiles: everything a performance model needs to know about a run.

A :class:`WorkloadProfile` captures the graph characteristics (node/edge count,
average degree), the GNN hyper-parameters (layers, ``k``, batch size, feature
dimensionality) and the serving context (fraction of the graph updated since
the previous pass).  Profiles can be built from the Table II dataset registry
at full paper scale — which is how the headline benchmarks reproduce the
paper's figures — or from an in-memory synthetic graph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.cost_model import WorkloadParams
from repro.graph.coo import COOGraph
from repro.graph.datasets import DATASETS, DatasetInfo

#: Bytes per stored edge (two 32-bit VIDs).
BYTES_PER_EDGE: int = 8

#: Bytes per feature element (FP32).
BYTES_PER_FEATURE: int = 4

#: Quality tiers a request can be served at.  ``QUALITY_FULL`` is the
#: as-submitted profile; ``QUALITY_DEGRADED`` marks a profile produced by
#: :meth:`WorkloadProfile.degrade` (fewer sampled neighbours / shallower
#: model) that trades answer quality for latency under overload.
QUALITY_FULL: str = "full"
QUALITY_DEGRADED: str = "degraded"

QUALITY_TIERS = (QUALITY_FULL, QUALITY_DEGRADED)


@dataclass(frozen=True)
class WorkloadProfile:
    """One GNN serving workload.

    Attributes:
        name: dataset or scenario name.
        num_nodes: graph node count.
        num_edges: graph edge count.
        avg_degree: average in-degree.
        num_layers: GNN layer count (sampling hops).
        k: neighbours sampled per node.
        batch_size: inference batch (seed) node count.
        feature_dim: embedding dimensionality.
        update_fraction: fraction of edges that changed since the last
            preprocessing pass (drives incremental-transfer savings).
        model_name: GNN model used for inference.
        quality: service tier this profile executes at (``QUALITY_FULL``
            unless derived through :meth:`degrade`).
    """

    name: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    num_layers: int = 2
    k: int = 10
    batch_size: int = 3000
    feature_dim: int = 128
    update_fraction: float = 0.01
    model_name: str = "graphsage"
    quality: str = QUALITY_FULL

    def __post_init__(self) -> None:
        if self.quality not in QUALITY_TIERS:
            raise ValueError(f"quality must be one of {QUALITY_TIERS}, got {self.quality!r}")

    # ------------------------------------------------------------ quantities
    @property
    def total_selections(self) -> int:
        """Total node selections across all hops (geometric series incl. batch)."""
        if self.k <= 1:
            return self.batch_size * (self.num_layers + 1)
        return int(self.batch_size * (self.k ** (self.num_layers + 1) - 1) // (self.k - 1))

    @property
    def sampled_edges(self) -> int:
        """Edges in the sampled subgraph (one per non-batch selection)."""
        return max(self.total_selections - self.batch_size, 0)

    @property
    def sampled_nodes(self) -> int:
        """Distinct vertices in the sampled subgraph (bounded by the graph)."""
        return min(self.total_selections, self.num_nodes) if self.num_nodes else self.total_selections

    @property
    def per_seed_subgraph_nodes(self) -> int:
        """Distinct vertices of one batch node's sampled neighbourhood."""
        if self.k <= 1:
            per_seed = self.num_layers + 1
        else:
            per_seed = (self.k ** (self.num_layers + 1) - 1) // (self.k - 1)
        return int(min(per_seed, self.num_nodes)) if self.num_nodes else int(per_seed)

    @property
    def graph_bytes(self) -> int:
        """Size of the COO edge array in bytes."""
        return self.num_edges * BYTES_PER_EDGE

    @property
    def update_bytes(self) -> int:
        """Size of the incremental graph update in bytes."""
        return int(self.graph_bytes * self.update_fraction)

    @property
    def csc_bytes(self) -> int:
        """Size of the converted CSC (pointer + index arrays) in bytes."""
        return self.num_edges * BYTES_PER_EDGE // 2 + (self.num_nodes + 1) * 8

    @property
    def subgraph_bytes(self) -> int:
        """Size of the sampled subgraph plus its gathered embeddings in bytes."""
        edges = self.sampled_edges * BYTES_PER_EDGE
        features = self.sampled_nodes * self.feature_dim * BYTES_PER_FEATURE
        return edges + features

    @property
    def embedding_bytes(self) -> int:
        """Size of the full embedding table in bytes."""
        return self.num_nodes * self.feature_dim * BYTES_PER_FEATURE

    # ----------------------------------------------------------- conversions
    def to_cost_params(self) -> WorkloadParams:
        """Convert to the cost-model parameter object (Table I inputs)."""
        return WorkloadParams(
            num_nodes=self.num_nodes,
            num_edges=self.num_edges,
            num_layers=self.num_layers,
            k=self.k,
            batch_size=self.batch_size,
        )

    def with_updates(self, update_fraction: float) -> "WorkloadProfile":
        """Copy with a different incremental-update fraction."""
        return replace(self, update_fraction=update_fraction)

    def with_batch_size(self, batch_size: int) -> "WorkloadProfile":
        """Copy with a different seed-batch size (used by request batching)."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return replace(self, batch_size=batch_size)

    @property
    def batch_key(self) -> tuple:
        """Key under which requests can share one batched preprocessing pass.

        Two workloads are batch-compatible when they agree on everything
        except ``batch_size``: their seed sets can then be concatenated and
        preprocessed together, with the merged pass priced at the summed
        batch size.
        """
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            self.avg_degree,
            self.num_layers,
            self.k,
            self.feature_dim,
            self.update_fraction,
            self.model_name,
            self.quality,
        )

    def degrade(
        self,
        k_factor: float = 0.5,
        min_k: int = 1,
        layer_drop: int = 0,
        min_layers: int = 1,
    ) -> "WorkloadProfile":
        """Cheaper execution profile for the same request (degraded tier).

        Samples fewer neighbours per hop (``k`` scaled by ``k_factor``, never
        below ``min_k``) and optionally drops sampling hops (``layer_drop``,
        never below ``min_layers``).  The result carries
        ``quality=QUALITY_DEGRADED`` — part of :attr:`batch_key` — so degraded
        requests form their own batches and are priced at their own (cheaper)
        cost.  The ``name`` is unchanged: SLO/quota policies resolve degraded
        requests exactly like their full-quality originals.
        """
        if not 0.0 < k_factor <= 1.0:
            raise ValueError("k_factor must be in (0, 1]")
        if min_k < 1:
            raise ValueError("min_k must be >= 1")
        if layer_drop < 0:
            raise ValueError("layer_drop must be >= 0")
        if min_layers < 1:
            raise ValueError("min_layers must be >= 1")
        return replace(
            self,
            k=max(min(min_k, self.k), int(self.k * k_factor)),
            num_layers=max(min(min_layers, self.num_layers), self.num_layers - layer_drop),
            quality=QUALITY_DEGRADED,
        )

    def scaled_edges(self, factor: float) -> "WorkloadProfile":
        """Copy with the edge count (and node count) scaled by ``factor``."""
        return replace(
            self,
            num_edges=max(int(self.num_edges * factor), 1),
            num_nodes=max(int(self.num_nodes * factor), 1),
        )

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_dataset(
        cls,
        key: str,
        num_layers: int = 2,
        k: int = 10,
        batch_size: int = 3000,
        feature_dim: int = 128,
        update_fraction: float = 0.01,
        model_name: str = "graphsage",
    ) -> "WorkloadProfile":
        """Full-paper-scale profile for one of the Table II datasets."""
        info: DatasetInfo = DATASETS[key]
        return cls(
            name=key,
            num_nodes=info.num_nodes,
            num_edges=info.num_edges,
            avg_degree=info.avg_degree,
            num_layers=num_layers,
            k=k,
            batch_size=batch_size,
            feature_dim=feature_dim,
            update_fraction=update_fraction,
            model_name=model_name,
        )

    @classmethod
    def from_graph(
        cls,
        graph: COOGraph,
        num_layers: int = 2,
        k: int = 10,
        batch_size: int = 3000,
        feature_dim: int = 128,
        update_fraction: float = 0.01,
        model_name: str = "graphsage",
        name: Optional[str] = None,
    ) -> "WorkloadProfile":
        """Profile describing an in-memory graph."""
        return cls(
            name=name or graph.name or "graph",
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            avg_degree=graph.avg_degree,
            num_layers=num_layers,
            k=k,
            batch_size=min(batch_size, max(graph.num_nodes, 1)),
            feature_dim=feature_dim,
            update_fraction=update_fraction,
            model_name=model_name,
        )
