"""AGNN-lib: the user-level host software of AutoGNN (Section V-B).

AGNN-lib keeps the DGL-compatible surface (``upload_graph`` mirrors
``update_graph``), profiles incoming graphs, evaluates the cost model against
the staged bitstreams and asks the device to reconfigure only when the
predicted improvement outweighs the reconfiguration cost.  The kernel-driver
duties (scatter-gather descriptors over DMA-main) are modelled by the PCIe
transfer layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


from repro.core.bitstream import BitstreamLibrary, generate_bitstream_library
from repro.core.config import HardwareConfig, scaled_default_config
from repro.core.cost_model import CostEstimate, CostModel
from repro.core.reconfig import ReconfigurationController, ReconfigurationEvent
from repro.graph.coo import COOGraph
from repro.system.pcie import PCIeLink
from repro.system.workload import WorkloadProfile


@dataclass(frozen=True)
class GraphProfile:
    """Light-weight metadata AGNN-lib collects about an uploaded graph.

    Attributes:
        num_nodes: node count.
        num_edges: edge count.
        avg_degree: average in-degree.
        max_degree: maximum in-degree (drives node-explosion risk).
    """

    num_nodes: int
    num_edges: int
    avg_degree: float
    max_degree: int

    @classmethod
    def from_graph(cls, graph: COOGraph) -> "GraphProfile":
        """Profile an in-memory COO graph."""
        return cls(
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            avg_degree=graph.avg_degree,
            max_degree=graph.max_degree(),
        )

    def to_workload(
        self,
        num_layers: int = 2,
        k: int = 10,
        batch_size: int = 3000,
        name: str = "uploaded",
    ) -> WorkloadProfile:
        """Turn the profile into a workload description for the cost model."""
        return WorkloadProfile(
            name=name,
            num_nodes=self.num_nodes,
            num_edges=self.num_edges,
            avg_degree=self.avg_degree,
            num_layers=num_layers,
            k=k,
            batch_size=min(batch_size, max(self.num_nodes, 1)),
        )


@dataclass
class ReconfigurationDecision:
    """Outcome of one cost-model evaluation.

    Attributes:
        reconfigure: whether AGNN-lib asks the device to reprogram.
        target: the chosen configuration (current one when not reconfiguring).
        predicted_improvement: fractional latency improvement the cost model
            predicts for the target over the current configuration.
        current_estimate: cost estimate of the currently loaded configuration.
        target_estimate: cost estimate of the chosen configuration.
    """

    reconfigure: bool
    target: HardwareConfig
    predicted_improvement: float
    current_estimate: CostEstimate
    target_estimate: CostEstimate


class AGNNLib:
    """Host-side library: graph I/O, profiling and reconfiguration policy."""

    def __init__(
        self,
        library: Optional[BitstreamLibrary] = None,
        initial_config: Optional[HardwareConfig] = None,
        cost_model: Optional[CostModel] = None,
        pcie: Optional[PCIeLink] = None,
        reconfigure_threshold: float = 0.05,
    ) -> None:
        self.library = library or generate_bitstream_library()
        self.config = initial_config or scaled_default_config(self.library.board)
        self.cost_model = cost_model or CostModel()
        self.pcie = pcie or PCIeLink()
        self.reconfigure_threshold = reconfigure_threshold
        self.controller = ReconfigurationController(self.library, self.config)
        self._uploaded: Optional[COOGraph] = None
        self._profile: Optional[GraphProfile] = None
        self.upload_history: List[Tuple[int, float]] = []

    # ---------------------------------------------------------------- graph I/O
    def upload_graph(self, graph: COOGraph) -> float:
        """Upload (or incrementally update) a graph; returns transfer seconds.

        The first upload moves the whole COO through DMA-main; subsequent
        uploads only move the delta relative to the previously resident graph,
        matching AutoGNN's ability to keep graph data in device memory.
        """
        profile = GraphProfile.from_graph(graph)
        if self._uploaded is None:
            transfer_bytes = graph.nbytes()
        else:
            delta_edges = max(graph.num_edges - self._uploaded.num_edges, 0)
            if graph.name and self._uploaded.name and graph.name != self._uploaded.name:
                # A different dataset entirely: full upload.
                transfer_bytes = graph.nbytes()
            else:
                transfer_bytes = delta_edges * 16
        seconds = self.pcie.dma_main(transfer_bytes)
        self._uploaded = graph
        self._profile = profile
        self.upload_history.append((transfer_bytes, seconds))
        return seconds

    def update_graph(self, graph: COOGraph) -> float:
        """DGL-compatible alias of :meth:`upload_graph`."""
        return self.upload_graph(graph)

    @property
    def profile(self) -> Optional[GraphProfile]:
        """Profile of the currently resident graph (``None`` before upload)."""
        return self._profile

    # ----------------------------------------------------------- reconfiguration
    def evaluate_reconfiguration(self, workload: WorkloadProfile) -> ReconfigurationDecision:
        """Score all staged bitstreams and decide whether to reprogram."""
        params = workload.to_cost_params()
        current_estimate = self.cost_model.estimate(params, self.config)
        target, target_estimate = self.cost_model.best_configuration(
            params, self.library.configurations()
        )
        if current_estimate.total_cycles <= 0:
            improvement = 0.0
        else:
            improvement = (
                current_estimate.total_cycles - target_estimate.total_cycles
            ) / current_estimate.total_cycles
        should = (
            target.key() != self.config.key()
            and improvement >= self.reconfigure_threshold
        )
        return ReconfigurationDecision(
            reconfigure=should,
            target=target if should else self.config,
            predicted_improvement=improvement,
            current_estimate=current_estimate,
            target_estimate=target_estimate,
        )

    def apply_reconfiguration(self, decision: ReconfigurationDecision) -> Optional[ReconfigurationEvent]:
        """Carry out a positive reconfiguration decision; returns the event."""
        if not decision.reconfigure:
            return None
        event = self.controller.reconfigure(decision.target)
        self.config = decision.target
        return event

    def prepare(self, workload: WorkloadProfile) -> Tuple[HardwareConfig, float]:
        """Profile, decide and reconfigure in one call.

        Returns the configuration that will execute the workload and the
        reconfiguration latency charged (0 when nothing changed).
        """
        decision = self.evaluate_reconfiguration(workload)
        event = self.apply_reconfiguration(decision)
        return self.config, (event.latency_seconds if event else 0.0)
