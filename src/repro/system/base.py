"""Common interface of every compared preprocessing system.

A preprocessing system turns a :class:`~repro.system.workload.WorkloadProfile`
into per-task preprocessing latencies, transfer latencies and (for the
reconfigurable AutoGNN variants) reconfiguration latency.  The GNN service
layer adds the inference latency on top to produce end-to-end numbers.

Both the software baselines (:mod:`repro.baselines`) and the AutoGNN variants
(:mod:`repro.system.variants`) implement this interface, which is why it lives
here rather than in either package.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.analysis.metrics import EndToEndLatency, TaskLatencies
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.workload import WorkloadProfile


@dataclass
class SystemLatency:
    """Everything a preprocessing system reports for one pass.

    Attributes:
        preprocessing: per-task preprocessing latencies (seconds).
        transfers: per-hop data-movement latencies (seconds).
        reconfiguration: FPGA reconfiguration latency (seconds, AutoGNN only).
        bandwidth_utilization: fraction of the platform's peak memory bandwidth
            sustained during preprocessing.
        extras: free-form additional metrics (LUT utilisation, power, ...).
    """

    preprocessing: TaskLatencies = field(default_factory=TaskLatencies)
    transfers: TransferBreakdown = field(default_factory=TransferBreakdown)
    reconfiguration: float = 0.0
    bandwidth_utilization: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def preprocessing_total(self) -> float:
        """Total preprocessing latency excluding transfers."""
        return self.preprocessing.total

    @property
    def total(self) -> float:
        """Preprocessing + transfer + reconfiguration latency."""
        return self.preprocessing.total + self.transfers.total + self.reconfiguration

    def end_to_end(self, inference_seconds: float) -> EndToEndLatency:
        """Attach an inference latency and produce the end-to-end decomposition."""
        return EndToEndLatency(
            preprocessing=self.preprocessing,
            transfer=self.transfers.total,
            inference=inference_seconds,
            reconfiguration=self.reconfiguration,
        )


class PreprocessingSystem(ABC):
    """Abstract compared system (CPU, GPU, GSamp, FPGA sampler, AutoGNN ...)."""

    #: Display name used in benchmark output (matches the paper's labels).
    name: str = "system"

    def __init__(self, pcie: Optional[PCIeLink] = None) -> None:
        self.pcie = pcie or PCIeLink()

    # ------------------------------------------------------------ interface
    @abstractmethod
    def evaluate(self, workload: WorkloadProfile) -> SystemLatency:
        """Model one preprocessing pass of ``workload`` on this system."""

    def replicate(self) -> "PreprocessingSystem":
        """A fresh instance with the same configuration and no shared state.

        The sharded serving cluster calls this once per shard so that every
        replica carries its own mutable state (bitstream configuration,
        reconfiguration history, caches).  Immutable inputs (calibrations,
        PCIe links, bitstream libraries) may be shared.  Subclasses whose
        constructors take more than ``pcie`` must override.
        """
        clone = type(self)(pcie=self.pcie)
        clone.name = self.name
        return clone

    # -------------------------------------------------------- serving state
    def state_key(self) -> Optional[Hashable]:
        """Hashable digest of the mutable state that affects ``evaluate``.

        ``None`` (the default) declares the system *stateless for serving*:
        ``evaluate`` is a pure function of the workload, so results may be
        memoized on the workload alone and replayed on any replica.  Systems
        whose passes depend on mutable state (DynPre's currently loaded
        bitstream pair) override this with a digest of that state; the
        serving fast engine and the service-level cost cache key their
        memoization on it, which is what makes a post-reconfigure estimate
        unable to reuse a pre-reconfigure cost.
        """
        return None

    def snapshot_state(self) -> Optional[object]:
        """Opaque snapshot of the mutable serving state (None = stateless).

        Taken by the serving fast engine right after a freshly computed pass
        so the (state, workload) -> (report, next state) transition can be
        replayed from cache on any replica in the same starting state.
        """
        return None

    def apply_state(self, snapshot: Optional[object]) -> None:
        """Restore a snapshot captured by :meth:`snapshot_state` (no-op here).

        Replaying a cached transition must leave the replica in exactly the
        state a fresh pass would have produced — including bookkeeping such
        as reconfiguration event logs — so stateful systems override this.
        """

    # ----------------------------------------------------------- cost hints
    def cost_hint(self, workload: WorkloadProfile) -> float:
        """Side-effect-free estimate of one full pass (preprocessing + moves).

        The serving control plane uses this to predict a request's sojourn
        before admitting it, so the estimate must not mutate this instance:
        the default evaluates a throwaway replica, which leaves stateful
        systems (DynPre's reconfiguration history) untouched.  Stateless
        systems may override with a direct evaluation.
        """
        return self.replicate().evaluate(workload).total

    def configured_for(self, workload: WorkloadProfile) -> bool:
        """Whether serving ``workload`` now would trigger no state change.

        Reconfigurable systems report ``True`` when their currently loaded
        bitstream pair already suits the workload (no reconfiguration would
        fire); the locality dispatch policy prefers such shards.  Systems
        without reconfigurable state return ``False`` so that hash-based
        home-shard affinity stays in effect for them.
        """
        return False

    @property
    def warmup_seconds(self) -> float:
        """Latency to bring a fresh shard of this system online.

        The autoscaler charges this once when it activates a shard; systems
        that must load a bitstream before serving (the AutoGNN variants)
        override with the full-device reconfiguration latency.
        """
        return 0.0

    # ------------------------------------------------------------- niceties
    def preprocessing_latency(self, workload: WorkloadProfile) -> TaskLatencies:
        """Per-task preprocessing latencies only."""
        return self.evaluate(workload).preprocessing

    def total_latency(self, workload: WorkloadProfile) -> float:
        """Preprocessing + transfer + reconfiguration latency."""
        return self.evaluate(workload).total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
