"""Common interface of every compared preprocessing system.

A preprocessing system turns a :class:`~repro.system.workload.WorkloadProfile`
into per-task preprocessing latencies, transfer latencies and (for the
reconfigurable AutoGNN variants) reconfiguration latency.  The GNN service
layer adds the inference latency on top to produce end-to-end numbers.

Both the software baselines (:mod:`repro.baselines`) and the AutoGNN variants
(:mod:`repro.system.variants`) implement this interface, which is why it lives
here rather than in either package.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.metrics import EndToEndLatency, TaskLatencies
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.workload import WorkloadProfile


@dataclass
class SystemLatency:
    """Everything a preprocessing system reports for one pass.

    Attributes:
        preprocessing: per-task preprocessing latencies (seconds).
        transfers: per-hop data-movement latencies (seconds).
        reconfiguration: FPGA reconfiguration latency (seconds, AutoGNN only).
        bandwidth_utilization: fraction of the platform's peak memory bandwidth
            sustained during preprocessing.
        extras: free-form additional metrics (LUT utilisation, power, ...).
    """

    preprocessing: TaskLatencies = field(default_factory=TaskLatencies)
    transfers: TransferBreakdown = field(default_factory=TransferBreakdown)
    reconfiguration: float = 0.0
    bandwidth_utilization: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def preprocessing_total(self) -> float:
        """Total preprocessing latency excluding transfers."""
        return self.preprocessing.total

    @property
    def total(self) -> float:
        """Preprocessing + transfer + reconfiguration latency."""
        return self.preprocessing.total + self.transfers.total + self.reconfiguration

    def end_to_end(self, inference_seconds: float) -> EndToEndLatency:
        """Attach an inference latency and produce the end-to-end decomposition."""
        return EndToEndLatency(
            preprocessing=self.preprocessing,
            transfer=self.transfers.total,
            inference=inference_seconds,
            reconfiguration=self.reconfiguration,
        )


class PreprocessingSystem(ABC):
    """Abstract compared system (CPU, GPU, GSamp, FPGA sampler, AutoGNN ...)."""

    #: Display name used in benchmark output (matches the paper's labels).
    name: str = "system"

    def __init__(self, pcie: Optional[PCIeLink] = None) -> None:
        self.pcie = pcie or PCIeLink()

    # ------------------------------------------------------------ interface
    @abstractmethod
    def evaluate(self, workload: WorkloadProfile) -> SystemLatency:
        """Model one preprocessing pass of ``workload`` on this system."""

    def replicate(self) -> "PreprocessingSystem":
        """A fresh instance with the same configuration and no shared state.

        The sharded serving cluster calls this once per shard so that every
        replica carries its own mutable state (bitstream configuration,
        reconfiguration history, caches).  Immutable inputs (calibrations,
        PCIe links, bitstream libraries) may be shared.  Subclasses whose
        constructors take more than ``pcie`` must override.
        """
        clone = type(self)(pcie=self.pcie)
        clone.name = self.name
        return clone

    # ------------------------------------------------------------- niceties
    def preprocessing_latency(self, workload: WorkloadProfile) -> TaskLatencies:
        """Per-task preprocessing latencies only."""
        return self.evaluate(workload).preprocessing

    def total_latency(self, workload: WorkloadProfile) -> float:
        """Preprocessing + transfer + reconfiguration latency."""
        return self.evaluate(workload).total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
