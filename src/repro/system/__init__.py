"""System layer: host integration, AutoGNN variants, power, boards, service.

This package models everything around the accelerator core: the PCIe/DMA
transfer paths, the AGNN-lib host software (profiling + reconfiguration
policy), the power/energy model, the FPGA board catalogue used by the
cost-effectiveness study, the three AutoGNN system variants the paper
evaluates (AutoPre / StatPre / DynPre) with their ablations, and the
GNN service that combines preprocessing, transfers and inference into
end-to-end latency.
"""

from repro.system.workload import WorkloadProfile
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.boards import FPGABoard, BOARD_CATALOG, GPU_REFERENCE_PRICE
from repro.system.power import PowerModel, EnergyReport
from repro.system.variants import (
    AutoGNNVariant,
    AutoPreSystem,
    StatPreSystem,
    DynPreSystem,
    tuned_config_for,
)
from repro.system.agnn_lib import AGNNLib, GraphProfile, ReconfigurationDecision
from repro.system.service import GNNService, ServiceReport, build_reference_systems

__all__ = [
    "WorkloadProfile",
    "PCIeLink",
    "TransferBreakdown",
    "FPGABoard",
    "BOARD_CATALOG",
    "GPU_REFERENCE_PRICE",
    "PowerModel",
    "EnergyReport",
    "AutoGNNVariant",
    "AutoPreSystem",
    "StatPreSystem",
    "DynPreSystem",
    "tuned_config_for",
    "AGNNLib",
    "GraphProfile",
    "ReconfigurationDecision",
    "GNNService",
    "ServiceReport",
    "build_reference_systems",
]
