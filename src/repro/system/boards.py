"""FPGA board catalogue for the cost-effectiveness study (Fig. 26).

The paper sweeps the LUT count from ~400 K to ~4 M and evaluates boards across
a wide price range, comparing performance and performance-per-dollar against
the RTX 3090.  Prices are street prices of the corresponding AMD/Xilinx
evaluation boards; they only matter as relative magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import FPGAResources

#: Street price of the RTX 3090 reference GPU (Fig. 26b normalises to this).
GPU_REFERENCE_PRICE: float = 1_500.0


@dataclass(frozen=True)
class FPGABoard:
    """One purchasable FPGA board.

    Attributes:
        name: board/device name.
        luts: LUT count.
        price_usd: street price.
        tier: ``"low"``, ``"mid"`` or ``"high"`` price tier.
    """

    name: str
    luts: int
    price_usd: float
    tier: str

    #: Peak device-DRAM bandwidth per price tier (bytes/second): low-end boards
    #: ship a single DDR channel, high-end boards multiple DDR4/LPDDR stacks.
    TIER_BANDWIDTH = {"low": 12e9, "mid": 32e9, "high": 64e9}

    def resources(self) -> FPGAResources:
        """Convert to the resource descriptor used by the hardware config."""
        return FPGAResources(
            name=self.name,
            luts=self.luts,
            price_usd=self.price_usd,
            dram_bandwidth=self.TIER_BANDWIDTH[self.tier],
        )

    @property
    def normalized_price(self) -> float:
        """Price relative to the reference GPU."""
        return self.price_usd / GPU_REFERENCE_PRICE


#: Representative boards across the price/LUT range of Fig. 26.
BOARD_CATALOG: List[FPGABoard] = [
    FPGABoard(name="Artix-7 200T", luts=134_600, price_usd=250.0, tier="low"),
    FPGABoard(name="Kintex-7 410T", luts=254_200, price_usd=900.0, tier="low"),
    FPGABoard(name="Kintex UltraScale KU060", luts=331_000, price_usd=1_500.0, tier="low"),
    FPGABoard(name="Kintex UltraScale KU115", luts=663_000, price_usd=2_900.0, tier="mid"),
    FPGABoard(name="Virtex UltraScale+ VU9P", luts=1_182_000, price_usd=6_000.0, tier="mid"),
    FPGABoard(name="Versal VM1802", luts=899_000, price_usd=9_000.0, tier="mid"),
    FPGABoard(name="Virtex UltraScale+ VU13P", luts=1_728_000, price_usd=11_000.0, tier="high"),
    FPGABoard(name="Versal VPK120", luts=2_700_000, price_usd=12_500.0, tier="high"),
    FPGABoard(name="Versal VPK180", luts=4_100_000, price_usd=14_000.0, tier="high"),
]


def boards_by_tier(tier: str) -> List[FPGABoard]:
    """All catalogued boards of the given price tier."""
    return [b for b in BOARD_CATALOG if b.tier == tier]


def board_by_name(name: str) -> FPGABoard:
    """Look a board up by exact name; raises ``KeyError`` when unknown."""
    for board in BOARD_CATALOG:
        if board.name == name:
            return board
    raise KeyError(f"unknown FPGA board {name!r}")
