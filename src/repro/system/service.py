"""The GNN service: preprocessing system + transfers + GPU inference.

This is the layer the end-to-end experiments run on.  A service pairs one
compared preprocessing system (CPU / GPU / GSamp / FPGA / AutoPre / StatPre /
DynPre) with the analytic GPU inference-latency model and produces the
end-to-end latency decomposition the paper's figures report.  It can also run
the functional path on an in-memory graph to validate that the preprocessing
actually produces a correct subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import EndToEndLatency
from repro.system.base import PreprocessingSystem, SystemLatency
from repro.baselines.cpu import CPUPreprocessingSystem
from repro.baselines.fpga_sampler import FPGASamplerSystem
from repro.baselines.gpu import GPUPreprocessingSystem
from repro.baselines.gsamp import GSampSystem
from repro.core.bitstream import generate_bitstream_library
from repro.gnn.inference import InferenceLatencyModel
from repro.graph.coo import COOGraph
from repro.graph.sampling import MODE_VECTORIZED, check_mode
from repro.preprocessing.pipeline import (
    PreprocessingConfig,
    PreprocessingPipeline,
    PreprocessingResult,
)
from repro.system.power import EnergyReport, PowerModel
from repro.system.variants import AutoPreSystem, DynPreSystem, StatPreSystem, tuned_config_for
from repro.system.workload import WorkloadProfile


@dataclass
class ServiceReport:
    """End-to-end latency, energy and utilisation of one service pass.

    Attributes:
        system: name of the preprocessing system.
        workload: the workload the pass executed.
        latency: end-to-end latency decomposition.
        system_latency: the raw preprocessing-system report.
        energy: energy decomposition for the pass.
    """

    system: str
    workload: WorkloadProfile
    latency: EndToEndLatency
    system_latency: SystemLatency
    energy: EnergyReport

    @property
    def total_seconds(self) -> float:
        """End-to-end latency of the pass."""
        return self.latency.total

    @property
    def preprocessing_share(self) -> float:
        """Fraction of the pass spent on preprocessing and data movement."""
        return self.latency.preprocessing_share

    def breakdown(self) -> Dict[str, float]:
        """Flat component breakdown (task latencies, transfer, inference)."""
        return self.latency.as_dict()


class GNNService:
    """One deployable GNN inference service."""

    def __init__(
        self,
        preprocessing: PreprocessingSystem,
        inference: Optional[InferenceLatencyModel] = None,
        power_platform: Optional[str] = None,
        mode: str = MODE_VECTORIZED,
    ) -> None:
        self.preprocessing = preprocessing
        self.inference = inference or InferenceLatencyModel()
        self.mode = check_mode(mode)
        if power_platform is None:
            power_platform = self._default_power_platform(preprocessing)
        self.power = PowerModel(preprocessing_platform=power_platform)
        # Calibrated per-batch cost estimates, keyed by (preprocessing state,
        # batch_key, batch_size): a post-reconfigure estimate must never reuse
        # a pre-reconfigure cost, so the system's state_key is part of the key.
        self._cost_cache: Dict[tuple, float] = {}
        # Modelled inference latency is pure in the workload's subgraph shape.
        self._inference_cache: Dict[tuple, float] = {}

    @staticmethod
    def _default_power_platform(system: PreprocessingSystem) -> str:
        name = system.name.lower()
        if name in ("cpu",):
            return "cpu"
        if name in ("gpu", "gsamp"):
            return "gpu"
        return "fpga"

    # ---------------------------------------------------------------- serving
    def inference_latency(self, workload: WorkloadProfile) -> float:
        """Modelled GPU inference latency for the workload's sampled subgraph.

        Memoized on the subgraph shape: the latency model is deterministic in
        (nodes, edges, dims, model), and rebuilding the model's FLOP profile
        per request dominated the per-pass cost of the serving loops.
        """
        key = (
            workload.model_name,
            workload.num_layers,
            workload.feature_dim,
            workload.sampled_nodes,
            workload.sampled_edges,
        )
        cached = self._inference_cache.get(key)
        if cached is None:
            cached = self.inference.latency_from_counts(
                num_nodes=workload.sampled_nodes,
                num_edges=workload.sampled_edges,
                hidden_dim=workload.feature_dim,
                num_layers=workload.num_layers,
                model_name=workload.model_name,
            )
            self._inference_cache[key] = cached
        return cached

    def serve(self, workload: WorkloadProfile) -> ServiceReport:
        """Model one end-to-end inference pass of ``workload``."""
        system_latency = self.preprocessing.evaluate(workload)
        inference_seconds = self.inference_latency(workload)
        latency = system_latency.end_to_end(inference_seconds)
        energy = self.power.energy(latency)
        return ServiceReport(
            system=self.preprocessing.name,
            workload=workload,
            latency=latency,
            system_latency=system_latency,
            energy=energy,
        )

    def estimate_service_seconds(self, workload: WorkloadProfile) -> float:
        """Calibrated end-to-end cost estimate of one pass, side-effect free.

        The admission controller multiplies queue depth by this per-batch
        cost to predict a request's sojourn before letting it in.  The
        estimate is the preprocessing system's :meth:`cost_hint` (evaluated
        on a throwaway replica, so stateful systems are not perturbed) plus
        the modelled inference latency, memoized per batch-compatible
        workload shape *and* per preprocessing state: a stateful system's
        hint depends on what is currently loaded (a DynPre replica starts
        from this service's configuration and may pay a reconfiguration), so
        an estimate taken after a reconfiguration must not reuse the cost
        cached before it.
        """
        key = (self.preprocessing.state_key(), workload.batch_key, workload.batch_size)
        if key not in self._cost_cache:
            self._cost_cache[key] = self.preprocessing.cost_hint(
                workload
            ) + self.inference_latency(workload)
        return self._cost_cache[key]

    def configured_for(self, workload: WorkloadProfile) -> bool:
        """Whether this service's preprocessing state already suits ``workload``."""
        return self.preprocessing.configured_for(workload)

    def state_key(self):
        """Digest of the preprocessing state a pass's outcome depends on.

        ``None`` for stateless systems; the serving fast engine keys its
        serve-transition cache on this (see ``PreprocessingSystem.state_key``).
        """
        return self.preprocessing.state_key()

    @property
    def warmup_seconds(self) -> float:
        """Latency to bring a fresh shard of this service online (bitstream load)."""
        return self.preprocessing.warmup_seconds

    def serve_many(self, workloads: List[WorkloadProfile]) -> List[ServiceReport]:
        """Model a sequence of passes over this service, in list order.

        Contract:

        * ``workloads`` must be non-empty (a ``ValueError`` is raised
          otherwise — an empty pass would silently produce no report and
          mask caller bugs).
        * Passes execute sequentially on this service's single preprocessing
          system, so stateful systems (e.g. DynPre's reconfiguration state)
          carry their state from one pass to the next.
        * Every pass runs under this service's execution ``mode``, which is
          re-validated here so a mode mutated after construction fails fast
          instead of silently degrading.
        * Exactly one report is returned per workload, in input order.  A
          1-shard, batch-size-1 serving cluster over the same workloads
          reproduces this report list exactly (test-enforced).
        """
        if not workloads:
            raise ValueError("serve_many requires a non-empty workload list")
        self.mode = check_mode(self.mode)
        return [self.serve(w) for w in workloads]

    def replicate(self) -> "GNNService":
        """A fresh service over a replicated preprocessing system.

        The replica shares the stateless inference-latency model but gets
        its own preprocessing-system instance (per-shard bitstream/LUT
        state) and inherits this service's power platform and execution
        mode.  The sharded serving cluster builds one replica per shard.
        """
        return GNNService(
            self.preprocessing.replicate(),
            inference=self.inference,
            power_platform=self.power.preprocessing_platform,
            mode=self.mode,
        )

    # ------------------------------------------------------- functional path
    def preprocess_functional(
        self,
        graph: COOGraph,
        config: Optional[PreprocessingConfig] = None,
        batch_nodes=None,
    ) -> PreprocessingResult:
        """Run the functional preprocessing pipeline on an in-memory graph.

        Validates that a served workload's preprocessing actually produces a
        correct subgraph.  Runs in this service's execution ``mode`` (the
        vectorized fast path by default); a config with an explicitly chosen
        ``mode`` wins, one with ``mode=None`` inherits the service's.
        """
        from dataclasses import replace

        if config is None:
            config = PreprocessingConfig(mode=self.mode)
        elif config.mode is None:
            config = replace(config, mode=self.mode)
        return PreprocessingPipeline(config).run(graph, batch_nodes=batch_nodes)


def build_reference_systems(
    tuning_workload: Optional[WorkloadProfile] = None,
) -> Dict[str, PreprocessingSystem]:
    """The seven compared systems of Fig. 18, keyed by the paper's labels.

    ``tuning_workload`` fixes the configuration of AutoPre and StatPre (the
    paper tunes them for the MV dataset); DynPre starts from the same
    configuration and reconfigures per dataset.
    """
    if tuning_workload is None:
        tuning_workload = WorkloadProfile.from_dataset("MV")
    library = generate_bitstream_library()
    tuned = tuned_config_for(tuning_workload, library)
    return {
        "CPU": CPUPreprocessingSystem(),
        "GPU": GPUPreprocessingSystem(),
        "GSamp": GSampSystem(),
        "FPGA": FPGASamplerSystem(),
        "AutoPre": AutoPreSystem(config=tuned),
        "StatPre": StatPreSystem(config=tuned),
        "DynPre": DynPreSystem(library=library, config=tuned),
    }


def build_services(
    tuning_workload: Optional[WorkloadProfile] = None,
) -> Dict[str, GNNService]:
    """GNN services wrapping each of the seven compared systems."""
    return {
        name: GNNService(system)
        for name, system in build_reference_systems(tuning_workload).items()
    }
