"""Power and energy model (Fig. 19).

During preprocessing the AutoGNN FPGA draws ~9.3 W while the GPU dissipates
~183 W for the same work; both systems execute the GNN model on the GPU, so
the end-to-end energy gap narrows to ~3.3x in AutoGNN's favour thanks to the
latency reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.metrics import EndToEndLatency

#: FPGA power while running AutoGNN preprocessing (Section VI-A).
FPGA_PREPROCESS_WATTS: float = 9.3

#: GPU power while running DGL preprocessing.
GPU_PREPROCESS_WATTS: float = 183.0

#: GPU power while executing the GNN model.
GPU_INFERENCE_WATTS: float = 250.0

#: CPU package power while running DGL preprocessing on the host.
CPU_PREPROCESS_WATTS: float = 240.0

#: Host idle/background power charged to transfer phases.
TRANSFER_WATTS: float = 35.0


@dataclass
class EnergyReport:
    """Energy consumed by one end-to-end inference pass.

    Attributes:
        preprocessing_joules: energy of the preprocessing phase.
        inference_joules: energy of GNN model execution.
        transfer_joules: energy charged to data movement.
        preprocessing_watts: average power of the preprocessing phase.
    """

    preprocessing_joules: float
    inference_joules: float
    transfer_joules: float
    preprocessing_watts: float

    @property
    def total_joules(self) -> float:
        """Total energy of the pass."""
        return self.preprocessing_joules + self.inference_joules + self.transfer_joules


class PowerModel:
    """Maps an end-to-end latency decomposition to power and energy."""

    #: Preprocessing power per platform (W).
    PREPROCESS_WATTS: Dict[str, float] = {
        "fpga": FPGA_PREPROCESS_WATTS,
        "gpu": GPU_PREPROCESS_WATTS,
        "cpu": CPU_PREPROCESS_WATTS,
    }

    def __init__(self, preprocessing_platform: str = "fpga") -> None:
        platform = preprocessing_platform.lower()
        if platform not in self.PREPROCESS_WATTS:
            raise ValueError(f"unknown preprocessing platform {platform!r}")
        self.preprocessing_platform = platform

    @property
    def preprocessing_watts(self) -> float:
        """Average power drawn while preprocessing on this platform."""
        return self.PREPROCESS_WATTS[self.preprocessing_platform]

    def energy(self, latency: EndToEndLatency) -> EnergyReport:
        """Energy of one pass whose latency decomposition is ``latency``."""
        preprocess_seconds = latency.preprocessing.total + latency.reconfiguration
        return EnergyReport(
            preprocessing_joules=preprocess_seconds * self.preprocessing_watts,
            inference_joules=latency.inference * GPU_INFERENCE_WATTS,
            transfer_joules=latency.transfer * TRANSFER_WATTS,
            preprocessing_watts=self.preprocessing_watts,
        )


def power_ratio(gpu_watts: float = GPU_PREPROCESS_WATTS, fpga_watts: float = FPGA_PREPROCESS_WATTS) -> float:
    """Preprocessing power ratio between GPU and AutoGNN (paper: ~19.7x)."""
    return gpu_watts / fpga_watts
