"""The AutoGNN system variants: AutoPre, StatPre and DynPre (plus ablations).

All three execute end-to-end preprocessing on the FPGA; they differ in how the
UPE region is organised and whether the hardware reconfigures at runtime
(Section VI):

* ``AutoPre`` statically splits the UPE region into an ordering-only and a
  selection-only sub-engine with equal LUT budgets; the two stages still run
  serially, so half the region idles at any time (47 % LUT utilisation).
* ``StatPre`` time-multiplexes the whole UPE region across ordering and
  selection (82 % utilisation); its configuration is fixed, tuned for the MV
  dataset.
* ``DynPre`` additionally reconfigures the UPE and SCR regions at runtime,
  selecting the pre-compiled bitstream pair that minimises the cost model for
  the current workload.  The ablations ``DynArea`` / ``DynSCR`` / ``DynUPE``
  (Fig. 22) progressively enable area, SCR and UPE re-optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import TaskLatencies
from repro.system.base import PreprocessingSystem, SystemLatency
from repro.core.accelerator import AcceleratedPreprocessing, AutoGNNDevice
from repro.core.bitstream import BitstreamLibrary, generate_bitstream_library
from repro.core.config import (
    FPGAResources,
    HardwareConfig,
    KERNEL_CLOCK_HZ,
    VPK180,
    scaled_default_config,
)
from repro.core.cost_model import CostModel
from repro.core.kernels import (
    ordering_cycle_count,
    reindexing_cycle_estimate,
    reshaping_cycle_estimate,
    selection_cycle_count,
)
from repro.core.reconfig import FULL_RECONFIG_SECONDS, ReconfigurationController
from repro.graph.coo import COOGraph
from repro.graph.sampling import MODE_VECTORIZED, check_mode
from repro.preprocessing.pipeline import PreprocessingConfig
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.workload import WorkloadProfile

#: Peak bandwidth of the accelerator's device DRAM (bytes/second).
DEVICE_BANDWIDTH: float = 64e9

#: Fraction of peak DRAM bandwidth the streaming datapaths can sustain.
DEVICE_BANDWIDTH_EFFICIENCY: float = 0.92

#: DRAM passes the edge array makes during ordering (load, spill, merge).
ORDERING_DRAM_PASSES: int = 3

#: Fixed host-side overhead charged to every AutoGNN preprocessing pass:
#: AGNN-lib bookkeeping, scatter-gather descriptor setup in AGNN-drv and the
#: doorbell/interrupt round trips of the DMA engines.
HOST_SOFTWARE_OVERHEAD_SECONDS: float = 3e-3


def tuned_config_for(
    workload: WorkloadProfile,
    library: BitstreamLibrary,
    cost_model: Optional[CostModel] = None,
) -> HardwareConfig:
    """The bitstream pair the cost model prefers for ``workload``."""
    cost_model = cost_model or CostModel()
    params = workload.to_cost_params()
    config, _ = cost_model.best_configuration(params, library.configurations())
    return config


@dataclass
class _TaskBytes:
    """DRAM traffic per preprocessing task (bytes)."""

    ordering: int
    reshaping: int
    selecting: int
    reindexing: int

    @property
    def total(self) -> int:
        return self.ordering + self.reshaping + self.selecting + self.reindexing


class AutoGNNVariant(PreprocessingSystem):
    """Shared machinery of the three AutoGNN system variants."""

    name = "AutoGNN"

    def __init__(
        self,
        config: Optional[HardwareConfig] = None,
        board: FPGAResources = VPK180,
        pcie: Optional[PCIeLink] = None,
        clock_hz: float = KERNEL_CLOCK_HZ,
        device_bandwidth: Optional[float] = None,
        mode: str = MODE_VECTORIZED,
    ) -> None:
        super().__init__(pcie=pcie)
        self.board = board
        self.config = config or scaled_default_config(board)
        self.clock_hz = clock_hz
        self.mode = check_mode(mode)
        if device_bandwidth is None:
            device_bandwidth = getattr(board, "dram_bandwidth", DEVICE_BANDWIDTH)
        # Kept pre-efficiency so replicas can be constructed from it without
        # compounding the efficiency factor.
        self._device_bandwidth_raw = device_bandwidth
        self.device_bandwidth = device_bandwidth * DEVICE_BANDWIDTH_EFFICIENCY

    def replicate(self) -> "AutoGNNVariant":
        """Fresh instance with this variant's configuration (per-shard state)."""
        clone = type(self)(
            config=self.config,
            board=self.board,
            pcie=self.pcie,
            clock_hz=self.clock_hz,
            device_bandwidth=self._device_bandwidth_raw,
            mode=self.mode,
        )
        clone.name = self.name
        return clone

    # ------------------------------------------------------- functional path
    def preprocess_functional(
        self,
        graph: COOGraph,
        config: Optional[PreprocessingConfig] = None,
        batch_nodes=None,
    ) -> AcceleratedPreprocessing:
        """Run the functional preprocessing workflow on an in-memory graph.

        Instantiates an :class:`AutoGNNDevice` with this variant's current
        hardware configuration and execution ``mode`` (the vectorized fast
        path by default) and executes the full Fig. 14 workflow, returning
        both the preprocessed subgraph and the cycle-level timing.  An
        explicitly supplied ``config`` wins on execution mode (the device
        delegates to the requested mode).
        """
        device = AutoGNNDevice(config=self.config, clock_hz=self.clock_hz, mode=self.mode)
        return device.preprocess(graph, config, batch_nodes=batch_nodes)

    # ------------------------------------------------------------- components
    def _ordering_config(self) -> HardwareConfig:
        """Hardware configuration effective during edge ordering."""
        return self.config

    def _selection_config(self) -> HardwareConfig:
        """Hardware configuration effective during unique random selection."""
        return self.config

    def _task_bytes(self, workload: WorkloadProfile) -> _TaskBytes:
        """DRAM traffic each task generates."""
        edge_bytes = workload.graph_bytes
        return _TaskBytes(
            ordering=edge_bytes * ORDERING_DRAM_PASSES,
            reshaping=edge_bytes + (workload.num_nodes + 1) * 8,
            selecting=workload.total_selections * 8 * 2,
            reindexing=workload.sampled_edges * 2 * 8,
        )

    def _bandwidth_bound(self, compute_seconds: float, num_bytes: int) -> float:
        """A task cannot finish faster than its DRAM traffic allows."""
        if num_bytes <= 0:
            return compute_seconds
        return max(compute_seconds, num_bytes / self.device_bandwidth)

    def _compute_task_latencies(self, workload: WorkloadProfile) -> TaskLatencies:
        """Per-task preprocessing latency for this variant's configuration."""
        ordering_cfg = self._ordering_config()
        selection_cfg = self._selection_config()
        scr_cfg = self.config
        traffic = self._task_bytes(workload)

        ordering_cycles = ordering_cycle_count(
            workload.num_edges, workload.num_nodes, ordering_cfg
        )
        reshaping_cycles = reshaping_cycle_estimate(
            workload.num_edges, workload.num_nodes, scr_cfg
        )
        arrays = max(workload.total_selections // max(workload.k, 1), 1)
        selecting_cycles = selection_cycle_count(
            workload.total_selections, arrays, selection_cfg
        )
        reindexing_cycles = reindexing_cycle_estimate(
            2 * workload.sampled_edges, workload.per_seed_subgraph_nodes, scr_cfg
        )
        # The reindexed subgraph is converted once more (ordering + reshaping).
        sub_ordering = ordering_cycle_count(
            workload.sampled_edges, workload.sampled_nodes, ordering_cfg
        )
        sub_reshaping = reshaping_cycle_estimate(
            workload.sampled_edges, workload.sampled_nodes, scr_cfg
        )

        ordering = self._bandwidth_bound(
            (ordering_cycles + sub_ordering) / self.clock_hz, traffic.ordering
        )
        reshaping = self._bandwidth_bound(
            (reshaping_cycles + sub_reshaping) / self.clock_hz, traffic.reshaping
        )
        selecting = self._bandwidth_bound(
            selecting_cycles / self.clock_hz, traffic.selecting
        )
        reindexing = self._bandwidth_bound(
            reindexing_cycles / self.clock_hz, traffic.reindexing
        )
        return TaskLatencies(
            ordering=ordering,
            reshaping=reshaping,
            selecting=selecting,
            reindexing=reindexing,
        )

    def _transfers(self, workload: WorkloadProfile) -> TransferBreakdown:
        """AutoGNN keeps the graph resident: only updates in, subgraph out.

        The host-side software overhead (AGNN-lib/AGNN-drv descriptor setup)
        is charged to the host-to-accelerator hop.
        """
        return TransferBreakdown(
            host_to_accelerator=HOST_SOFTWARE_OVERHEAD_SECONDS
            + self.pcie.dma_main(workload.update_bytes),
            accelerator_to_gpu=self.pcie.best_path(workload.subgraph_bytes),
        )

    def _bandwidth_utilization(
        self, workload: WorkloadProfile, latencies: TaskLatencies
    ) -> float:
        traffic = self._task_bytes(workload)
        if latencies.total <= 0:
            return 0.0
        achieved = traffic.total / latencies.total
        return min(achieved / (DEVICE_BANDWIDTH), 1.0)

    #: Whether the UPE and SCR stages of this variant overlap (stream through
    #: each other) or execute strictly serially.
    pipelined: bool = True

    @property
    def warmup_seconds(self) -> float:
        """A fresh AutoGNN shard must program its initial bitstream pair."""
        return FULL_RECONFIG_SECONDS

    def lut_utilization(self, workload: WorkloadProfile) -> float:
        """Time-averaged fraction of the reconfigurable region doing useful work.

        The UPE region is busy during ordering and selection, the SCR region
        during reshaping and reindexing.  Variants whose stages stream into
        each other (StatPre, DynPre) overlap the two regions, so the makespan
        is the longer of the two; AutoPre's fixed sub-engines execute serially
        and only half of the UPE region is ever active.
        """
        latencies = self._compute_task_latencies(workload)
        budget = self.board.reconfigurable_luts()
        upe_region = self.config.upe_region_budget()
        scr_region = self.config.scr_region_budget()
        upe_time = latencies.ordering + latencies.selecting
        scr_time = latencies.reshaping + latencies.reindexing
        makespan = max(upe_time, scr_time) if self.pipelined else (upe_time + scr_time)
        if makespan <= 0:
            return 0.0
        upe_active = self._active_upe_fraction() * upe_region * (upe_time / makespan)
        scr_active = scr_region * min(scr_time / makespan, 1.0)
        return (upe_active + scr_active) / budget

    def _active_upe_fraction(self) -> float:
        """Fraction of the UPE region that is busy while a UPE stage runs."""
        return 1.0

    # -------------------------------------------------------------- evaluate
    def evaluate(self, workload: WorkloadProfile) -> SystemLatency:
        preprocessing = self._compute_task_latencies(workload)
        transfers = self._transfers(workload)
        return SystemLatency(
            preprocessing=preprocessing,
            transfers=transfers,
            reconfiguration=0.0,
            bandwidth_utilization=self._bandwidth_utilization(workload, preprocessing),
            extras={"lut_utilization": self.lut_utilization(workload)},
        )


class AutoPreSystem(AutoGNNVariant):
    """Static UPE split: ordering-only and selection-only sub-engines."""

    name = "AutoPre"
    pipelined = False

    def _ordering_config(self) -> HardwareConfig:
        return self.config.with_upe(num_upes=max(self.config.num_upes // 2, 1))

    def _selection_config(self) -> HardwareConfig:
        return self.config.with_upe(num_upes=max(self.config.num_upes // 2, 1))

    def _active_upe_fraction(self) -> float:
        # Only one of the two fixed sub-engines is ever busy at a time.
        return 0.5


class StatPreSystem(AutoGNNVariant):
    """Unified UPE region, time-multiplexed; fixed configuration."""

    name = "StatPre"

    @classmethod
    def tuned_for(
        cls,
        workload: WorkloadProfile,
        library: Optional[BitstreamLibrary] = None,
        board: FPGAResources = VPK180,
        **kwargs,
    ) -> "StatPreSystem":
        """A StatPre instance whose fixed configuration is tuned for ``workload``.

        The paper tunes StatPre (and AutoPre) for the MV dataset, an
        intermediate-sized graph, which gives the best average performance.
        """
        library = library or generate_bitstream_library(board)
        config = tuned_config_for(workload, library)
        return cls(config=config, board=board, **kwargs)


class DynPreSystem(AutoGNNVariant):
    """Runtime partial reconfiguration driven by the cost model.

    Args:
        library: staged bitstream library to choose from.
        optimize_area: allow changing the UPE:SCR area split (DynArea).
        optimize_scr: allow changing the SCR width/slot count (DynSCR).
        optimize_upe: allow changing the UPE width/count (DynUPE / full DynPre).
        reconfigure_threshold: minimum fractional latency improvement required
            before paying the reconfiguration cost.
    """

    name = "DynPre"

    def __init__(
        self,
        library: Optional[BitstreamLibrary] = None,
        board: FPGAResources = VPK180,
        optimize_area: bool = True,
        optimize_scr: bool = True,
        optimize_upe: bool = True,
        reconfigure_threshold: float = 0.05,
        **kwargs,
    ) -> None:
        super().__init__(board=board, **kwargs)
        self.library = library or generate_bitstream_library(board)
        self.cost_model = CostModel()
        self.optimize_area = optimize_area
        self.optimize_scr = optimize_scr
        self.optimize_upe = optimize_upe
        self.reconfigure_threshold = reconfigure_threshold
        self.reconfig = ReconfigurationController(self.library, self.config)
        # configured_for memo: the decision is pure given (config, workload),
        # and the locality dispatch policy queries it per shard per batch.
        self._configured_cache: Dict[tuple, bool] = {}
        # _latency_with memo: the bandwidth-aware latency model is pure given
        # (config, workload shape); choose_config re-evaluates a shortlist of
        # candidates per pass, so repeated workloads hit this cache.
        self._latency_cache: Dict[tuple, float] = {}

    def replicate(self) -> "DynPreSystem":
        """Fresh replica: shares the immutable bitstream library but carries
        its own configuration state and reconfiguration controller, so each
        shard of a serving cluster adapts to its own traffic independently."""
        clone = type(self)(
            library=self.library,
            board=self.board,
            optimize_area=self.optimize_area,
            optimize_scr=self.optimize_scr,
            optimize_upe=self.optimize_upe,
            reconfigure_threshold=self.reconfigure_threshold,
            config=self.config,
            pcie=self.pcie,
            clock_hz=self.clock_hz,
            device_bandwidth=self._device_bandwidth_raw,
            mode=self.mode,
        )
        clone.name = self.name
        return clone

    # ---------------------------------------------------------- configuration
    def _candidate_configs(self) -> List[HardwareConfig]:
        """Configurations reachable under the enabled ablation knobs."""
        candidates = []
        for config in self.library.configurations():
            if not self.optimize_upe and (
                config.num_upes != self.config.num_upes
                or config.upe_width != self.config.upe_width
            ):
                continue
            if not self.optimize_scr and (
                config.num_scrs != self.config.num_scrs
                or config.scr_width != self.config.scr_width
            ):
                continue
            candidates.append(config)
        return candidates or [self.config]

    def _latency_with(self, config: HardwareConfig, workload: WorkloadProfile) -> float:
        """Predicted per-pass preprocessing latency under ``config``.

        The cost model of Table I ranks candidates quickly, but the final
        decision uses the variant's own latency model (which includes the
        device-DRAM bandwidth bound) so that a reconfiguration is only paid
        for when it actually shortens the pass.  Memoized on
        (configuration, workload shape): the model is pure given those.
        """
        cache_key = (config, workload.batch_key, workload.batch_size)
        cached = self._latency_cache.get(cache_key)
        if cached is not None:
            return cached
        saved = self.config
        try:
            self.config = config
            latency = self._compute_task_latencies(workload).total
        finally:
            self.config = saved
        self._latency_cache[cache_key] = latency
        return latency

    def choose_config(self, workload: WorkloadProfile) -> HardwareConfig:
        """Best candidate configuration for ``workload``.

        The Table I cost model pre-ranks the candidates; the best-ranked ones
        are then re-evaluated with the bandwidth-aware latency model.
        """
        params = workload.to_cost_params()
        ranked = self.cost_model.rank_configurations(params, self._candidate_configs())
        shortlist = [cfg for cfg, _ in ranked[:8]] + [self.config]
        return min(shortlist, key=lambda cfg: self._latency_with(cfg, workload))

    def configured_for(self, workload: WorkloadProfile) -> bool:
        """Whether evaluating ``workload`` now would keep the loaded bitstreams.

        Mirrors :meth:`reconfigure_for`'s decision without mutating any state,
        so the locality dispatch policy can rank shards by their current
        reconfiguration state before committing a batch to one of them.
        Memoized on (current configuration, workload shape): the underlying
        candidate sweep is pure given those inputs.
        """
        cache_key = (self.config.key(), workload.batch_key, workload.batch_size)
        cached = self._configured_cache.get(cache_key)
        if cached is not None:
            return cached
        current_latency = self._latency_with(self.config, workload)
        if current_latency <= 0:
            result = True
        else:
            best = self.choose_config(workload)
            if best.key() == self.config.key():
                result = True
            else:
                best_latency = self._latency_with(best, workload)
                improvement = (current_latency - best_latency) / current_latency
                result = improvement < self.reconfigure_threshold
        self._configured_cache[cache_key] = result
        return result

    # ---------------------------------------------------------- serving state
    def state_key(self):
        """The loaded bitstream pair: the state a pass's outcome depends on."""
        return self.config

    def snapshot_state(self):
        """The configuration left loaded after the most recent pass."""
        return self.config

    def apply_state(self, snapshot) -> None:
        """Replay a cached transition's end state onto this replica.

        Routes the change through the reconfiguration controller so the
        event log stays faithful: the controller derives the affected
        regions and the reconfiguration latency purely from the (old, new)
        configuration pair, exactly as the fresh pass that populated the
        cache did.
        """
        if snapshot is None or snapshot == self.config:
            return
        self.reconfig.reconfigure(snapshot)
        self.config = snapshot

    def reconfigure_for(self, workload: WorkloadProfile) -> float:
        """Reconfigure if the predicted improvement clears the threshold.

        Returns the reconfiguration latency charged to this pass (0 when the
        current configuration is kept).
        """
        current_latency = self._latency_with(self.config, workload)
        best = self.choose_config(workload)
        if best.key() == self.config.key() or current_latency <= 0:
            return 0.0
        best_latency = self._latency_with(best, workload)
        improvement = (current_latency - best_latency) / current_latency
        if improvement < self.reconfigure_threshold:
            return 0.0
        event = self.reconfig.reconfigure(best)
        self.config = best
        return event.latency_seconds if event else 0.0

    # -------------------------------------------------------------- evaluate
    def evaluate(self, workload: WorkloadProfile) -> SystemLatency:
        reconfig_seconds = self.reconfigure_for(workload)
        preprocessing = self._compute_task_latencies(workload)
        transfers = self._transfers(workload)
        return SystemLatency(
            preprocessing=preprocessing,
            transfers=transfers,
            reconfiguration=reconfig_seconds,
            bandwidth_utilization=self._bandwidth_utilization(workload, preprocessing),
            extras={"lut_utilization": self.lut_utilization(workload)},
        )


def make_dyn_ablations(
    board: FPGAResources = VPK180,
    base_config: Optional[HardwareConfig] = None,
) -> Dict[str, AutoGNNVariant]:
    """The Fig. 22 ablation ladder: StatPre, DynArea, DynSCR and DynUPE."""
    base = base_config or scaled_default_config(board)
    library = generate_bitstream_library(board)
    stat = StatPreSystem(config=base, board=board)
    dyn_area = DynPreSystem(
        library=library, board=board, config=base,
        optimize_area=True, optimize_scr=False, optimize_upe=False,
    )
    dyn_area.name = "DynArea"
    dyn_scr = DynPreSystem(
        library=library, board=board, config=base,
        optimize_area=True, optimize_scr=True, optimize_upe=False,
    )
    dyn_scr.name = "DynSCR"
    dyn_upe = DynPreSystem(
        library=library, board=board, config=base,
        optimize_area=True, optimize_scr=True, optimize_upe=True,
    )
    dyn_upe.name = "DynUPE"
    return {"StatPre": stat, "DynArea": dyn_area, "DynSCR": dyn_scr, "DynUPE": dyn_upe}
