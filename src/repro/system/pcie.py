"""PCIe / DMA transfer model.

AutoGNN exposes two DMA regions (Fig. 11b): DMA-main moves large scattered COO
datasets from host memory with a scatter-gather descriptor, while DMA-bypass
maps small results (the sampled subgraph) directly into GPU or host memory.
The transfer model charges bandwidth-proportional latency plus a fixed setup
cost per DMA descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Effective PCIe 4.0 x16 bandwidth for large DMA transfers (bytes/second).
PCIE_BANDWIDTH: float = 16e9

#: Per-transfer setup latency (descriptor creation, doorbell, interrupt).
DMA_SETUP_SECONDS: float = 20e-6

#: Effective bandwidth of BAR/MMIO (DMA-bypass) accesses, lower than bulk DMA.
BYPASS_BANDWIDTH: float = 4e9


@dataclass(frozen=True)
class PCIeLink:
    """A host-device PCIe link with bulk-DMA and MMIO-style transfer paths.

    Attributes:
        bandwidth: bulk DMA bandwidth in bytes/second.
        bypass_bandwidth: DMA-bypass (BAR) bandwidth in bytes/second.
        setup_seconds: fixed per-transfer setup latency.
    """

    bandwidth: float = PCIE_BANDWIDTH
    bypass_bandwidth: float = BYPASS_BANDWIDTH
    setup_seconds: float = DMA_SETUP_SECONDS

    def dma_main(self, num_bytes: int) -> float:
        """Latency of a bulk scatter-gather DMA transfer of ``num_bytes``."""
        if num_bytes <= 0:
            return 0.0
        return self.setup_seconds + num_bytes / self.bandwidth

    def dma_bypass(self, num_bytes: int) -> float:
        """Latency of a small BAR-mapped transfer of ``num_bytes``."""
        if num_bytes <= 0:
            return 0.0
        return self.setup_seconds + num_bytes / self.bypass_bandwidth

    def best_path(self, num_bytes: int, bypass_threshold: int = 4 << 20) -> float:
        """Pick DMA-bypass for small payloads and DMA-main for large ones."""
        if num_bytes <= bypass_threshold:
            return self.dma_bypass(num_bytes)
        return self.dma_main(num_bytes)


@dataclass
class TransferBreakdown:
    """Per-hop transfer latencies of one preprocessing pass (seconds)."""

    host_to_accelerator: float = 0.0
    accelerator_to_gpu: float = 0.0
    gpu_to_accelerator: float = 0.0
    host_to_gpu: float = 0.0

    @property
    def total(self) -> float:
        """Total transfer latency."""
        return (
            self.host_to_accelerator
            + self.accelerator_to_gpu
            + self.gpu_to_accelerator
            + self.host_to_gpu
        )
