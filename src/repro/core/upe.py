"""Unified Processing Element (UPE).

A UPE executes *set-partitioning*: given a node array and a boolean condition
array it extracts the elements that satisfy the condition into a compacted
output, using a prefix-sum network to compute each element's destination
offset and a relocation (routing) network to move it there (Section IV-C,
Fig. 12).  The same datapath serves edge ordering (radix-sort digit passes)
and unique random selection (splitting sampled from unsampled vertices).

The classes below emulate the datapath faithfully at element granularity and
charge cycles according to its structure: the prefix-sum network has
``log2(width)`` adder layers and the relocation network ``log2(width)``
routing layers, and a whole pass over one chunk is pipelined so it retires in
a constant number of cycles independent of the chunk width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


#: Cycles charged for one pipelined set-partition pass over a chunk: one for
#: the prefix-sum network and one for the relocation network.  The paper
#: reports that each network "can process hundreds of elements in a single
#: cycle"; latency of the log-depth networks is hidden by pipelining across
#: chunks, so throughput is what matters.
CYCLES_PER_PARTITION_PASS: int = 2

#: Radix digit width (bits consumed per set-partition pass of the radix sort).
DEFAULT_RADIX_BITS: int = 8


@dataclass
class SetPartitionResult:
    """Output of one set-partition pass.

    Attributes:
        selected: elements whose condition was true, compacted, original order
            preserved.
        rejected: the remaining elements, original order preserved.
        displacement: exclusive prefix-sum array (each true element's write
            index within ``selected``).
        cycles: cycles consumed by the pass.
    """

    selected: np.ndarray
    rejected: np.ndarray
    displacement: np.ndarray
    cycles: int


class PrefixSumLogic:
    """Hierarchical adder network producing exclusive prefix sums of booleans.

    The network has ``log2(width)`` layers; layer ``d`` adds the value of the
    neighbour ``2**d`` positions to the left (a Hillis-Steele scan), exactly
    the structure sketched in Fig. 12b.  Adders are ``log2(width)`` bits wide
    because the inputs are booleans.
    """

    def __init__(self, width: int) -> None:
        if width <= 0 or width & (width - 1):
            raise ValueError("prefix-sum width must be a positive power of two")
        self.width = width

    @property
    def num_layers(self) -> int:
        """Depth of the adder network."""
        return int(math.log2(self.width)) if self.width > 1 else 1

    @property
    def adder_bits(self) -> int:
        """Bit width of each adder (enough to count ``width`` booleans)."""
        return max(int(math.ceil(math.log2(self.width + 1))), 1)

    def scan(self, condition: np.ndarray) -> np.ndarray:
        """Return the exclusive prefix sum of the boolean condition array.

        Emulates the layered network: an inclusive Hillis-Steele scan followed
        by a shift to exclusive form (the element's displacement is the count
        of earlier true elements).
        """
        condition = np.asarray(condition, dtype=np.int64).ravel()
        if condition.shape[0] > self.width:
            raise ValueError(
                f"input of {condition.shape[0]} elements exceeds UPE width {self.width}"
            )
        values = condition.copy()
        stride = 1
        while stride < values.shape[0]:
            shifted = np.zeros_like(values)
            shifted[stride:] = values[:-stride]
            values = values + shifted
            stride *= 2
        inclusive = values
        exclusive = inclusive - condition
        return exclusive


class RelocationLogic:
    """Butterfly-style routing network that compacts selected elements.

    Each of the ``log2(width)`` routing layers shifts elements left by a
    power-of-two distance selected by one bit of the element's displacement
    (Fig. 12c).  Elements whose condition is false are cleared to zero by the
    AND-gate stage before entering the network.
    """

    def __init__(self, width: int, element_bits: int = 64) -> None:
        if width <= 0 or width & (width - 1):
            raise ValueError("relocation width must be a positive power of two")
        self.width = width
        self.element_bits = element_bits

    @property
    def num_layers(self) -> int:
        """Depth of the routing network."""
        return int(math.log2(self.width)) if self.width > 1 else 1

    def relocate(
        self, values: np.ndarray, condition: np.ndarray, displacement: np.ndarray
    ) -> np.ndarray:
        """Move each selected element left to its displacement-determined slot.

        The move distance of element ``i`` is ``i - displacement[i]``; each
        routing layer applies the power-of-two component of that distance.
        Returns an array of the same length with selected elements compacted to
        the front and the tail zero-filled.
        """
        values = np.asarray(values, dtype=np.int64).ravel()
        condition = np.asarray(condition, dtype=bool).ravel()
        displacement = np.asarray(displacement, dtype=np.int64).ravel()
        n = values.shape[0]
        if n > self.width:
            raise ValueError(f"input of {n} elements exceeds width {self.width}")

        # AND-gate stage: clear elements that do not satisfy the condition.
        lanes = np.where(condition, values, 0)
        active = condition.copy()
        distance = np.where(condition, np.arange(n, dtype=np.int64) - displacement, 0)
        if np.any(distance < 0):
            raise ValueError("displacement array would move an element rightward")

        for layer in range(self.num_layers):
            shift = 1 << layer
            new_lanes = np.zeros_like(lanes)
            new_active = np.zeros_like(active)
            new_distance = np.zeros_like(distance)
            for i in range(n):
                if not active[i]:
                    continue
                if distance[i] & shift:
                    target = i - shift
                else:
                    target = i
                new_lanes[target] = lanes[i]
                new_active[target] = True
                new_distance[target] = distance[i] & ~shift
            lanes, active, distance = new_lanes, new_active, new_distance

        return lanes


class UPE:
    """One Unified Processing Element: prefix-sum + relocation datapath.

    Args:
        width: number of elements processed per pass (power of two).
        radix_bits: digit width used by :meth:`radix_sort_chunk`.
        detailed: when True the relocation network is emulated layer by layer;
            when False a functionally identical vectorised path is used (the
            cycle accounting is the same either way).
    """

    def __init__(self, width: int = 64, radix_bits: int = DEFAULT_RADIX_BITS, detailed: bool = False) -> None:
        self.width = int(width)
        self.radix_bits = int(radix_bits)
        self.detailed = detailed
        self.prefix = PrefixSumLogic(self.width)
        self.relocation = RelocationLogic(self.width)
        self.cycles_consumed = 0

    # ----------------------------------------------------------- primitives
    def reset_cycles(self) -> None:
        """Zero the cycle counter."""
        self.cycles_consumed = 0

    def set_partition(self, values: np.ndarray, condition: np.ndarray) -> SetPartitionResult:
        """Partition ``values`` into (condition-true, condition-false) subsets.

        Both subsets preserve the original relative order.  Charges
        :data:`CYCLES_PER_PARTITION_PASS` cycles.
        """
        values = np.asarray(values, dtype=np.int64).ravel()
        condition = np.asarray(condition, dtype=bool).ravel()
        if values.shape != condition.shape:
            raise ValueError("values and condition must have the same length")
        if values.shape[0] > self.width:
            raise ValueError(
                f"chunk of {values.shape[0]} elements exceeds UPE width {self.width}"
            )

        displacement = self.prefix.scan(condition.astype(np.int64))
        if self.detailed:
            routed = self.relocation.relocate(values, condition, displacement)
            num_selected = int(condition.sum())
            selected = routed[:num_selected].copy()
        else:
            selected = values[condition].copy()
        rejected = values[~condition].copy()
        self.cycles_consumed += CYCLES_PER_PARTITION_PASS
        return SetPartitionResult(
            selected=selected.astype(np.int64),
            rejected=rejected.astype(np.int64),
            displacement=displacement,
            cycles=CYCLES_PER_PARTITION_PASS,
        )

    # ------------------------------------------------------------ radix sort
    def radix_sort_passes(self, key_bits: int) -> int:
        """Number of set-partition digit passes a radix sort of ``key_bits`` needs."""
        return max(int(math.ceil(key_bits / self.radix_bits)), 1)

    def radix_sort_chunk(self, keys: np.ndarray, key_bits: int) -> Tuple[np.ndarray, int]:
        """Sort one chunk of keys with an LSD radix sort built on set-partitioning.

        Each digit pass performs ``2**radix_bits`` bucket extractions; the
        datapath executes the digit pass as a pipelined sequence charged as one
        set-partition pass per digit (buckets are produced simultaneously by
        the displacement offsets, Fig. 8).  Returns the sorted chunk and the
        cycles charged.
        """
        keys = np.asarray(keys, dtype=np.int64).ravel()
        if keys.shape[0] > self.width:
            raise ValueError(
                f"chunk of {keys.shape[0]} elements exceeds UPE width {self.width}"
            )
        passes = self.radix_sort_passes(key_bits)
        cycles = passes * CYCLES_PER_PARTITION_PASS
        if self.detailed:
            current = keys.copy()
            for digit in range(passes):
                shift = digit * self.radix_bits
                mask = (1 << self.radix_bits) - 1
                digits = (current >> shift) & mask
                # A stable counting pass: extract buckets in ascending digit
                # order with one set-partition each; displacement offsets give
                # the concatenation order.
                buckets: List[np.ndarray] = []
                remaining = current
                remaining_digits = digits
                for value in range(1 << self.radix_bits):
                    if remaining.size == 0:
                        break
                    cond = remaining_digits == value
                    if not np.any(cond):
                        continue
                    buckets.append(remaining[cond])
                    keep = ~cond
                    remaining = remaining[keep]
                    remaining_digits = remaining_digits[keep]
                current = np.concatenate(buckets) if buckets else current
            sorted_keys = current
        else:
            sorted_keys = np.sort(keys, kind="stable")
        self.cycles_consumed += cycles
        return sorted_keys, cycles

    # -------------------------------------------------------------- sampling
    def extract_by_bitmap(self, values: np.ndarray, bitmap: np.ndarray) -> SetPartitionResult:
        """Extract the elements marked in ``bitmap`` (the sampled set).

        This is the final step of unique random selection (Fig. 16): after the
        per-draw one-hot extractions, the controller builds a condition array
        from its bitmap and runs one more set-partition to gather the sampled
        neighbourhood.
        """
        return self.set_partition(values, np.asarray(bitmap, dtype=bool))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UPE(width={self.width}, radix_bits={self.radix_bits}, detailed={self.detailed})"
