"""Pre-compiled bitstream library.

AutoGNN never synthesises hardware at runtime; it selects among a small set of
pre-compiled bitstreams staged in device DRAM (Section V-B).  Starting from a
single large UPE (and a single large SCR) the generator iteratively halves the
width and doubles the instance count, producing roughly ten variants per
block on the evaluation board.  The two blocks live in separate reconfigurable
regions with a fixed 70:30 area split, so UPE and SCR variants can be
reprogrammed independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import (
    DEFAULT_SCR_AREA_FRACTION,
    FPGAResources,
    HardwareConfig,
    LUTS_PER_SCR_ELEMENT,
    LUTS_PER_UPE_ELEMENT,
    VPK180,
)

#: Size of one partial bitstream file staged in device DRAM (Section V-B).
BITSTREAM_BYTES: int = 50 * 1024 * 1024

#: Smallest practical UPE width (two elements are needed for a partition).
MIN_UPE_WIDTH: int = 8

#: Smallest practical SCR width.
MIN_SCR_WIDTH: int = 2


@dataclass(frozen=True)
class Bitstream:
    """One pre-compiled partial bitstream.

    Attributes:
        region: ``"upe"`` or ``"scr"`` — which reconfigurable region it targets.
        count: instance count of the block.
        width: per-instance width.
        size_bytes: staged size in device DRAM.
    """

    region: str
    count: int
    width: int
    size_bytes: int = BITSTREAM_BYTES

    @property
    def key(self) -> str:
        """Stable identifier (used by the host library to request loading)."""
        return f"{self.region}_{self.count}x{self.width}"


@dataclass
class BitstreamLibrary:
    """The set of staged bitstreams plus the fixed region split they assume."""

    upe_variants: List[Bitstream] = field(default_factory=list)
    scr_variants: List[Bitstream] = field(default_factory=list)
    scr_area_fraction: float = DEFAULT_SCR_AREA_FRACTION
    board: FPGAResources = VPK180

    @property
    def total_bytes(self) -> int:
        """DRAM footprint of all staged bitstreams."""
        return sum(b.size_bytes for b in self.upe_variants + self.scr_variants)

    @property
    def num_variants(self) -> int:
        """Total number of staged bitstreams."""
        return len(self.upe_variants) + len(self.scr_variants)

    def find(self, region: str, count: int, width: int) -> Optional[Bitstream]:
        """Look up a staged bitstream by its parameters; ``None`` when absent."""
        pool = self.upe_variants if region == "upe" else self.scr_variants
        for bs in pool:
            if bs.count == count and bs.width == width:
                return bs
        return None

    def configurations(self) -> List[HardwareConfig]:
        """Every UPE x SCR combination expressible with the staged bitstreams."""
        configs = []
        for upe in self.upe_variants:
            for scr in self.scr_variants:
                configs.append(
                    HardwareConfig(
                        num_upes=upe.count,
                        upe_width=upe.width,
                        num_scrs=scr.count,
                        scr_width=scr.width,
                        scr_area_fraction=self.scr_area_fraction,
                        board=self.board,
                    )
                )
        return configs

    def config_for(self, upe: Bitstream, scr: Bitstream) -> HardwareConfig:
        """Build the :class:`HardwareConfig` for a specific bitstream pair."""
        return HardwareConfig(
            num_upes=upe.count,
            upe_width=upe.width,
            num_scrs=scr.count,
            scr_width=scr.width,
            scr_area_fraction=self.scr_area_fraction,
            board=self.board,
        )


def _power_of_two_floor(value: int) -> int:
    if value < 1:
        return 1
    return 1 << int(math.floor(math.log2(value)))


def generate_bitstream_library(
    board: FPGAResources = VPK180,
    scr_area_fraction: float = DEFAULT_SCR_AREA_FRACTION,
    max_variants_per_region: int = 10,
) -> BitstreamLibrary:
    """Generate the width-halving / count-doubling bitstream series.

    The first UPE variant is a single UPE as wide as the UPE region allows;
    each subsequent variant halves the width and doubles the count, keeping
    the LUT footprint roughly constant, until the width floor or the variant
    cap is reached.  The SCR series is produced the same way in its region.
    """
    reconfigurable = board.reconfigurable_luts()
    upe_budget = int(reconfigurable * (1.0 - scr_area_fraction))
    scr_budget = int(reconfigurable * scr_area_fraction)

    upe_variants: List[Bitstream] = []
    width = _power_of_two_floor(upe_budget // LUTS_PER_UPE_ELEMENT)
    count = 1
    while len(upe_variants) < max_variants_per_region and width >= MIN_UPE_WIDTH:
        upe_variants.append(Bitstream(region="upe", count=count, width=width))
        width //= 2
        count *= 2

    scr_variants: List[Bitstream] = []
    width = _power_of_two_floor(scr_budget // LUTS_PER_SCR_ELEMENT)
    count = 1
    while len(scr_variants) < max_variants_per_region and width >= MIN_SCR_WIDTH:
        scr_variants.append(Bitstream(region="scr", count=count, width=width))
        width //= 2
        count *= 2

    return BitstreamLibrary(
        upe_variants=upe_variants,
        scr_variants=scr_variants,
        scr_area_fraction=scr_area_fraction,
        board=board,
    )
