"""AutoGNN core: the paper's primary contribution.

This package models the AutoGNN FPGA accelerator: Unified Processing Elements
(UPEs) implementing set-partitioning with prefix-sum + relocation logic,
Single-Cycle Reducers (SCRs) implementing set-counting with comparator banks
and adder/filter trees, the UPE/SCR kernels that orchestrate them, the
pre-compiled bitstream library with partial reconfiguration, the analytic cost
model of Table I, and the end-to-end device (Fig. 14) that runs the whole
preprocessing workflow and reports cycle-accurate task latencies.
"""

from repro.core.config import (
    HardwareConfig,
    FPGAResources,
    VPK180,
    KERNEL_CLOCK_HZ,
    DEFAULT_HARDWARE,
)
from repro.core.upe import UPE, PrefixSumLogic, RelocationLogic, SetPartitionResult
from repro.core.merge import upe_merge, upe_merge_sort
from repro.core.scr import (
    SCR,
    ComparatorBank,
    AdderTree,
    FilterTree,
    Reshaper,
    Reindexer,
)
from repro.core.kernels import UPEKernel, SCRKernel, KernelStats
from repro.core.cost_model import CostModel, WorkloadParams, CostEstimate
from repro.core.bitstream import Bitstream, BitstreamLibrary, generate_bitstream_library
from repro.core.reconfig import ReconfigurationController, ReconfigurationEvent
from repro.core.accelerator import AutoGNNDevice, PreprocessingTiming

__all__ = [
    "HardwareConfig",
    "FPGAResources",
    "VPK180",
    "KERNEL_CLOCK_HZ",
    "DEFAULT_HARDWARE",
    "UPE",
    "PrefixSumLogic",
    "RelocationLogic",
    "SetPartitionResult",
    "upe_merge",
    "upe_merge_sort",
    "SCR",
    "ComparatorBank",
    "AdderTree",
    "FilterTree",
    "Reshaper",
    "Reindexer",
    "UPEKernel",
    "SCRKernel",
    "KernelStats",
    "CostModel",
    "WorkloadParams",
    "CostEstimate",
    "Bitstream",
    "BitstreamLibrary",
    "generate_bitstream_library",
    "ReconfigurationController",
    "ReconfigurationEvent",
    "AutoGNNDevice",
    "PreprocessingTiming",
]
