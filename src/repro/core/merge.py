"""Merge sorting with UPEs (Algorithm 1 of the paper).

Two locally sorted edge arrays are merged at a rate of ``w/2`` elements per
cycle: the UPE keeps a buffer of ``w`` elements, sorts it, emits the smaller
half, then refills the freed half from whichever input currently has the
smaller head element.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.upe import UPE


def upe_merge(upe: UPE, a: np.ndarray, b: np.ndarray, key_bits: int) -> Tuple[np.ndarray, int]:
    """Merge two sorted arrays with one UPE, following Algorithm 1.

    Returns the merged array and the cycles charged.  Each loop iteration
    sorts the ``w``-element buffer (one radix-sort pass set) and emits ``w/2``
    elements, so the steady-state rate is ``w/2`` elements per iteration.
    """
    a = np.asarray(a, dtype=np.int64).ravel()
    b = np.asarray(b, dtype=np.int64).ravel()
    w = upe.width
    half = max(w // 2, 1)
    cycles = 0

    if a.size == 0:
        return b.copy(), 0
    if b.size == 0:
        return a.copy(), 0

    out: List[np.ndarray] = []
    ai, bi = min(half, a.size), min(half, b.size)
    buf = np.concatenate([a[:ai], b[:bi]])

    while True:
        buf_sorted, pass_cycles = upe.radix_sort_chunk(buf, key_bits)
        cycles += pass_cycles
        emit = min(half, buf_sorted.size)
        out.append(buf_sorted[:emit])
        buf = buf_sorted[emit:]
        a_left = a.size - ai
        b_left = b.size - bi
        if a_left == 0 and b_left == 0:
            if buf.size:
                tail_sorted, tail_cycles = upe.radix_sort_chunk(buf, key_bits)
                cycles += tail_cycles
                out.append(tail_sorted)
            break
        # Refill from whichever array has the smaller head element.
        take_from_a = b_left == 0 or (a_left > 0 and a[ai] < b[bi])
        if take_from_a:
            take = min(half, a_left)
            buf = np.concatenate([buf, a[ai : ai + take]])
            ai += take
        else:
            take = min(half, b_left)
            buf = np.concatenate([buf, b[bi : bi + take]])
            bi += take

    merged = np.concatenate(out)
    return merged, cycles


def upe_merge_sort(
    upe: UPE, chunks: Sequence[np.ndarray], key_bits: int
) -> Tuple[np.ndarray, int]:
    """Merge a list of locally sorted chunks into one globally sorted array.

    Performs ``ceil(log2(len(chunks)))`` pairwise merge rounds; the cycle
    count is the sum over all pairwise merges (one UPE working serially — the
    kernel divides this by the UPE count for the parallel estimate).
    """
    if not chunks:
        return np.empty(0, dtype=np.int64), 0
    current = [np.asarray(c, dtype=np.int64).ravel() for c in chunks]
    total_cycles = 0
    while len(current) > 1:
        next_round: List[np.ndarray] = []
        for i in range(0, len(current), 2):
            if i + 1 < len(current):
                merged, cycles = upe_merge(upe, current[i], current[i + 1], key_bits)
                total_cycles += cycles
                next_round.append(merged)
            else:
                next_round.append(current[i])
        current = next_round
    return current[0], total_cycles


def merge_rounds(num_chunks: int) -> int:
    """Number of pairwise merge rounds needed to combine ``num_chunks`` runs."""
    if num_chunks <= 1:
        return 0
    rounds = 0
    n = num_chunks
    while n > 1:
        n = (n + 1) // 2
        rounds += 1
    return rounds
