"""Partial reconfiguration controller (FPP / ICAP).

Reconfiguring the HW-kernel takes ~230 ms on the evaluation board: ~3 ms to
stage the bitstream from device DRAM and ~225 ms of ICAP programming at
100 MHz (Section V-B).  Because UPEs and SCRs live in separate reconfigurable
regions, reprogramming only one region roughly halves the overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.bitstream import BitstreamLibrary
from repro.core.config import HardwareConfig, ICAP_CLOCK_HZ

#: DRAM-to-ICAP staging latency for one bitstream (Section V-B).
BITSTREAM_LOAD_SECONDS: float = 0.003

#: ICAP programming latency for one full region.
ICAP_PROGRAM_SECONDS: float = 0.225

#: Total per-region reconfiguration latency.
REGION_RECONFIG_SECONDS: float = BITSTREAM_LOAD_SECONDS + ICAP_PROGRAM_SECONDS / 2.0

#: Full-device (both regions) reconfiguration latency.
FULL_RECONFIG_SECONDS: float = BITSTREAM_LOAD_SECONDS + ICAP_PROGRAM_SECONDS


@dataclass(frozen=True)
class ReconfigurationEvent:
    """A record of one partial reconfiguration.

    Attributes:
        regions: which regions were reprogrammed (``"upe"`` and/or ``"scr"``).
        latency_seconds: wall-clock cost of the reconfiguration.
        from_key: configuration key before the event.
        to_key: configuration key after the event.
    """

    regions: Tuple[str, ...]
    latency_seconds: float
    from_key: str
    to_key: str


class ReconfigurationController:
    """Selects bitstreams and tracks the currently loaded configuration."""

    def __init__(self, library: BitstreamLibrary, initial: HardwareConfig) -> None:
        self.library = library
        self.current = initial
        self.events: List[ReconfigurationEvent] = []

    @property
    def total_reconfig_seconds(self) -> float:
        """Cumulative reconfiguration time spent so far."""
        return sum(event.latency_seconds for event in self.events)

    @property
    def num_reconfigurations(self) -> int:
        """Number of reconfiguration events performed."""
        return len(self.events)

    def regions_to_update(self, target: HardwareConfig) -> Tuple[str, ...]:
        """Which regions differ between the current and target configurations."""
        regions: List[str] = []
        if (
            target.num_upes != self.current.num_upes
            or target.upe_width != self.current.upe_width
        ):
            regions.append("upe")
        if (
            target.num_scrs != self.current.num_scrs
            or target.scr_width != self.current.scr_width
        ):
            regions.append("scr")
        return tuple(regions)

    def reconfigure(self, target: HardwareConfig) -> Optional[ReconfigurationEvent]:
        """Reprogram only the regions that change; returns ``None`` when nothing does.

        Raises ``KeyError`` when a required bitstream is not staged in the
        library.
        """
        regions = self.regions_to_update(target)
        if not regions:
            return None
        for region in regions:
            if region == "upe":
                found = self.library.find("upe", target.num_upes, target.upe_width)
            else:
                found = self.library.find("scr", target.num_scrs, target.scr_width)
            if found is None:
                raise KeyError(
                    f"no staged bitstream for region {region!r} "
                    f"({target.num_upes}x{target.upe_width} / {target.num_scrs}x{target.scr_width})"
                )
        if len(regions) == 2:
            latency = FULL_RECONFIG_SECONDS
        else:
            latency = REGION_RECONFIG_SECONDS
        event = ReconfigurationEvent(
            regions=regions,
            latency_seconds=latency,
            from_key=self.current.key(),
            to_key=target.key(),
        )
        self.current = target
        self.events.append(event)
        return event


def icap_program_time(bitstream_bytes: int, icap_bytes_per_cycle: int = 4) -> float:
    """Analytic ICAP programming time for a bitstream of the given size.

    The ICAP IP consumes ``icap_bytes_per_cycle`` bytes per cycle at
    :data:`~repro.core.config.ICAP_CLOCK_HZ`; a 50 MB partial bitstream gives
    ~125 ms per region, consistent with the paper's 225 ms for the full device.
    """
    cycles = bitstream_bytes / icap_bytes_per_cycle
    return cycles / ICAP_CLOCK_HZ
