"""Analytic cost model of GNN preprocessing on AutoGNN (Table I).

The host-side software evaluates these closed-form cycle estimates for every
pre-compiled bitstream and picks the configuration with the lowest end-to-end
estimate (Section V-B).  The formulas are parameterised by the hardware
(UPE/SCR count and width) and the workload (graph size and GNN
hyperparameters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import HardwareConfig, KERNEL_CLOCK_HZ


@dataclass(frozen=True)
class WorkloadParams:
    """Workload-side parameters of the cost model.

    Attributes:
        num_nodes: graph node count ``n``.
        num_edges: graph edge count ``e``.
        num_layers: GNN layer count ``l``.
        k: neighbours sampled per node.
        batch_size: number of batch (seed) nodes ``b``.
    """

    num_nodes: int
    num_edges: int
    num_layers: int = 2
    k: int = 10
    batch_size: int = 3000

    @property
    def total_selections(self) -> int:
        """Total node selections ``s``.

        Table I writes ``s = b * k^(l+1) - 1``; we interpret it as the
        geometric series ``b * (k^(l+1) - 1) / (k - 1)`` (the total number of
        nodes drawn over all hops including the batch nodes), which is the
        quantity the selection hardware actually iterates over.
        """
        if self.k <= 1:
            return self.batch_size * (self.num_layers + 1)
        return int(
            self.batch_size * (self.k ** (self.num_layers + 1) - 1) // (self.k - 1)
        )

    @property
    def per_seed_subgraph_nodes(self) -> int:
        """Distinct vertices of one batch node's sampled neighbourhood.

        The reindexer renumbers each seed's neighbourhood against its own
        mapping, so this bounds the SRAM occupancy per reindexing pass.
        """
        if self.k <= 1:
            return self.num_layers + 1
        per_seed = (self.k ** (self.num_layers + 1) - 1) // (self.k - 1)
        return int(min(per_seed, self.num_nodes)) if self.num_nodes else int(per_seed)

    @classmethod
    def from_graph(
        cls,
        graph,
        num_layers: int = 2,
        k: int = 10,
        batch_size: int = 3000,
    ) -> "WorkloadParams":
        """Build workload parameters from any graph exposing node/edge counts."""
        return cls(
            num_nodes=int(graph.num_nodes),
            num_edges=int(graph.num_edges),
            num_layers=num_layers,
            k=k,
            batch_size=batch_size,
        )


@dataclass(frozen=True)
class CostEstimate:
    """Cycle estimates per preprocessing task for one hardware configuration."""

    ordering_cycles: float
    selecting_cycles: float
    reshaping_cycles: float
    reindexing_cycles: float
    config: HardwareConfig

    @property
    def total_cycles(self) -> float:
        """Total estimated preprocessing cycles."""
        return (
            self.ordering_cycles
            + self.selecting_cycles
            + self.reshaping_cycles
            + self.reindexing_cycles
        )

    def latency_seconds(self, clock_hz: float = KERNEL_CLOCK_HZ) -> float:
        """Convert the total cycle estimate to seconds at ``clock_hz``."""
        return self.total_cycles / clock_hz

    def breakdown(self) -> Dict[str, float]:
        """Per-task cycle estimates keyed by the paper's task names."""
        return {
            "ordering": self.ordering_cycles,
            "selecting": self.selecting_cycles,
            "reshaping": self.reshaping_cycles,
            "reindexing": self.reindexing_cycles,
        }


class CostModel:
    """Evaluates Table I for (hardware configuration, workload) pairs.

    Estimates are memoized on the (workload, configuration) pair — both are
    frozen dataclasses, so the key is exact.  The serving layer re-ranks the
    whole bitstream library against the same handful of workload shapes on
    every pass, which makes the sweep a cache hit after the first request of
    each shape.
    """

    def __init__(self, clock_hz: float = KERNEL_CLOCK_HZ) -> None:
        self.clock_hz = clock_hz
        self._estimate_cache: Dict[Tuple[WorkloadParams, HardwareConfig], CostEstimate] = {}

    # --------------------------------------------------------------- Table I
    @staticmethod
    def merge_rounds(num_edges: int, upe_width: int) -> int:
        """``m = log2(e / w_upe) - 1`` merging rounds (at least zero)."""
        if num_edges <= upe_width:
            return 0
        return max(int(math.ceil(math.log2(num_edges / upe_width))) - 1, 0)

    def ordering_cycles(self, workload: WorkloadParams, config: HardwareConfig) -> float:
        """Edge-ordering estimate: ``2 * m * e / (n_upe * w_upe)``."""
        e = workload.num_edges
        if e == 0:
            return 0.0
        m = self.merge_rounds(e, config.upe_width)
        throughput = config.num_upes * config.upe_width
        # Local chunk sorting contributes one additional pass over the edges
        # even when no merging is needed.
        effective_rounds = max(m, 1)
        return 2.0 * effective_rounds * e / throughput

    def selecting_cycles(self, workload: WorkloadParams, config: HardwareConfig) -> float:
        """Unique-random-selection estimate: ``s / n_upe``."""
        return workload.total_selections / config.num_upes

    def reshaping_cycles(self, workload: WorkloadParams, config: HardwareConfig) -> float:
        """Data-reshaping estimate: ``max(n / n_scr, e / w_scr)``."""
        if workload.num_edges == 0:
            return 0.0
        return max(
            workload.num_nodes / config.num_scrs,
            workload.num_edges / config.scr_width,
        )

    def reindexing_cycles(self, workload: WorkloadParams, config: HardwareConfig) -> float:
        """Subgraph-reindexing estimate: one filter-tree lookup per endpoint.

        Not part of Table I (the paper folds it into the selection path); the
        estimate is two lookups (destination, source) per sampled edge, where
        the sampled edge count is ``s - b`` (every non-batch selection adds one
        edge).  Each lookup scans the per-seed mapping SRAM through the
        combined filter trees of all SCR slots; because every batch node's
        neighbourhood is reindexed against its own mapping, the mapping stays
        small and a lookup almost always completes in a single cycle.
        """
        sampled_edges = max(workload.total_selections - workload.batch_size, 0)
        mapping_size = workload.per_seed_subgraph_nodes
        scan_width = config.num_scrs * config.scr_width
        scans = max(math.ceil((mapping_size / 2) / scan_width), 1)
        return 2.0 * sampled_edges * scans

    # ------------------------------------------------------------- interface
    def estimate(self, workload: WorkloadParams, config: HardwareConfig) -> CostEstimate:
        """Full per-task estimate for one configuration (memoized)."""
        cache_key = (workload, config)
        cached = self._estimate_cache.get(cache_key)
        if cached is not None:
            return cached
        estimate = CostEstimate(
            ordering_cycles=self.ordering_cycles(workload, config),
            selecting_cycles=self.selecting_cycles(workload, config),
            reshaping_cycles=self.reshaping_cycles(workload, config),
            reindexing_cycles=self.reindexing_cycles(workload, config),
            config=config,
        )
        self._estimate_cache[cache_key] = estimate
        return estimate

    def best_configuration(
        self,
        workload: WorkloadParams,
        candidates: Iterable[HardwareConfig],
    ) -> Tuple[HardwareConfig, CostEstimate]:
        """Pick the candidate with the lowest total cycle estimate.

        Raises ``ValueError`` when no candidate is supplied.
        """
        best: Optional[Tuple[HardwareConfig, CostEstimate]] = None
        for config in candidates:
            est = self.estimate(workload, config)
            if best is None or est.total_cycles < best[1].total_cycles:
                best = (config, est)
        if best is None:
            raise ValueError("no candidate configurations supplied")
        return best

    def rank_configurations(
        self,
        workload: WorkloadParams,
        candidates: Iterable[HardwareConfig],
    ) -> List[Tuple[HardwareConfig, CostEstimate]]:
        """All candidates sorted by ascending total estimate."""
        scored = [(cfg, self.estimate(workload, cfg)) for cfg in candidates]
        return sorted(scored, key=lambda pair: pair[1].total_cycles)
