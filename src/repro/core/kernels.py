"""UPE and SCR kernels: controllers, schedulers and cycle accounting.

The UPE kernel (Fig. 12a) owns a pool of UPEs, a scheduler with a scoreboard
and a scratchpad; it executes edge ordering (chunked radix sort + UPE merge)
and unique random selection.  The SCR kernel (Fig. 13a) owns the reshaper and
reindexer controllers and their SCR slots; it executes data reshaping and
subgraph reindexing.

Cycle accounting is centralised in the ``*_cycle_count`` functions so the
functional simulator and the analytic performance models charge identical
costs for identical work (see DESIGN.md, "Timing model").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.config import HardwareConfig
from repro.core.merge import merge_rounds, upe_merge_sort
from repro.core.scr import SCR, Reindexer, Reshaper
from repro.core.upe import CYCLES_PER_PARTITION_PASS, DEFAULT_RADIX_BITS, UPE
from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.csc import CSCGraph
from repro.graph.convert import build_pointer_array
from repro.graph.reindex import (
    ReindexResult,
    interleave_endpoints,
    reindex_edges,
    reindex_mapping_sizes,
)
from repro.graph.sampling import (
    MODE_VECTORIZED,
    SampledSubgraph,
    check_mode,
    node_wise_sample_with_stats,
)

#: Per-neighbour-array overhead of the selection control path: building the
#: index array plus the final bitmap-driven set-partition (Fig. 16).
SELECTION_ARRAY_OVERHEAD_CYCLES: int = 1 + CYCLES_PER_PARTITION_PASS


# ---------------------------------------------------------------------------
# Cycle-count formulas shared by the simulator and the analytic models.
# ---------------------------------------------------------------------------
def key_bits_for_nodes(num_nodes: int) -> int:
    """Bits of the concatenated (dst, src) sort key for a graph of ``num_nodes``."""
    vid_bits = max(int(num_nodes - 1).bit_length(), 1) if num_nodes > 1 else 1
    return 2 * vid_bits


def ordering_cycle_count(
    num_edges: int,
    num_nodes: int,
    config: HardwareConfig,
    radix_bits: int = DEFAULT_RADIX_BITS,
) -> int:
    """Cycles for edge ordering: chunked local radix sort plus UPE merge rounds.

    Local sort: each chunk of ``w_upe`` keys takes one set-partition pass per
    radix digit; chunks are spread over the UPEs.  Merge: every merge round
    streams all edges through the UPEs at ``w_upe / 2`` elements per cycle
    (Algorithm 1), and there are ``ceil(log2(num_chunks))`` rounds.
    """
    if num_edges == 0:
        return 0
    w = config.upe_width
    n_upe = config.num_upes
    num_chunks = int(math.ceil(num_edges / w))
    passes = max(int(math.ceil(key_bits_for_nodes(num_nodes) / radix_bits)), 1)
    local = int(math.ceil(num_chunks / n_upe)) * passes * CYCLES_PER_PARTITION_PASS
    rounds = merge_rounds(num_chunks)
    per_round = int(math.ceil(num_edges / (n_upe * max(w // 2, 1))))
    return local + rounds * per_round


def selection_cycle_count(
    num_draws: int,
    num_arrays: int,
    config: HardwareConfig,
) -> int:
    """Cycles for unique random selection.

    Each draw extracts one element with a one-hot set-partition (single
    cycle); every neighbour array additionally pays the index-array setup and
    the final bitmap extraction.  Work is spread over the UPEs.
    """
    if num_draws == 0 and num_arrays == 0:
        return 0
    total = num_draws + num_arrays * SELECTION_ARRAY_OVERHEAD_CYCLES
    return int(math.ceil(total / config.num_upes))


def reshaping_cycle_count(
    sorted_dst: np.ndarray,
    num_nodes: int,
    config: HardwareConfig,
) -> int:
    """Cycles for data reshaping given the actual destination-sorted column.

    Mirrors the reshaper walk: each segment of ``w_scr`` edges is compared
    against groups of ``n_scr`` target VIDs; only targets whose count can
    still change (those not exceeding the segment maximum) are visited.  The
    walk is evaluated in closed form: because the column is sorted, each
    segment's maximum is its last element, so the per-segment target spans
    are differences of the padded segment maxima.
    """
    sorted_dst = np.asarray(sorted_dst, dtype=np.int64)
    num_edges = int(sorted_dst.shape[0])
    if num_edges == 0:
        return 0
    width = config.scr_width
    slots = config.num_scrs
    num_segments = int(math.ceil(num_edges / width))
    seg_ends = np.minimum(np.arange(1, num_segments + 1, dtype=np.int64) * width, num_edges)
    seg_maxima = sorted_dst[seg_ends - 1]
    last_targets = np.minimum(seg_maxima + 1, num_nodes)
    prev_targets = np.concatenate([np.zeros(1, dtype=np.int64), last_targets[:-1]])
    spans = last_targets - prev_targets + 1
    return int(((spans + slots - 1) // slots).sum())


def reshaping_cycle_estimate(num_edges: int, num_nodes: int, config: HardwareConfig) -> int:
    """Reshaping cycles from aggregate counts only (no edge array available).

    Upper-bounds the per-segment target span by assuming targets and segments
    advance in lockstep, which reduces to the Table I envelope
    ``max(ceil(e / w_scr), ceil(n / n_scr))`` plus one cycle per segment.
    """
    if num_edges == 0:
        return 0
    segments = int(math.ceil(num_edges / config.scr_width))
    target_groups = int(math.ceil(num_nodes / config.num_scrs))
    return max(segments, target_groups) + segments


def reindexer_scan_width(config: HardwareConfig) -> int:
    """Mapping entries the reindexer can check per cycle.

    The reindexer drives every SCR slot in parallel against the SRAM bank, so
    its effective filter-tree width is ``n_scr * w_scr``.
    """
    return config.num_scrs * config.scr_width


def reindexing_cycle_count(
    mapping_sizes: Sequence[int],
    config: HardwareConfig,
) -> int:
    """Cycles for subgraph reindexing given the mapping size at each lookup.

    Each lookup scans the SRAM bank through the filter trees of all SCR slots;
    one cycle per ``n_scr * w_scr`` mapping entries (a single cycle while the
    mapping fits in one scan, which is the common case for sampled subgraphs).
    """
    sizes = np.asarray(mapping_sizes, dtype=np.int64)
    if sizes.shape[0] == 0:
        return 0
    width = reindexer_scan_width(config)
    scans = np.maximum((sizes + width - 1) // width, 1)
    return int(scans.sum())


def reindexing_cycle_estimate(num_endpoints: int, mapping_size: int, config: HardwareConfig) -> int:
    """Reindexing cycles from aggregate counts (average mapping occupancy of 1/2)."""
    if num_endpoints == 0:
        return 0
    avg_scan = max(int(math.ceil((mapping_size / 2) / reindexer_scan_width(config))), 1)
    return num_endpoints * avg_scan


# ---------------------------------------------------------------------------
# Kernel statistics
# ---------------------------------------------------------------------------
@dataclass
class KernelStats:
    """Cycle counters per preprocessing task, as reported by the kernels."""

    ordering_cycles: int = 0
    selecting_cycles: int = 0
    reshaping_cycles: int = 0
    reindexing_cycles: int = 0
    selection_draws: int = 0
    selection_arrays: int = 0

    @property
    def total_cycles(self) -> int:
        """Total preprocessing cycles across all four tasks."""
        return (
            self.ordering_cycles
            + self.selecting_cycles
            + self.reshaping_cycles
            + self.reindexing_cycles
        )

    def breakdown(self) -> Dict[str, int]:
        """Per-task cycles keyed by the paper's task names."""
        return {
            "ordering": self.ordering_cycles,
            "selecting": self.selecting_cycles,
            "reshaping": self.reshaping_cycles,
            "reindexing": self.reindexing_cycles,
        }


# ---------------------------------------------------------------------------
# UPE kernel
# ---------------------------------------------------------------------------
class UPEKernel:
    """UPE controller + scheduler + scratchpad executing ordering and selection.

    ``mode`` selects the functional execution path of unique random selection:
    ``"vectorized"`` (default) batches whole frontiers through array
    arithmetic, ``"reference"`` runs the per-node verification loop.  Both
    produce bit-identical samples and identical cycle counts; ``detailed``
    additionally emulates the UPE datapath element by element.
    """

    def __init__(
        self,
        config: HardwareConfig,
        detailed: bool = False,
        radix_bits: int = DEFAULT_RADIX_BITS,
        mode: str = MODE_VECTORIZED,
    ) -> None:
        self.config = config
        self.detailed = detailed
        self.mode = check_mode(mode)
        self.radix_bits = radix_bits
        # The functional datapath is emulated through a single UPE instance;
        # parallelism across the ``num_upes`` physical instances is reflected
        # in the cycle formulas, not by instantiating hundreds of objects.
        self.upe = UPE(width=config.upe_width, radix_bits=radix_bits, detailed=detailed)

    # --------------------------------------------------------- edge ordering
    def edge_ordering(self, graph: COOGraph) -> Tuple[COOGraph, int]:
        """Sort the COO edge array by (dst, src); returns (sorted graph, cycles)."""
        cycles = ordering_cycle_count(
            graph.num_edges, graph.num_nodes, self.config, radix_bits=self.radix_bits
        )
        if graph.num_edges == 0:
            return graph.copy(), 0
        keys = graph.concatenate_vids()
        key_bits = key_bits_for_nodes(graph.num_nodes)
        if self.detailed:
            w = self.config.upe_width
            chunks = [keys[i : i + w] for i in range(0, keys.shape[0], w)]
            sorted_chunks = [self.upe.radix_sort_chunk(c, key_bits)[0] for c in chunks]
            merged, _ = upe_merge_sort(self.upe, sorted_chunks, key_bits)
        else:
            merged = np.sort(keys, kind="stable")
        src, dst = COOGraph.deconcatenate_vids(merged, graph.num_nodes)
        # A permutation of already-validated edges needs no range re-check.
        ordered = graph.with_edges(src, dst, validate=False)
        return ordered, cycles

    # ------------------------------------------------------------- selection
    def unique_random_selection(
        self,
        csc: CSCGraph,
        batch_nodes: Sequence[int],
        k: int,
        num_layers: int,
        seed: int = 0,
    ) -> Tuple[SampledSubgraph, int, KernelStats]:
        """Node-wise unique random selection driven by UPE set-partitioning.

        Functionally equivalent to the reference sampler: for every frontier
        node, ``k`` unique neighbours are drawn without replacement using the
        bitmap + one-hot-extraction procedure of Fig. 16.  The fast path
        executes the shared priority-draw sampler (in this kernel's ``mode``);
        ``detailed`` emulates the datapath element by element.
        """
        if self.detailed:
            return self._detailed_selection(csc, batch_nodes, k, num_layers, seed)
        sample, selection = node_wise_sample_with_stats(
            csc, batch_nodes, k, num_layers, seed=seed, mode=self.mode
        )
        cycles = selection_cycle_count(selection.draws, selection.arrays, self.config)
        stats = KernelStats(
            selecting_cycles=cycles,
            selection_draws=selection.draws,
            selection_arrays=selection.arrays,
        )
        return sample, cycles, stats

    def _detailed_selection(
        self,
        csc: CSCGraph,
        batch_nodes: Sequence[int],
        k: int,
        num_layers: int,
        seed: int,
    ) -> Tuple[SampledSubgraph, int, KernelStats]:
        """Element-by-element emulation of the Fig. 16 selection control path."""
        rng = np.random.default_rng(seed)
        batch = np.asarray(list(batch_nodes), dtype=VID_DTYPE)
        frontier = np.unique(batch)
        layers: List[COOGraph] = []
        seen = set(frontier.tolist())
        draws = 0
        arrays = 0

        for _ in range(num_layers):
            layer_src: List[int] = []
            layer_dst: List[int] = []
            next_frontier: List[int] = []
            for node in frontier.tolist():
                neighbors = np.unique(csc.in_neighbors(int(node)))
                if neighbors.size == 0:
                    continue
                arrays += 1
                take = min(k, int(neighbors.size))
                picked = self._detailed_draw(neighbors, take, rng)
                draws += take
                for src in np.sort(np.asarray(picked, dtype=VID_DTYPE)).tolist():
                    layer_src.append(int(src))
                    layer_dst.append(int(node))
                    next_frontier.append(int(src))
                    seen.add(int(src))
            layers.append(
                COOGraph(
                    src=np.array(layer_src, dtype=VID_DTYPE),
                    dst=np.array(layer_dst, dtype=VID_DTYPE),
                    num_nodes=csc.num_nodes,
                )
            )
            frontier = (
                np.unique(np.array(next_frontier, dtype=VID_DTYPE))
                if next_frontier
                else np.empty(0, dtype=VID_DTYPE)
            )
            if frontier.size == 0:
                break

        cycles = selection_cycle_count(draws, arrays, self.config)
        sample = SampledSubgraph(
            batch_nodes=batch,
            layers=list(reversed(layers)),
            sampled_nodes=np.array(sorted(seen), dtype=VID_DTYPE),
            num_nodes=csc.num_nodes,
        )
        stats = KernelStats(
            selecting_cycles=cycles, selection_draws=draws, selection_arrays=arrays
        )
        return sample, cycles, stats

    def _detailed_draw(
        self, neighbors: np.ndarray, take: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``take`` unique neighbours with explicit bitmap + set-partition.

        Emulates the control path of Fig. 16: maintain a sampled-bitmap, draw a
        random index from the unsampled bucket, extract it with a one-hot
        set-partition, and finally gather the sampled set with one more
        set-partition over the bitmap.
        """
        neighbors = np.asarray(neighbors, dtype=np.int64)
        n = neighbors.shape[0]
        bitmap = np.zeros(n, dtype=bool)
        w = self.config.upe_width
        for _ in range(take):
            unsampled_idx = np.flatnonzero(~bitmap)
            chosen = int(rng.choice(unsampled_idx))
            one_hot = np.zeros(n, dtype=bool)
            one_hot[chosen] = True
            # One-hot extraction through the UPE datapath, chunked by width.
            for start in range(0, n, w):
                self.upe.set_partition(neighbors[start : start + w], one_hot[start : start + w])
            bitmap[chosen] = True
        sampled_parts = []
        for start in range(0, n, w):
            res = self.upe.extract_by_bitmap(neighbors[start : start + w], bitmap[start : start + w])
            sampled_parts.append(res.selected)
        return np.concatenate(sampled_parts) if sampled_parts else np.empty(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# SCR kernel
# ---------------------------------------------------------------------------
class SCRKernel:
    """SCR controllers (reshaper + reindexer) executing reshaping and reindexing.

    ``mode`` selects the functional reindexing path: ``"vectorized"``
    (default) factorizes the endpoint stream with one ``np.unique``,
    ``"reference"`` walks it with the verification hash-map loop.  Both
    produce bit-identical mappings and identical cycle counts.
    """

    def __init__(
        self, config: HardwareConfig, detailed: bool = False, mode: str = MODE_VECTORIZED
    ) -> None:
        self.config = config
        self.detailed = detailed
        self.mode = check_mode(mode)
        self._scrs = [SCR(width=config.scr_width) for _ in range(config.num_scrs)]
        self.reshaper = Reshaper(self._scrs)
        # The reindexer drives all SCR slots in parallel against its SRAM bank,
        # so its effective scan width is the combined comparator count.
        self.reindexer = Reindexer(SCR(width=config.scr_width * config.num_scrs))

    # -------------------------------------------------------------- reshaping
    def data_reshaping(self, ordered: COOGraph) -> Tuple[CSCGraph, int]:
        """Build the CSC of a destination-sorted COO; returns (csc, cycles)."""
        cycles = reshaping_cycle_count(ordered.dst, ordered.num_nodes, self.config)
        if self.detailed:
            indptr = self.reshaper.build_pointer_array(ordered.dst, ordered.num_nodes)
        else:
            indptr = build_pointer_array(ordered.dst, ordered.num_nodes)
        csc = CSCGraph(
            indptr=indptr,
            indices=ordered.src.copy(),
            num_nodes=ordered.num_nodes,
            name=ordered.name,
        )
        return csc, cycles

    # ------------------------------------------------------------- reindexing
    def subgraph_reindexing(self, sample: SampledSubgraph) -> Tuple[ReindexResult, int]:
        """Renumber the sampled subgraph; returns (reindex result, cycles)."""
        combined = sample.all_edges()
        src = combined.src
        dst = combined.dst
        if self.detailed:
            self.reindexer.reset()
            new_src, new_dst = self.reindexer.reindex_edges(src, dst)
            result = ReindexResult(
                mapping=self.reindexer.mapping,
                edges=COOGraph(
                    src=new_src,
                    dst=new_dst,
                    num_nodes=max(self.reindexer.counter, 1),
                    name="reindexed",
                    validate_vids=False,
                ),
                original_vids=self.reindexer.original_vids(),
            )
            return result, self.reindexer.stats.cycles
        # Both functional paths live in reindex_edges; the assigned IDs are
        # first-occurrence codes in endpoint scan order, so the closed-form
        # occupancy yields the identical cycle charge for either mode.
        result = reindex_edges(src, dst, mode=self.mode, num_vids=combined.num_nodes)
        codes = interleave_endpoints(result.edges.src, result.edges.dst)
        cycles = reindexing_cycle_count(reindex_mapping_sizes(codes), self.config)
        return result, cycles
