"""The AutoGNN device: end-to-end preprocessing workflow in hardware.

Ties the UPE and SCR kernels together and executes the complete workflow of
Fig. 14: COO-to-CSC conversion of the input graph (edge ordering + data
reshaping), unique random selection over the CSC, subgraph reindexing, and
finally conversion of the reindexed subgraph back to CSC for the GNN.  The
device reports per-task cycle counts, wall-clock latency at the kernel clock,
and the memory traffic it generated (used for the bandwidth-utilisation
analysis of Fig. 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import DEFAULT_HARDWARE, HardwareConfig, KERNEL_CLOCK_HZ
from repro.core.kernels import SCRKernel, UPEKernel
from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.sampling import MODE_VECTORIZED, check_mode
from repro.preprocessing.pipeline import PreprocessingConfig, PreprocessingResult

#: Peak DRAM bandwidth of the device memory interface (bytes/second).  The
#: evaluation board's DDR interface is in the tens of GB/s; 64 GB/s is used as
#: the reference peak for the utilisation metric.
DEVICE_PEAK_BANDWIDTH: float = 64e9

#: Bytes per edge of COO traffic (two 32-bit VIDs).
BYTES_PER_EDGE: int = 8

#: Bytes per pointer-array entry.
BYTES_PER_POINTER: int = 8


@dataclass
class PreprocessingTiming:
    """Cycle and latency accounting of one preprocessing run.

    Attributes:
        ordering_cycles: cycles spent on edge ordering (full graph + subgraph).
        reshaping_cycles: cycles spent on data reshaping (full graph + subgraph).
        selecting_cycles: cycles spent on unique random selection.
        reindexing_cycles: cycles spent on subgraph reindexing.
        clock_hz: kernel clock used to convert cycles to seconds.
        bytes_read: DRAM bytes read while preprocessing.
        bytes_written: DRAM bytes written while preprocessing.
    """

    ordering_cycles: int = 0
    reshaping_cycles: int = 0
    selecting_cycles: int = 0
    reindexing_cycles: int = 0
    clock_hz: float = KERNEL_CLOCK_HZ
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def total_cycles(self) -> int:
        """Total preprocessing cycles."""
        return (
            self.ordering_cycles
            + self.reshaping_cycles
            + self.selecting_cycles
            + self.reindexing_cycles
        )

    @property
    def total_seconds(self) -> float:
        """Preprocessing latency in seconds at the kernel clock."""
        return self.total_cycles / self.clock_hz

    def task_seconds(self) -> Dict[str, float]:
        """Per-task latency in seconds, keyed by the paper's task names."""
        return {
            "ordering": self.ordering_cycles / self.clock_hz,
            "reshaping": self.reshaping_cycles / self.clock_hz,
            "selecting": self.selecting_cycles / self.clock_hz,
            "reindexing": self.reindexing_cycles / self.clock_hz,
        }

    def breakdown(self) -> Dict[str, int]:
        """Per-task cycle counts keyed by the paper's task names."""
        return {
            "ordering": self.ordering_cycles,
            "reshaping": self.reshaping_cycles,
            "selecting": self.selecting_cycles,
            "reindexing": self.reindexing_cycles,
        }

    def bandwidth_utilization(self, peak_bandwidth: float = DEVICE_PEAK_BANDWIDTH) -> float:
        """Fraction of peak DRAM bandwidth sustained during preprocessing."""
        if self.total_seconds <= 0:
            return 0.0
        achieved = (self.bytes_read + self.bytes_written) / self.total_seconds
        return min(achieved / peak_bandwidth, 1.0)


@dataclass
class AcceleratedPreprocessing:
    """Functional result plus timing of one AutoGNN preprocessing run."""

    result: PreprocessingResult
    timing: PreprocessingTiming
    config: HardwareConfig


class AutoGNNDevice:
    """Functional + cycle-level model of the AutoGNN accelerator.

    Args:
        config: hardware configuration (UPE/SCR count and width).
        detailed: emulate the datapaths element by element (slow, used by the
            correctness tests); the default fast path produces identical
            results and identical cycle counts through vectorised execution.
        clock_hz: kernel clock frequency.
        mode: functional execution path of the non-detailed kernels —
            ``"vectorized"`` (default) or ``"reference"``; both produce
            bit-identical results and identical cycle counts.
    """

    def __init__(
        self,
        config: HardwareConfig = DEFAULT_HARDWARE,
        detailed: bool = False,
        clock_hz: float = KERNEL_CLOCK_HZ,
        mode: str = MODE_VECTORIZED,
    ) -> None:
        self.config = config
        self.detailed = detailed
        self.mode = check_mode(mode)
        self.clock_hz = clock_hz
        self.upe_kernel = UPEKernel(config, detailed=detailed, mode=mode)
        self.scr_kernel = SCRKernel(config, detailed=detailed, mode=mode)

    # ----------------------------------------------------------------- steps
    def convert(self, graph: COOGraph) -> tuple:
        """COO-to-CSC conversion: edge ordering followed by data reshaping.

        Returns ``(ordered_coo, csc, ordering_cycles, reshaping_cycles)``.
        """
        ordered, ordering_cycles = self.upe_kernel.edge_ordering(graph)
        csc, reshaping_cycles = self.scr_kernel.data_reshaping(ordered)
        return ordered, csc, ordering_cycles, reshaping_cycles

    # ------------------------------------------------------------- end-to-end
    def preprocess(
        self,
        graph: COOGraph,
        config: Optional[PreprocessingConfig] = None,
        batch_nodes: Optional[Sequence[int]] = None,
    ) -> AcceleratedPreprocessing:
        """Run the full preprocessing workflow of Fig. 14 on ``graph``.

        A config with an explicitly chosen ``mode`` wins: the run is
        delegated to a sibling device in the requested mode (identical
        results and cycles either way — the mode only selects the execution
        path).  A config whose ``mode`` is ``None`` inherits this device's
        mode.
        """
        workload = config or PreprocessingConfig()
        requested = workload.mode or self.mode
        if requested != self.mode:
            sibling = AutoGNNDevice(
                config=self.config,
                detailed=self.detailed,
                clock_hz=self.clock_hz,
                mode=requested,
            )
            return sibling.preprocess(graph, workload, batch_nodes=batch_nodes)
        timing = PreprocessingTiming(clock_hz=self.clock_hz)

        # 1. Graph conversion of the input graph.
        ordered, csc, ordering_cycles, reshaping_cycles = self.convert(graph)
        timing.ordering_cycles += ordering_cycles
        timing.reshaping_cycles += reshaping_cycles
        timing.bytes_read += graph.num_edges * BYTES_PER_EDGE * 2  # sort passes
        timing.bytes_written += graph.num_edges * BYTES_PER_EDGE
        timing.bytes_written += (graph.num_nodes + 1) * BYTES_PER_POINTER

        # 2. Unique random selection over the CSC.
        if batch_nodes is None:
            batch_nodes = self._choose_batch_nodes(graph, workload)
        sample, selecting_cycles, _ = self.upe_kernel.unique_random_selection(
            csc,
            batch_nodes,
            workload.k,
            workload.num_layers,
            seed=workload.seed,
        )
        timing.selecting_cycles += selecting_cycles
        timing.bytes_read += sample.num_sampled_edges * BYTES_PER_EDGE

        # 3. Subgraph reindexing.
        reindex, reindexing_cycles = self.scr_kernel.subgraph_reindexing(sample)
        timing.reindexing_cycles += reindexing_cycles
        timing.bytes_written += reindex.edges.num_edges * BYTES_PER_EDGE

        # 4. The reindexed subgraph undergoes ordering + reshaping once more to
        #    produce the final CSC handed to the GNN (Section II-B).
        sub_ordered, sub_ordering_cycles = self.upe_kernel.edge_ordering(reindex.edges)
        sub_csc, sub_reshaping_cycles = self.scr_kernel.data_reshaping(sub_ordered)
        timing.ordering_cycles += sub_ordering_cycles
        timing.reshaping_cycles += sub_reshaping_cycles
        timing.bytes_read += reindex.edges.num_edges * BYTES_PER_EDGE
        timing.bytes_written += reindex.edges.num_edges * BYTES_PER_EDGE

        result = PreprocessingResult(
            ordered=ordered,
            csc=csc,
            sample=sample,
            reindex=reindex,
            subgraph_csc=sub_csc,
            stats={
                "ordering": {"cycles": float(timing.ordering_cycles)},
                "reshaping": {"cycles": float(timing.reshaping_cycles)},
                "selecting": {"cycles": float(timing.selecting_cycles)},
                "reindexing": {"cycles": float(timing.reindexing_cycles)},
            },
        )
        return AcceleratedPreprocessing(result=result, timing=timing, config=self.config)

    # -------------------------------------------------------------- utilities
    def _choose_batch_nodes(
        self, graph: COOGraph, workload: PreprocessingConfig
    ) -> np.ndarray:
        rng = np.random.default_rng(workload.seed)
        if graph.num_nodes == 0:
            return np.empty(0, dtype=VID_DTYPE)
        size = min(workload.batch_size, graph.num_nodes)
        return rng.choice(graph.num_nodes, size=size, replace=False).astype(VID_DTYPE)

    def reconfigure(self, config: HardwareConfig) -> None:
        """Swap in a new hardware configuration (kernels are rebuilt)."""
        self.config = config
        self.upe_kernel = UPEKernel(config, detailed=self.detailed, mode=self.mode)
        self.scr_kernel = SCRKernel(config, detailed=self.detailed, mode=self.mode)
