"""Single-Cycle Reducer (SCR).

An SCR executes *set-counting*: a bank of comparators evaluates every element
of an input segment against a target in parallel and a reduction tree
aggregates the per-lane results in a single cycle (Section IV-C, Fig. 13).
With an adder tree the SCR counts matches (data reshaping: one pointer-array
entry per count); with a filter tree (OR reduction) it returns the matching
payload (subgraph reindexing: looking up a VID's renumbered ID without a hash
map).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.coo import VID_DTYPE


@dataclass
class ComparatorBank:
    """A row of ``width`` comparators, each ``vid_bits`` wide.

    For reshaping the comparator reports whether ``element - target >= 0``
    (i.e. element >= target); for reindexing it reports exact equality.
    """

    width: int
    vid_bits: int = 32

    def compare_ge(self, elements: np.ndarray, target: int) -> np.ndarray:
        """Element-wise ``element >= target`` over one segment (one cycle)."""
        elements = np.asarray(elements, dtype=np.int64)
        if elements.shape[0] > self.width:
            raise ValueError(
                f"segment of {elements.shape[0]} elements exceeds SCR width {self.width}"
            )
        return elements >= target

    def compare_eq(self, elements: np.ndarray, target: int) -> np.ndarray:
        """Element-wise ``element == target`` over one segment (one cycle)."""
        elements = np.asarray(elements, dtype=np.int64)
        if elements.shape[0] > self.width:
            raise ValueError(
                f"segment of {elements.shape[0]} elements exceeds SCR width {self.width}"
            )
        return elements == target


@dataclass
class AdderTree:
    """Adder tree reducing ``width`` one-bit comparator outputs to a count."""

    width: int

    @property
    def depth(self) -> int:
        """Number of adder layers (``log2(width)``)."""
        return max(int(math.ceil(math.log2(self.width))), 1) if self.width > 1 else 1

    @property
    def output_bits(self) -> int:
        """Bit width of the root adder (``log2(width)`` as in the paper)."""
        return max(int(math.ceil(math.log2(self.width + 1))), 1)

    def reduce(self, bits: np.ndarray) -> int:
        """Sum the comparator outputs (a single-cycle reduction)."""
        return int(np.asarray(bits, dtype=np.int64).sum())


@dataclass
class FilterTree:
    """OR tree that forwards the payload of the (unique) matching lane.

    Each lane carries ``payload_bits + 1`` bits: the payload plus a hit flag,
    matching the paper's ``32 + 1``-bit filter-tree width for VIDs.
    """

    width: int
    payload_bits: int = 32

    @property
    def depth(self) -> int:
        """Number of OR layers."""
        return max(int(math.ceil(math.log2(self.width))), 1) if self.width > 1 else 1

    @property
    def lane_bits(self) -> int:
        """Bits per lane: payload plus the hit indicator."""
        return self.payload_bits + 1

    def reduce(self, hits: np.ndarray, payloads: np.ndarray) -> Tuple[bool, int]:
        """Return ``(hit, payload)`` of the matching lane (single cycle).

        If several lanes hit (which the reindexer's uniqueness invariant rules
        out), the OR tree returns the bitwise OR of their payloads, mirroring
        the hardware behaviour.
        """
        hits = np.asarray(hits, dtype=bool)
        payloads = np.asarray(payloads, dtype=np.int64)
        if not hits.any():
            return False, 0
        value = 0
        for payload in payloads[hits]:
            value |= int(payload)
        return True, value


@dataclass
class SCRStats:
    """Cycle and work counters accumulated by an SCR-driven controller."""

    cycles: int = 0
    comparisons: int = 0
    segments: int = 0

    def merge(self, other: "SCRStats") -> None:
        """Accumulate another stats object into this one."""
        self.cycles += other.cycles
        self.comparisons += other.comparisons
        self.segments += other.segments


class SCR:
    """One Single-Cycle Reducer slot: comparator bank plus reduction trees."""

    def __init__(self, width: int = 4096, vid_bits: int = 32) -> None:
        if width <= 0:
            raise ValueError("SCR width must be positive")
        self.width = int(width)
        self.comparators = ComparatorBank(width=self.width, vid_bits=vid_bits)
        self.adder_tree = AdderTree(width=self.width)
        self.filter_tree = FilterTree(width=self.width, payload_bits=vid_bits)
        self.cycles_consumed = 0

    def reset_cycles(self) -> None:
        """Zero the cycle counter."""
        self.cycles_consumed = 0

    def count_ge(self, segment: np.ndarray, target: int) -> int:
        """Count elements of ``segment`` that are >= ``target`` in one cycle."""
        bits = self.comparators.compare_ge(segment, target)
        self.cycles_consumed += 1
        return self.adder_tree.reduce(bits)

    def count_lt(self, segment: np.ndarray, target: int) -> int:
        """Count elements strictly smaller than ``target`` in one cycle."""
        bits = self.comparators.compare_ge(segment, target)
        self.cycles_consumed += 1
        return int(bits.shape[0]) - self.adder_tree.reduce(bits)

    def lookup(self, keys: np.ndarray, payloads: np.ndarray, target: int) -> Tuple[bool, int]:
        """Search for ``target`` among ``keys`` and return its payload (one cycle)."""
        hits = self.comparators.compare_eq(keys, target)
        self.cycles_consumed += 1
        return self.filter_tree.reduce(hits, np.asarray(payloads, dtype=np.int64))


class Reshaper:
    """SCR-kernel controller that builds the CSC pointer array (data reshaping).

    The reshaper streams the destination column of the sorted COO through the
    SCR slots segment by segment.  For each segment of ``scr_width`` edges the
    ``num_scrs`` slots each count, for one target VID, how many edges in the
    segment have a destination strictly smaller than the target; accumulating
    those counts over all segments yields ``pointer[v] = #edges with dst < v``
    — the set-counting formulation of Section IV-A.

    Cycle accounting: every (segment, group of ``num_scrs`` targets) pair costs
    one cycle, so the total is ``ceil(e / scr_width) * ceil(n / num_scrs)``
    bounded below by the cost-model envelope ``max(e / w_scr, n / n_scr)`` when
    the two dimensions overlap perfectly; the controller overlaps them by
    advancing targets and segments together exactly as described in the paper
    (targets and COO elements are consumed in lockstep because the COO is
    sorted), giving ``max(ceil(e / w_scr), ceil(n / n_scr))`` plus edge effects.
    """

    def __init__(self, scrs: List[SCR]) -> None:
        if not scrs:
            raise ValueError("reshaper needs at least one SCR slot")
        self.scrs = scrs
        self.stats = SCRStats()

    @property
    def num_scrs(self) -> int:
        """Number of SCR slots available to the reshaper."""
        return len(self.scrs)

    @property
    def scr_width(self) -> int:
        """Comparator lanes per slot."""
        return self.scrs[0].width

    def build_pointer_array(self, sorted_dst: np.ndarray, num_nodes: int) -> np.ndarray:
        """Build the CSC pointer array from the destination-sorted edge column."""
        sorted_dst = np.asarray(sorted_dst, dtype=np.int64).ravel()
        num_edges = int(sorted_dst.shape[0])
        width = self.scr_width
        slots = self.num_scrs

        counts = np.zeros(num_nodes + 1, dtype=np.int64)

        num_segments = max(int(math.ceil(num_edges / width)), 1) if num_edges else 0
        # Walk segments and targets in lockstep: a segment only contributes to
        # targets that can still change (sorted order lets us skip the rest).
        target = 0
        consumed_cycles = 0
        for seg_index in range(num_segments):
            seg = sorted_dst[seg_index * width : (seg_index + 1) * width]
            seg_max = int(seg[-1])
            # Targets below ``target`` were finalised by earlier segments:
            # every edge in this segment has a destination at least as large,
            # so it contributes nothing to their strict "< target" counts.
            first_target = target
            last_target = min(seg_max + 1, num_nodes)
            t = first_target
            while t <= last_target:
                group = list(range(t, min(t + slots, last_target + 1)))
                for slot, tgt in zip(self.scrs, group):
                    smaller = slot.count_lt(seg, tgt)
                    counts[tgt] += smaller
                    self.stats.comparisons += int(seg.shape[0])
                consumed_cycles += 1
                t += slots
            # Edges in this segment are all strictly smaller than any target
            # beyond last_target; add them wholesale to the remaining targets.
            counts[last_target + 1 :] += int(seg.shape[0])
            target = last_target
            self.stats.segments += 1

        self.stats.cycles += consumed_cycles
        indptr = counts
        indptr[0] = 0
        # counts[v] currently holds "#edges with dst < v" for v in [0, n].
        return indptr[: num_nodes + 1].astype(VID_DTYPE)

    def estimated_cycles(self, num_edges: int, num_nodes: int) -> int:
        """Cost-model envelope for reshaping (Table I): ``max(n/n_scr, e/w_scr)``."""
        if num_edges == 0:
            return 0
        return int(
            max(
                math.ceil(num_nodes / self.num_scrs),
                math.ceil(num_edges / self.scr_width),
            )
        )


class Reindexer:
    """SCR-kernel controller that renumbers sampled VIDs (subgraph reindexing).

    The reindexer keeps two arrays in its SRAM bank — original VIDs and their
    renumbered IDs — plus a counter of mappings created so far.  For each
    input VID an SCR checks in a single cycle whether the VID already has a
    mapping (filter-tree lookup over the SRAM contents); on a miss the counter
    value becomes the new ID and the pair is appended (Fig. 13c).
    """

    def __init__(self, scr: SCR, sram_capacity: int = 1 << 20) -> None:
        self.scr = scr
        self.sram_capacity = int(sram_capacity)
        self.original: List[int] = []
        self.renumbered: List[int] = []
        self.counter = 0
        self.stats = SCRStats()

    def reset(self) -> None:
        """Clear the mapping SRAM and counters."""
        self.original.clear()
        self.renumbered.clear()
        self.counter = 0
        self.stats = SCRStats()

    @property
    def mapping(self) -> Dict[int, int]:
        """The current original-to-new VID mapping as a dictionary."""
        return dict(zip(self.original, self.renumbered))

    def lookup_or_insert(self, vid: int) -> int:
        """Return the renumbered ID of ``vid``, creating a new mapping on a miss."""
        if len(self.original) >= self.sram_capacity:
            raise MemoryError("reindexer SRAM bank is full")
        keys = np.asarray(self.original, dtype=np.int64)
        payloads = np.asarray(self.renumbered, dtype=np.int64)
        hit = False
        value = 0
        if keys.shape[0] == 0:
            # An empty SRAM bank still takes one cycle to report a miss.
            self.stats.cycles += 1
        for chunk_start in range(0, keys.shape[0], self.scr.width):
            chunk_keys = keys[chunk_start : chunk_start + self.scr.width]
            chunk_payloads = payloads[chunk_start : chunk_start + self.scr.width]
            found, payload = self.scr.lookup(chunk_keys, chunk_payloads, int(vid))
            self.stats.cycles += 1
            self.stats.comparisons += int(chunk_keys.shape[0])
            if found:
                hit, value = True, payload
                break
        if hit:
            return int(value)
        new_id = self.counter
        self.original.append(int(vid))
        self.renumbered.append(new_id)
        self.counter += 1
        return new_id

    def reindex_edges(self, src: np.ndarray, dst: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Renumber an edge list, processing destination then source per edge.

        Matches the reference :func:`repro.graph.reindex.reindex_edges` order so
        the resulting IDs are bit-identical to the software mapping.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        new_src = np.empty_like(src)
        new_dst = np.empty_like(dst)
        for i in range(src.shape[0]):
            new_dst[i] = self.lookup_or_insert(int(dst[i]))
            new_src[i] = self.lookup_or_insert(int(src[i]))
        return new_src.astype(VID_DTYPE), new_dst.astype(VID_DTYPE)

    def original_vids(self) -> np.ndarray:
        """Original VIDs ordered by their renumbered ID."""
        result = np.empty(len(self.original), dtype=VID_DTYPE)
        for orig, new in zip(self.original, self.renumbered):
            result[new] = orig
        return result
