"""Hardware configuration and FPGA resource model.

The paper implements AutoGNN on a 7 nm Xilinx VPK180 (4.1 M LUTs), splits the
reconfigurable region 70:30 between UPEs and SCRs, and parameterises both
blocks by instance count and width (Section V-B, Table III).  This module
captures those knobs and the LUT cost of each block so configurations can be
validated against a board's resource budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

#: Clock frequency of the HW-kernel region (enterprise-FPGA class).
KERNEL_CLOCK_HZ: float = 300e6

#: Clock of the ICAP reconfiguration port (Section V-B).
ICAP_CLOCK_HZ: float = 100e6

#: Fraction of the reconfigurable region devoted to SCRs (Table III / Fig. 22).
DEFAULT_SCR_AREA_FRACTION: float = 0.30

#: Approximate LUT cost of a single UPE lane element.  One element of UPE width
#: needs a prefix-sum adder slice plus a relocation multiplexer column; the
#: constant is chosen so that the paper's reference configuration (240 UPEs of
#: width 64) roughly fills 70 % of a 4.1 M-LUT device.
LUTS_PER_UPE_ELEMENT: int = 180

#: Approximate LUT cost per SCR comparator lane (32-bit comparator + its share
#: of the adder/filter tree); sized so 8 SCR slots of width ~4096 fill the
#: 30 % region of the VPK180.
LUTS_PER_SCR_ELEMENT: int = 36


@dataclass(frozen=True)
class FPGAResources:
    """Physical resources of one FPGA board.

    Attributes:
        name: board name.
        luts: total LUT count.
        price_usd: street price used by the cost-effectiveness study (Fig. 26).
        bram_mbytes: on-chip SRAM available to the reindexer mapping bank.
        dram_gbytes: device DRAM for staged bitstreams and graph storage.
        dram_bandwidth: peak device-DRAM bandwidth in bytes/second (cheaper
            boards ship narrower memory interfaces, which bounds the streaming
            datapaths of AutoGNN).
    """

    name: str
    luts: int
    price_usd: float
    bram_mbytes: float = 64.0
    dram_gbytes: float = 16.0
    dram_bandwidth: float = 64e9

    def reconfigurable_luts(self, shell_fraction: float = 0.12) -> int:
        """LUTs available to the HW-kernel after subtracting the fixed shell."""
        return int(self.luts * (1.0 - shell_fraction))


#: The evaluation board used by the paper's prototype.
VPK180 = FPGAResources(name="VPK180", luts=4_100_000, price_usd=14_000.0)


@dataclass(frozen=True)
class HardwareConfig:
    """One concrete AutoGNN hardware configuration (a bitstream's parameters).

    Attributes:
        num_upes: number of UPE instances.
        upe_width: elements processed per UPE set-partition pass.
        num_scrs: number of SCR slots.
        scr_width: comparator lanes per SCR slot.
        scr_area_fraction: share of the reconfigurable region given to SCRs.
        board: the FPGA the configuration targets.
    """

    num_upes: int = 240
    upe_width: int = 64
    num_scrs: int = 1
    scr_width: int = 4096
    scr_area_fraction: float = DEFAULT_SCR_AREA_FRACTION
    board: FPGAResources = VPK180

    def __post_init__(self) -> None:
        if self.num_upes <= 0 or self.upe_width <= 0:
            raise ValueError("UPE count and width must be positive")
        if self.num_scrs <= 0 or self.scr_width <= 0:
            raise ValueError("SCR count and width must be positive")
        if not 0.0 < self.scr_area_fraction < 1.0:
            raise ValueError("scr_area_fraction must be in (0, 1)")
        if self.upe_width & (self.upe_width - 1):
            raise ValueError("upe_width must be a power of two")
        if self.scr_width & (self.scr_width - 1):
            raise ValueError("scr_width must be a power of two")

    # ------------------------------------------------------------- resources
    @property
    def upe_luts(self) -> int:
        """Total LUTs consumed by the UPE region."""
        return self.num_upes * self.upe_width * LUTS_PER_UPE_ELEMENT

    @property
    def scr_luts(self) -> int:
        """Total LUTs consumed by the SCR region."""
        return self.num_scrs * self.scr_width * LUTS_PER_SCR_ELEMENT

    @property
    def total_luts(self) -> int:
        """LUTs consumed by the whole HW-kernel."""
        return self.upe_luts + self.scr_luts

    def upe_region_budget(self) -> int:
        """LUT budget of the UPE reconfigurable region on the target board."""
        return int(self.board.reconfigurable_luts() * (1.0 - self.scr_area_fraction))

    def scr_region_budget(self) -> int:
        """LUT budget of the SCR reconfigurable region on the target board."""
        return int(self.board.reconfigurable_luts() * self.scr_area_fraction)

    def fits(self) -> bool:
        """True when both regions fit within their budgets."""
        return self.upe_luts <= self.upe_region_budget() and self.scr_luts <= self.scr_region_budget()

    def utilization(self) -> float:
        """Fraction of the reconfigurable LUTs the configuration occupies."""
        budget = self.board.reconfigurable_luts()
        return self.total_luts / budget if budget else 0.0

    # ----------------------------------------------------------- derivations
    def with_upe(self, num_upes: Optional[int] = None, upe_width: Optional[int] = None) -> "HardwareConfig":
        """Return a copy with the UPE parameters replaced."""
        return replace(
            self,
            num_upes=self.num_upes if num_upes is None else num_upes,
            upe_width=self.upe_width if upe_width is None else upe_width,
        )

    def with_scr(self, num_scrs: Optional[int] = None, scr_width: Optional[int] = None) -> "HardwareConfig":
        """Return a copy with the SCR parameters replaced."""
        return replace(
            self,
            num_scrs=self.num_scrs if num_scrs is None else num_scrs,
            scr_width=self.scr_width if scr_width is None else scr_width,
        )

    def key(self) -> str:
        """Stable identifier used to look up the matching bitstream."""
        return (
            f"upe{self.num_upes}x{self.upe_width}_scr{self.num_scrs}x{self.scr_width}"
            f"_area{int(self.scr_area_fraction * 100)}"
        )


def max_upes_for_budget(budget_luts: int, upe_width: int) -> int:
    """Largest UPE count of the given width that fits in ``budget_luts``."""
    per_upe = upe_width * LUTS_PER_UPE_ELEMENT
    return max(budget_luts // per_upe, 1) if per_upe else 1


def max_scr_width_for_budget(budget_luts: int, num_scrs: int) -> int:
    """Largest power-of-two SCR width for ``num_scrs`` slots within the budget."""
    per_lane = num_scrs * LUTS_PER_SCR_ELEMENT
    if per_lane <= 0:
        return 1
    width = budget_luts // per_lane
    if width < 1:
        return 1
    return 2 ** int(math.floor(math.log2(width)))


def scaled_default_config(board: FPGAResources = VPK180) -> HardwareConfig:
    """Paper-default configuration (Table III) scaled to fit ``board``.

    Uses the 70:30 UPE:SCR area split, UPE width 64 and a single SCR slot,
    maximising the UPE count and SCR width within the board's budget.
    """
    scr_fraction = DEFAULT_SCR_AREA_FRACTION
    reconfigurable = board.reconfigurable_luts()
    upe_budget = int(reconfigurable * (1.0 - scr_fraction))
    scr_budget = int(reconfigurable * scr_fraction)
    # Round the UPE count down to a power of two so the default configuration
    # coincides with one of the staged bitstream variants (Section V-B).
    num_upes = max_upes_for_budget(upe_budget, 64)
    num_upes = 2 ** int(math.floor(math.log2(num_upes))) if num_upes > 1 else 1
    scr_width = max_scr_width_for_budget(scr_budget, 1)
    return HardwareConfig(
        num_upes=num_upes,
        upe_width=64,
        num_scrs=1,
        scr_width=scr_width,
        scr_area_fraction=scr_fraction,
        board=board,
    )


#: Default hardware configuration used across examples and benchmarks.
DEFAULT_HARDWARE = scaled_default_config()
