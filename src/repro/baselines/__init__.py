"""Compared preprocessing systems.

The paper compares AutoGNN against four baselines (Section VI): CPU and GPU
preprocessing through DGL, the GPU-based gSampler (``GSamp``) and an
FPGA-HBM streaming sampler (``FPGA``), plus — in Fig. 27 — a set of
single-function accelerators (merge-sort, insertion-sort, stream sampler and
FLAG).  Every system implements the common :class:`~repro.baselines.base.
PreprocessingSystem` interface so the benchmark harness can sweep them
uniformly.
"""

from repro.baselines.base import PreprocessingSystem, SystemLatency
from repro.baselines.calibration import CPU_CALIBRATION, GPU_CALIBRATION, BaselineCalibration
from repro.baselines.cpu import CPUPreprocessingSystem
from repro.baselines.gpu import GPUPreprocessingSystem, GPUSerializationAnalysis
from repro.baselines.gsamp import GSampSystem
from repro.baselines.fpga_sampler import FPGASamplerSystem
from repro.baselines.other_accels import (
    SingleFunctionAccelerator,
    MergeSortAccelerator,
    InsertionSortAccelerator,
    StreamSamplerAccelerator,
    FLAGAccelerator,
    AcceleratorDeployment,
    OTHER_ACCELERATORS,
)

__all__ = [
    "PreprocessingSystem",
    "SystemLatency",
    "BaselineCalibration",
    "CPU_CALIBRATION",
    "GPU_CALIBRATION",
    "CPUPreprocessingSystem",
    "GPUPreprocessingSystem",
    "GPUSerializationAnalysis",
    "GSampSystem",
    "FPGASamplerSystem",
    "SingleFunctionAccelerator",
    "MergeSortAccelerator",
    "InsertionSortAccelerator",
    "StreamSamplerAccelerator",
    "FLAGAccelerator",
    "AcceleratorDeployment",
    "OTHER_ACCELERATORS",
]
