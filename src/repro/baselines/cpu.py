"""CPU (DGL on the host Xeon) preprocessing baseline.

Functionally the CPU baseline is the reference pipeline; its timing model uses
the :data:`~repro.baselines.calibration.CPU_CALIBRATION` throughput constants.
The CPU keeps the graph in host memory, so the only transfer is shipping the
sampled subgraph (plus gathered features) to the GPU for inference.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.metrics import TaskLatencies
from repro.system.base import PreprocessingSystem, SystemLatency
from repro.baselines.calibration import CPU_CALIBRATION, BaselineCalibration
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.workload import WorkloadProfile


def software_task_latencies(
    workload: WorkloadProfile, calibration: BaselineCalibration
) -> TaskLatencies:
    """Per-task latency of a software (CPU/GPU) preprocessing implementation.

    * Ordering sorts every edge: ``e / ordering_rate``.
    * Reshaping scans the sorted edge array once: ``e / reshaping_rate``.
    * Selection performs ``s`` unique draws, each paying a fixed cost plus a
      per-neighbour component proportional to the average degree.
    * Reindexing performs two map lookups per sampled edge.
    """
    e = workload.num_edges
    s = workload.total_selections
    ordering = calibration.ordering_fixed_seconds + e / calibration.ordering_edges_per_second
    reshaping = calibration.reshaping_fixed_seconds + e / calibration.reshaping_edges_per_second
    selecting = s * (
        calibration.selection_seconds_per_draw
        + workload.avg_degree * calibration.selection_seconds_per_neighbor
    )
    reindexing = 2 * workload.sampled_edges * calibration.reindexing_seconds_per_endpoint
    return TaskLatencies(
        ordering=ordering,
        reshaping=reshaping,
        selecting=selecting,
        reindexing=reindexing,
    )


def software_bandwidth_utilization(
    workload: WorkloadProfile,
    latencies: TaskLatencies,
    calibration: BaselineCalibration,
) -> float:
    """Sustained fraction of peak DRAM bandwidth for a software implementation."""
    if latencies.total <= 0:
        return 0.0
    bytes_moved = (
        workload.graph_bytes * 3  # read for sort, write sorted, read for reshape
        + workload.subgraph_bytes
    ) * calibration.access_amplification
    achieved = bytes_moved / latencies.total
    return min(achieved / calibration.memory_bandwidth, 1.0)


class CPUPreprocessingSystem(PreprocessingSystem):
    """DGL preprocessing on the host CPU."""

    name = "CPU"

    def __init__(
        self,
        calibration: BaselineCalibration = CPU_CALIBRATION,
        pcie: Optional[PCIeLink] = None,
    ) -> None:
        super().__init__(pcie=pcie)
        self.calibration = calibration

    def replicate(self) -> "CPUPreprocessingSystem":
        clone = type(self)(calibration=self.calibration, pcie=self.pcie)
        clone.name = self.name
        return clone

    def evaluate(self, workload: WorkloadProfile) -> SystemLatency:
        preprocessing = software_task_latencies(workload, self.calibration)
        transfers = TransferBreakdown(
            # Only the sampled subgraph and its features move to the GPU.
            host_to_gpu=self.pcie.best_path(workload.subgraph_bytes),
        )
        utilization = software_bandwidth_utilization(workload, preprocessing, self.calibration)
        return SystemLatency(
            preprocessing=preprocessing,
            transfers=transfers,
            bandwidth_utilization=utilization,
            extras={"serialized_fraction": self.calibration.serialized_fraction},
        )
