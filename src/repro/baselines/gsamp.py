"""GSamp: gSampler-style GPU-accelerated graph sampling.

gSampler (SOSP'23) compiles matrix-centric sampling APIs through a data-flow
IR with kernel fusion and super-batching; the paper reports it accelerates the
sampling stage by ~7.5x over the DGL GPU baseline while graph conversion still
runs through the regular GPU path.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.metrics import TaskLatencies
from repro.system.base import PreprocessingSystem, SystemLatency
from repro.baselines.calibration import GPU_CALIBRATION, BaselineCalibration
from repro.baselines.cpu import software_bandwidth_utilization, software_task_latencies
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.workload import WorkloadProfile

#: Speedup of the sampling stage (selection + reindexing) over the GPU baseline.
SAMPLING_SPEEDUP: float = 7.5


class GSampSystem(PreprocessingSystem):
    """GPU preprocessing with gSampler-accelerated sampling."""

    name = "GSamp"

    def __init__(
        self,
        sampling_speedup: float = SAMPLING_SPEEDUP,
        calibration: BaselineCalibration = GPU_CALIBRATION,
        pcie: Optional[PCIeLink] = None,
    ) -> None:
        super().__init__(pcie=pcie)
        if sampling_speedup <= 0:
            raise ValueError("sampling_speedup must be positive")
        self.sampling_speedup = sampling_speedup
        self.calibration = calibration

    def replicate(self) -> "GSampSystem":
        clone = type(self)(
            sampling_speedup=self.sampling_speedup,
            calibration=self.calibration,
            pcie=self.pcie,
        )
        clone.name = self.name
        return clone

    def evaluate(self, workload: WorkloadProfile) -> SystemLatency:
        gpu = software_task_latencies(workload, self.calibration)
        preprocessing = TaskLatencies(
            ordering=gpu.ordering,
            reshaping=gpu.reshaping,
            selecting=gpu.selecting / self.sampling_speedup,
            reindexing=gpu.reindexing / self.sampling_speedup,
        )
        transfers = TransferBreakdown(
            host_to_gpu=self.pcie.dma_main(workload.graph_bytes),
        )
        utilization = software_bandwidth_utilization(workload, preprocessing, self.calibration)
        return SystemLatency(
            preprocessing=preprocessing,
            transfers=transfers,
            bandwidth_utilization=utilization,
            extras={"sampling_speedup": self.sampling_speedup},
        )
