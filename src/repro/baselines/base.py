"""Compatibility re-export of the shared preprocessing-system interface.

The interface itself lives in :mod:`repro.system.base` so that both the
software baselines and the AutoGNN variants can implement it without import
cycles; importing it from here keeps the baseline modules self-contained.
"""

from repro.system.base import PreprocessingSystem, SystemLatency

__all__ = ["PreprocessingSystem", "SystemLatency"]
