"""FPGA: an FPGA-HBM streaming sampler (sampling-only accelerator).

The ``FPGA`` baseline (ASAP'24 streaming sampler) accelerates sampling ~12x
over the GPU baseline but implements *only* sampling: graph conversion still
runs on the GPU, so every pass moves the raw graph to the GPU, the converted
CSC from the GPU to the FPGA, and the sampled subgraph back — the transfer
traffic the paper measures at ~24.7 % of end-to-end latency.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.metrics import TaskLatencies
from repro.system.base import PreprocessingSystem, SystemLatency
from repro.baselines.calibration import GPU_CALIBRATION, BaselineCalibration
from repro.baselines.cpu import software_bandwidth_utilization, software_task_latencies
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.workload import WorkloadProfile

#: Speedup of the sampling stage (selection + reindexing) over the GPU baseline.
SAMPLING_SPEEDUP: float = 12.0


class FPGASamplerSystem(PreprocessingSystem):
    """GPU graph conversion plus an FPGA-HBM streaming sampler."""

    name = "FPGA"

    def __init__(
        self,
        sampling_speedup: float = SAMPLING_SPEEDUP,
        calibration: BaselineCalibration = GPU_CALIBRATION,
        pcie: Optional[PCIeLink] = None,
    ) -> None:
        super().__init__(pcie=pcie)
        if sampling_speedup <= 0:
            raise ValueError("sampling_speedup must be positive")
        self.sampling_speedup = sampling_speedup
        self.calibration = calibration

    def replicate(self) -> "FPGASamplerSystem":
        clone = type(self)(
            sampling_speedup=self.sampling_speedup,
            calibration=self.calibration,
            pcie=self.pcie,
        )
        clone.name = self.name
        return clone

    def evaluate(self, workload: WorkloadProfile) -> SystemLatency:
        gpu = software_task_latencies(workload, self.calibration)
        preprocessing = TaskLatencies(
            ordering=gpu.ordering,
            reshaping=gpu.reshaping,
            selecting=gpu.selecting / self.sampling_speedup,
            reindexing=gpu.reindexing / self.sampling_speedup,
        )
        transfers = TransferBreakdown(
            # Conversion runs on the GPU: upload the raw graph first.
            host_to_gpu=self.pcie.dma_main(workload.graph_bytes),
            # The converted CSC then moves from the GPU to the FPGA sampler.
            gpu_to_accelerator=self.pcie.dma_main(workload.csc_bytes),
            # The sampled subgraph returns to the GPU for inference.
            accelerator_to_gpu=self.pcie.best_path(workload.subgraph_bytes),
        )
        utilization = software_bandwidth_utilization(workload, preprocessing, self.calibration)
        return SystemLatency(
            preprocessing=preprocessing,
            transfers=transfers,
            bandwidth_utilization=utilization,
            extras={"sampling_speedup": self.sampling_speedup},
        )
