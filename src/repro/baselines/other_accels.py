"""Existing single-function accelerators (Fig. 27).

The paper evaluates four published designs that each accelerate a single
preprocessing stage — a parallel hardware merge sorter, the Xilinx
insertion-sort application (ordering), an FPGA-HBM stream sampler and FLAG's
precomputation/vector-quantisation engine (selection) — in three deployments:

* ``Pure``: the accelerator alone occupies the whole FPGA; every other stage
  stays on the GPU, with the full host-GPU-FPGA transfer traffic.
* ``SCR``: the FPGA is split 30:70; AutoGNN's SCR occupies the 30 % region and
  accelerates reshaping and reindexing, the accelerator keeps the 70 % region.
* ``Auto``: the 70 % region is subdivided and AutoGNN's UPE is added to one
  half, enabling end-to-end preprocessing on the FPGA (akin to AutoPre).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.analysis.metrics import TaskLatencies
from repro.system.base import PreprocessingSystem, SystemLatency
from repro.baselines.calibration import GPU_CALIBRATION, BaselineCalibration
from repro.baselines.cpu import software_task_latencies
from repro.core.config import KERNEL_CLOCK_HZ, HardwareConfig, scaled_default_config
from repro.core.kernels import (
    ordering_cycle_count,
    reshaping_cycle_estimate,
    reindexing_cycle_estimate,
    selection_cycle_count,
)
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.workload import WorkloadProfile


class AcceleratorDeployment(Enum):
    """How a single-function accelerator is deployed on the FPGA (Fig. 27)."""

    PURE = "pure"
    WITH_SCR = "scr"
    AUTO = "auto"


@dataclass(frozen=True)
class AcceleratorSpec:
    """A published single-function accelerator.

    Attributes:
        key: short identifier used in benchmark output.
        description: one-line description of the design.
        stage: ``"ordering"`` or ``"sampling"`` — the stage it accelerates.
        speedup_vs_gpu: stage speedup over the DGL GPU baseline when the
            accelerator occupies the full FPGA.
    """

    key: str
    description: str
    stage: str
    speedup_vs_gpu: float


#: The four designs of Fig. 27.
MERGE_SORT = AcceleratorSpec(
    key="Merge",
    description="parallel hardware merge sorter (FCCM'16)",
    stage="ordering",
    speedup_vs_gpu=6.0,
)
INSERTION_SORT = AcceleratorSpec(
    key="Xilinx",
    description="Xilinx database-sorting application (insertion sort)",
    stage="ordering",
    speedup_vs_gpu=2.5,
)
STREAM_SAMPLER = AcceleratorSpec(
    key="FPGA",
    description="FPGA-HBM streaming GNN sampler (ASAP'24)",
    stage="sampling",
    speedup_vs_gpu=12.0,
)
FLAG = AcceleratorSpec(
    key="FLAG",
    description="FLAG low-latency GNN inference service (DAC'25)",
    stage="sampling",
    speedup_vs_gpu=8.0,
)

OTHER_ACCELERATORS: List[AcceleratorSpec] = [MERGE_SORT, INSERTION_SORT, STREAM_SAMPLER, FLAG]


def _autognn_scr_latencies(workload: WorkloadProfile, config: HardwareConfig) -> Dict[str, float]:
    """Reshaping + reindexing latency when AutoGNN's SCR handles them."""
    reshaping_cycles = reshaping_cycle_estimate(workload.num_edges, workload.num_nodes, config)
    reindexing_cycles = reindexing_cycle_estimate(
        2 * workload.sampled_edges, workload.per_seed_subgraph_nodes, config
    )
    return {
        "reshaping": reshaping_cycles / KERNEL_CLOCK_HZ,
        "reindexing": reindexing_cycles / KERNEL_CLOCK_HZ,
    }


def _autognn_upe_latencies(
    workload: WorkloadProfile, config: HardwareConfig
) -> Dict[str, float]:
    """Ordering + selection latency when AutoGNN's UPE handles them."""
    ordering_cycles = ordering_cycle_count(workload.num_edges, workload.num_nodes, config)
    arrays = max(workload.total_selections // max(workload.k, 1), 1)
    selecting_cycles = selection_cycle_count(workload.total_selections, arrays, config)
    return {
        "ordering": ordering_cycles / KERNEL_CLOCK_HZ,
        "selecting": selecting_cycles / KERNEL_CLOCK_HZ,
    }


class SingleFunctionAccelerator(PreprocessingSystem):
    """One published accelerator in one of the three Fig. 27 deployments."""

    def __init__(
        self,
        spec: AcceleratorSpec,
        deployment: AcceleratorDeployment = AcceleratorDeployment.PURE,
        calibration: BaselineCalibration = GPU_CALIBRATION,
        pcie: Optional[PCIeLink] = None,
        base_config: Optional[HardwareConfig] = None,
    ) -> None:
        super().__init__(pcie=pcie)
        self.spec = spec
        self.deployment = deployment
        self.calibration = calibration
        self.base_config = base_config or scaled_default_config()
        self.name = f"{spec.key}-{deployment.value}"

    # ----------------------------------------------------------------- model
    def _accelerator_area_fraction(self) -> float:
        """FPGA area available to the published accelerator in this deployment."""
        if self.deployment is AcceleratorDeployment.PURE:
            return 1.0
        if self.deployment is AcceleratorDeployment.WITH_SCR:
            return 0.7
        return 0.35  # AUTO: the 70 % region is split with AutoGNN's UPE

    def evaluate(self, workload: WorkloadProfile) -> SystemLatency:
        gpu = software_task_latencies(workload, self.calibration)
        area = self._accelerator_area_fraction()
        stage_speedup = self.spec.speedup_vs_gpu * area

        latencies = gpu.as_dict()
        if self.spec.stage == "ordering":
            latencies["ordering"] = gpu.ordering / max(stage_speedup, 1e-9)
        else:
            latencies["selecting"] = gpu.selecting / max(stage_speedup, 1e-9)
            latencies["reindexing"] = gpu.reindexing / max(stage_speedup, 1e-9)

        transfers = TransferBreakdown()
        if self.deployment in (AcceleratorDeployment.PURE, AcceleratorDeployment.WITH_SCR):
            # Stages still split between GPU and FPGA: repeated handoffs.
            transfers.host_to_gpu = self.pcie.dma_main(workload.graph_bytes)
            transfers.gpu_to_accelerator = self.pcie.dma_main(workload.csc_bytes)
            transfers.accelerator_to_gpu = self.pcie.best_path(workload.subgraph_bytes)
        else:
            # End-to-end on the FPGA: only updates in, subgraph out.
            transfers.host_to_accelerator = self.pcie.best_path(workload.update_bytes)
            transfers.accelerator_to_gpu = self.pcie.best_path(workload.subgraph_bytes)

        if self.deployment in (AcceleratorDeployment.WITH_SCR, AcceleratorDeployment.AUTO):
            scr_config = self.base_config
            scr = _autognn_scr_latencies(workload, scr_config)
            latencies["reshaping"] = scr["reshaping"]
            latencies["reindexing"] = min(latencies["reindexing"], scr["reindexing"])

        if self.deployment is AcceleratorDeployment.AUTO:
            # AutoGNN's UPE (half of the UPE region) covers the stage the
            # published accelerator does not.
            half_upe = self.base_config.with_upe(num_upes=max(self.base_config.num_upes // 2, 1))
            upe = _autognn_upe_latencies(workload, half_upe)
            if self.spec.stage == "ordering":
                latencies["selecting"] = upe["selecting"]
            else:
                latencies["ordering"] = upe["ordering"]

        preprocessing = TaskLatencies.from_dict(latencies)
        return SystemLatency(
            preprocessing=preprocessing,
            transfers=transfers,
            extras={
                "deployment": float(list(AcceleratorDeployment).index(self.deployment)),
                "stage_speedup": stage_speedup,
            },
        )


class MergeSortAccelerator(SingleFunctionAccelerator):
    """Parallel hardware merge sorter."""

    def __init__(self, deployment: AcceleratorDeployment = AcceleratorDeployment.PURE, **kwargs) -> None:
        super().__init__(MERGE_SORT, deployment, **kwargs)


class InsertionSortAccelerator(SingleFunctionAccelerator):
    """Xilinx insertion-sort database application."""

    def __init__(self, deployment: AcceleratorDeployment = AcceleratorDeployment.PURE, **kwargs) -> None:
        super().__init__(INSERTION_SORT, deployment, **kwargs)


class StreamSamplerAccelerator(SingleFunctionAccelerator):
    """FPGA-HBM streaming sampler."""

    def __init__(self, deployment: AcceleratorDeployment = AcceleratorDeployment.PURE, **kwargs) -> None:
        super().__init__(STREAM_SAMPLER, deployment, **kwargs)


class FLAGAccelerator(SingleFunctionAccelerator):
    """FLAG precomputation + vector-quantisation inference service."""

    def __init__(self, deployment: AcceleratorDeployment = AcceleratorDeployment.PURE, **kwargs) -> None:
        super().__init__(FLAG, deployment, **kwargs)
