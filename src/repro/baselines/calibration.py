"""Calibration constants of the CPU and GPU preprocessing models.

The paper's CPU/GPU baselines run DGL on a 128-core Xeon and an RTX 3090.  We
cannot measure those machines here, so each preprocessing task gets an
analytic throughput model whose constants are calibrated to land the paper's
relative results:

* preprocessing dominates the GPU service latency (~70 % on average, growing
  with graph size — Fig. 5);
* sampling dominates small graphs, conversion (reshaping in particular)
  dominates graphs beyond ~10 M edges (Fig. 6);
* on the GPU, 64.1 % of the redesigned set-partition/set-count execution
  remains serialized (Fig. 10);
* end-to-end, GPU preprocessing is ~3.4x faster than CPU (Fig. 18).

All constants live here so the calibration is visible and adjustable in one
place; EXPERIMENTS.md records the resulting paper-vs-measured ratios.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BaselineCalibration:
    """Per-task throughput constants of a software preprocessing baseline.

    Attributes:
        name: system name the constants describe.
        ordering_edges_per_second: sustained edge-sort throughput.
        ordering_fixed_seconds: fixed per-pass sort overhead (kernel launches,
            allocations) — dominates small graphs.
        reshaping_edges_per_second: sustained pointer-array build throughput.
        reshaping_fixed_seconds: fixed per-pass reshaping overhead.
        selection_seconds_per_draw: fixed cost of one unique random draw.
        selection_seconds_per_neighbor: extra per-neighbour scan cost of a draw.
        reindexing_seconds_per_endpoint: cost of one hash-map lookup/insert.
        serialized_fraction: fraction of the redesigned-kernel execution that
            remains serialized on this platform (Fig. 10a).
        memory_bandwidth: peak DRAM bandwidth in bytes/second.
        access_amplification: extra DRAM traffic factor caused by uncoalesced
            and atomic accesses (used by the bandwidth-utilisation metric).
    """

    name: str
    ordering_edges_per_second: float
    reshaping_edges_per_second: float
    selection_seconds_per_draw: float
    selection_seconds_per_neighbor: float
    reindexing_seconds_per_endpoint: float
    serialized_fraction: float
    memory_bandwidth: float
    access_amplification: float = 1.0
    ordering_fixed_seconds: float = 0.0
    reshaping_fixed_seconds: float = 0.0


#: DGL preprocessing on the 128-core Xeon host.
CPU_CALIBRATION = BaselineCalibration(
    name="CPU",
    ordering_edges_per_second=150e6,
    reshaping_edges_per_second=400e6,
    selection_seconds_per_draw=220e-9,
    selection_seconds_per_neighbor=1.2e-9,
    reindexing_seconds_per_endpoint=160e-9,
    serialized_fraction=0.95,
    memory_bandwidth=200e9,
    access_amplification=2.0,
    ordering_fixed_seconds=5e-3,
    reshaping_fixed_seconds=5e-3,
)

#: DGL preprocessing on the RTX 3090.
GPU_CALIBRATION = BaselineCalibration(
    name="GPU",
    ordering_edges_per_second=2.2e9,
    reshaping_edges_per_second=620e6,
    selection_seconds_per_draw=62e-9,
    selection_seconds_per_neighbor=0.25e-9,
    reindexing_seconds_per_endpoint=20e-9,
    serialized_fraction=0.641,
    memory_bandwidth=936e9,
    access_amplification=18.0,
    ordering_fixed_seconds=8e-3,
    reshaping_fixed_seconds=8e-3,
)
