"""GPU (DGL on the RTX 3090) preprocessing baseline.

The GPU executes ordering massively in parallel but the remaining tasks are
throttled by atomics and synchronisation (Section III, Fig. 10).  Because the
GPU's memory must be released for model execution, the full graph is fetched
from the host again before every preprocessing pass (Section VI-B), which is
the dominant transfer cost the paper charges to this baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.metrics import TaskLatencies, breakdown_percentages
from repro.system.base import PreprocessingSystem, SystemLatency
from repro.baselines.calibration import GPU_CALIBRATION, BaselineCalibration
from repro.baselines.cpu import software_bandwidth_utilization, software_task_latencies
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.workload import WorkloadProfile


class GPUPreprocessingSystem(PreprocessingSystem):
    """DGL preprocessing on the GPU that also runs inference."""

    name = "GPU"

    def __init__(
        self,
        calibration: BaselineCalibration = GPU_CALIBRATION,
        pcie: Optional[PCIeLink] = None,
    ) -> None:
        super().__init__(pcie=pcie)
        self.calibration = calibration

    def replicate(self) -> "GPUPreprocessingSystem":
        clone = type(self)(calibration=self.calibration, pcie=self.pcie)
        clone.name = self.name
        return clone

    def evaluate(self, workload: WorkloadProfile) -> SystemLatency:
        preprocessing = software_task_latencies(workload, self.calibration)
        transfers = TransferBreakdown(
            # The whole graph is re-uploaded before every preprocessing pass.
            host_to_gpu=self.pcie.dma_main(workload.graph_bytes),
        )
        utilization = software_bandwidth_utilization(workload, preprocessing, self.calibration)
        return SystemLatency(
            preprocessing=preprocessing,
            transfers=transfers,
            bandwidth_utilization=utilization,
            extras={"serialized_fraction": self.calibration.serialized_fraction},
        )


@dataclass
class GPUSerializationAnalysis:
    """Reproduces the serialized-computation analysis of Fig. 10.

    Even with the redesigned set-partitioning / set-counting kernels, the GPU
    must synchronise shared counters and map structures; the serialized share
    of execution and its split across the three non-parallelizable tasks are
    derived from the per-task latencies.
    """

    calibration: BaselineCalibration = GPU_CALIBRATION

    #: Fraction of each task's execution that requires serialization on a GPU.
    TASK_SERIAL_FRACTION: Dict[str, float] = None  # set in __post_init__

    def __post_init__(self) -> None:
        if self.TASK_SERIAL_FRACTION is None:
            self.TASK_SERIAL_FRACTION = {
                "ordering": 0.02,  # radix sort parallelises almost completely
                "reshaping": 0.72,  # pointer-array counters need atomics
                "selecting": 0.78,  # uniqueness set is shared state
                "reindexing": 0.80,  # mapping table is shared state
            }

    def serialized_seconds(self, latencies: TaskLatencies) -> Dict[str, float]:
        """Serialized execution time contributed by each task."""
        values = latencies.as_dict()
        return {
            task: values[task] * self.TASK_SERIAL_FRACTION[task]
            for task in values
        }

    def serialized_fraction(self, latencies: TaskLatencies) -> float:
        """Overall serialized share of the preprocessing execution (Fig. 10a)."""
        total = latencies.total
        if total <= 0:
            return 0.0
        return sum(self.serialized_seconds(latencies).values()) / total

    def serial_task_split(self, latencies: TaskLatencies) -> Dict[str, float]:
        """Percentage contribution of selection/reshaping/reindexing to the
        serialized time (Fig. 10b); ordering is excluded as in the paper."""
        serial = self.serialized_seconds(latencies)
        serial.pop("ordering", None)
        return breakdown_percentages(serial)

    def analyze(self, workload: WorkloadProfile) -> Dict[str, float]:
        """Full Fig. 10 analysis for one workload."""
        latencies = software_task_latencies(workload, self.calibration)
        result = {"serialized_fraction": self.serialized_fraction(latencies)}
        for task, share in self.serial_task_split(latencies).items():
            result[f"serial_share_{task}"] = share
        result["bandwidth_utilization"] = software_bandwidth_utilization(
            workload, latencies, self.calibration
        )
        return result
