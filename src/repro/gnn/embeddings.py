"""Vertex embedding tables.

The embedding table maps every original VID to a feature vector; after
subgraph reindexing the sampled vertices' rows are gathered into a compact
table whose row index equals the renumbered VID (Fig. 4b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.reindex import ReindexResult


@dataclass
class EmbeddingTable:
    """A dense per-vertex feature table.

    Attributes:
        features: ``(num_nodes, dim)`` float array, row ``v`` is vertex ``v``'s
            embedding.
    """

    features: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.ndim != 2:
            raise ValueError("embedding table must be 2-D (num_nodes, dim)")

    @property
    def num_nodes(self) -> int:
        """Number of rows (vertices)."""
        return int(self.features.shape[0])

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return int(self.features.shape[1])

    @property
    def nbytes(self) -> int:
        """In-memory footprint in bytes."""
        return int(self.features.nbytes)

    def lookup(self, vids: np.ndarray) -> np.ndarray:
        """Gather the rows of the given VIDs."""
        return self.features[np.asarray(vids, dtype=np.int64)]

    def gather_subgraph(self, reindex: ReindexResult) -> "EmbeddingTable":
        """Build the reindexed subgraph's embedding table.

        Row ``i`` of the returned table is the embedding of the vertex whose
        renumbered VID is ``i``.
        """
        return EmbeddingTable(features=self.features[reindex.original_vids])

    @classmethod
    def random(
        cls, num_nodes: int, dim: int = 128, seed: int = 0, scale: float = 1.0
    ) -> "EmbeddingTable":
        """Create a random Gaussian embedding table (synthetic features)."""
        rng = np.random.default_rng(seed)
        return cls(features=rng.normal(0.0, scale, size=(num_nodes, dim)))

    @classmethod
    def zeros(cls, num_nodes: int, dim: int = 128) -> "EmbeddingTable":
        """Create an all-zero embedding table."""
        return cls(features=np.zeros((num_nodes, dim)))
