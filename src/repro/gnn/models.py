"""The four GNN models the paper evaluates (Fig. 25a).

Each model implements a layered aggregation-transformation forward pass over a
CSC subgraph.  The models also expose a FLOP estimate per layer that the
inference-latency model consumes; the relative computational intensity
ordering (GIN < GraphSAGE < GCN < GAT) follows the paper.
"""

from __future__ import annotations

from typing import Dict, List, Type

import numpy as np

from repro.gnn.layers import (
    LinearTransform,
    MLPTransform,
    attention_aggregate,
    mean_aggregate,
    sum_aggregate,
)
from repro.graph.csc import CSCGraph


class GNNModel:
    """Base class: a stack of aggregation-transformation layers.

    Args:
        in_dim: input embedding dimensionality.
        hidden_dim: hidden feature dimensionality of every layer.
        num_layers: number of GNN layers (hops).
        seed: weight-initialisation seed.
    """

    #: Relative aggregation cost per edge (multiplier on ``dim`` FLOPs).
    aggregation_cost: float = 1.0

    name: str = "base"

    def __init__(self, in_dim: int = 128, hidden_dim: int = 128, num_layers: int = 2, seed: int = 0) -> None:
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.seed = seed
        self.transforms: List[LinearTransform] = []
        dims = [in_dim] + [hidden_dim] * num_layers
        for layer in range(num_layers):
            self.transforms.append(
                LinearTransform.random(dims[layer], dims[layer + 1], seed=seed + layer)
            )

    # ------------------------------------------------------------ interface
    def aggregate(self, graph: CSCGraph, features: np.ndarray, layer: int) -> np.ndarray:
        """Aggregate neighbour features for one layer (model specific)."""
        raise NotImplementedError

    def transform(self, aggregated: np.ndarray, layer: int) -> np.ndarray:
        """Transform the aggregated features of one layer."""
        return self.transforms[layer](aggregated)

    def forward(self, graph: CSCGraph, features: np.ndarray) -> np.ndarray:
        """Run the layered forward pass and return per-node output features."""
        h = np.asarray(features, dtype=np.float64)
        for layer in range(self.num_layers):
            agg = self.aggregate(graph, h, layer)
            h = self.transform(agg, layer)
        return h

    # ----------------------------------------------------------------- cost
    def flops(self, num_nodes: int, num_edges: int) -> int:
        """Approximate multiply-accumulate count of one forward pass."""
        total = 0
        dims = [self.in_dim] + [self.hidden_dim] * self.num_layers
        for layer in range(self.num_layers):
            # Aggregation: every edge moves/combines a dim-wide vector.
            total += int(self.aggregation_cost * num_edges * dims[layer] * 2)
            # Transformation: dense matmul per node.
            total += 2 * num_nodes * dims[layer] * dims[layer + 1]
        return total


class GraphSAGE(GNNModel):
    """GraphSAGE with mean aggregation (the paper's default model)."""

    name = "graphsage"
    aggregation_cost = 1.5  # mean aggregation plus self-feature concatenation

    def __init__(self, in_dim: int = 128, hidden_dim: int = 128, num_layers: int = 2, seed: int = 0) -> None:
        super().__init__(in_dim, hidden_dim, num_layers, seed)
        # GraphSAGE concatenates the self feature with the aggregate, so the
        # transforms take 2x-wide inputs.
        dims = [in_dim] + [hidden_dim] * num_layers
        self.transforms = [
            LinearTransform.random(2 * dims[layer], dims[layer + 1], seed=seed + layer)
            for layer in range(num_layers)
        ]

    def aggregate(self, graph: CSCGraph, features: np.ndarray, layer: int) -> np.ndarray:
        neigh = mean_aggregate(graph, features)
        return np.concatenate([features, neigh], axis=1)


class GCN(GNNModel):
    """Graph convolutional network with symmetric-normalised mean aggregation."""

    name = "gcn"
    aggregation_cost = 2.0

    def aggregate(self, graph: CSCGraph, features: np.ndarray, layer: int) -> np.ndarray:
        degrees = np.maximum(graph.in_degrees().astype(np.float64), 1.0)
        norm = 1.0 / np.sqrt(degrees)
        scaled = features * norm[: features.shape[0], None] if features.shape[0] == graph.num_nodes else features
        agg = mean_aggregate(graph, scaled)
        return agg * norm[:, None]


class GAT(GNNModel):
    """Graph attention network with single-head additive attention."""

    name = "gat"
    aggregation_cost = 4.0

    def __init__(self, in_dim: int = 128, hidden_dim: int = 128, num_layers: int = 2, seed: int = 0) -> None:
        super().__init__(in_dim, hidden_dim, num_layers, seed)
        rng = np.random.default_rng(seed + 1000)
        dims = [in_dim] + [hidden_dim] * num_layers
        self._attn_src = [rng.normal(0, 0.1, size=dims[layer]) for layer in range(num_layers)]
        self._attn_dst = [rng.normal(0, 0.1, size=dims[layer]) for layer in range(num_layers)]

    def aggregate(self, graph: CSCGraph, features: np.ndarray, layer: int) -> np.ndarray:
        attn_src = features @ self._attn_src[layer]
        attn_dst = features @ self._attn_dst[layer]
        return attention_aggregate(graph, features, attn_src, attn_dst)


class GIN(GNNModel):
    """Graph isomorphism network with sum aggregation and an MLP transform."""

    name = "gin"
    aggregation_cost = 1.0

    def __init__(self, in_dim: int = 128, hidden_dim: int = 128, num_layers: int = 2, seed: int = 0) -> None:
        super().__init__(in_dim, hidden_dim, num_layers, seed)
        dims = [in_dim] + [hidden_dim] * num_layers
        self.mlps = [
            MLPTransform.random(dims[layer], dims[layer + 1], dims[layer + 1], seed=seed + layer)
            for layer in range(num_layers)
        ]
        self.epsilon = 0.0

    def aggregate(self, graph: CSCGraph, features: np.ndarray, layer: int) -> np.ndarray:
        return (1.0 + self.epsilon) * features + sum_aggregate(graph, features)

    def transform(self, aggregated: np.ndarray, layer: int) -> np.ndarray:
        return self.mlps[layer](aggregated)


#: Models keyed by name, ordered by ascending computational intensity as in
#: the paper's sensitivity study.
MODEL_REGISTRY: Dict[str, Type[GNNModel]] = {
    "gin": GIN,
    "graphsage": GraphSAGE,
    "gcn": GCN,
    "gat": GAT,
}


def build_model(
    name: str, in_dim: int = 128, hidden_dim: int = 128, num_layers: int = 2, seed: int = 0
) -> GNNModel:
    """Instantiate a model by name; raises ``KeyError`` for unknown names."""
    cls = MODEL_REGISTRY[name.lower()]
    return cls(in_dim=in_dim, hidden_dim=hidden_dim, num_layers=num_layers, seed=seed)
