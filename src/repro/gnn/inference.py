"""GNN inference: functional forward pass plus an analytic GPU latency model.

Inference always runs on the GPU in the paper's setups; its latency stays
roughly constant across datasets because the sampled subgraph size is bounded
by the batch size, ``k`` and the layer count rather than by the input graph
(Section III-A).  The latency model reflects exactly that: it is driven by the
sampled subgraph's node/edge counts and the model's FLOP estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gnn.embeddings import EmbeddingTable
from repro.gnn.models import GNNModel, build_model
from repro.graph.csc import CSCGraph
from repro.graph.reindex import ReindexResult

#: Peak throughput of the inference GPU (RTX 3090 class, FP32).
GPU_PEAK_FLOPS: float = 35.6e12

#: Fraction of peak the sparse-aggregation-heavy GNN workload sustains.
GPU_GNN_EFFICIENCY: float = 0.18

#: Fixed per-batch kernel-launch and framework overhead (seconds).
INFERENCE_FIXED_OVERHEAD: float = 8.0e-3

#: Effective GPU bandwidth for the scattered feature accesses of aggregation.
GPU_GATHER_BANDWIDTH: float = 30e9


@dataclass
class InferenceResult:
    """Output of one inference run.

    Attributes:
        outputs: per-node output features of the final layer (reindexed VIDs).
        latency_seconds: modelled GPU latency of the forward pass.
        flops: estimated multiply-accumulate count.
    """

    outputs: np.ndarray
    latency_seconds: float
    flops: int


@dataclass
class InferenceLatencyModel:
    """Analytic GPU latency model for GNN inference.

    Attributes:
        peak_flops: GPU peak floating-point throughput.
        efficiency: sustained fraction of peak for GNN workloads.
        fixed_overhead: per-batch constant overhead in seconds.
        gather_bandwidth: effective bandwidth of the scattered per-edge feature
            accesses during aggregation (bytes/second).
    """

    peak_flops: float = GPU_PEAK_FLOPS
    efficiency: float = GPU_GNN_EFFICIENCY
    fixed_overhead: float = INFERENCE_FIXED_OVERHEAD
    gather_bandwidth: float = GPU_GATHER_BANDWIDTH

    def latency(self, model: GNNModel, num_nodes: int, num_edges: int) -> float:
        """Latency in seconds for a forward pass over a subgraph of that size.

        The compute term comes from the model's FLOP estimate; the memory term
        charges the scattered feature gathers of aggregation (one feature
        vector per edge per layer plus the initial embedding fetch), which is
        what bounds sparse GNN aggregation on a GPU.
        """
        flops = model.flops(num_nodes, num_edges)
        compute = flops / (self.peak_flops * self.efficiency)
        dim = getattr(model, "hidden_dim", 128)
        layers = getattr(model, "num_layers", 2)
        gathered_bytes = 4 * dim * (layers * num_edges + num_nodes)
        memory = gathered_bytes / self.gather_bandwidth
        return self.fixed_overhead + compute + memory

    def latency_from_counts(
        self,
        num_nodes: int,
        num_edges: int,
        hidden_dim: int = 128,
        num_layers: int = 2,
        model_name: str = "graphsage",
    ) -> float:
        """Latency from raw counts, building the named model's FLOP profile."""
        model = build_model(model_name, in_dim=hidden_dim, hidden_dim=hidden_dim, num_layers=num_layers)
        return self.latency(model, num_nodes, num_edges)


class InferenceEngine:
    """Runs the functional forward pass and reports modelled latency."""

    def __init__(
        self,
        model: GNNModel,
        latency_model: Optional[InferenceLatencyModel] = None,
    ) -> None:
        self.model = model
        self.latency_model = latency_model or InferenceLatencyModel()

    def run(
        self,
        subgraph: CSCGraph,
        embeddings: EmbeddingTable,
        reindex: Optional[ReindexResult] = None,
    ) -> InferenceResult:
        """Execute inference on a (reindexed) subgraph.

        When ``reindex`` is provided, the embedding rows of the sampled
        vertices are gathered first so the feature matrix lines up with the
        subgraph's compact VIDs.
        """
        if reindex is not None:
            table = embeddings.gather_subgraph(reindex)
        else:
            table = embeddings
        features = table.features
        if features.shape[0] < subgraph.num_nodes:
            # Pad with zeros for isolated vertices introduced by conversion.
            pad = np.zeros((subgraph.num_nodes - features.shape[0], features.shape[1]))
            features = np.vstack([features, pad])
        elif features.shape[0] > subgraph.num_nodes:
            features = features[: subgraph.num_nodes]
        outputs = self.model.forward(subgraph, features)
        flops = self.model.flops(subgraph.num_nodes, subgraph.num_edges)
        latency = self.latency_model.latency(self.model, subgraph.num_nodes, subgraph.num_edges)
        return InferenceResult(outputs=outputs, latency_seconds=latency, flops=flops)

    def estimate_latency(self, num_nodes: int, num_edges: int) -> float:
        """Latency estimate without running the forward pass."""
        return self.latency_model.latency(self.model, num_nodes, num_edges)
