"""GNN inference substrate.

AutoGNN's contribution is preprocessing, but every end-to-end experiment in
the paper includes the downstream GNN inference executed on the GPU.  This
package provides NumPy forward passes for the four models the paper evaluates
(GraphSAGE, GCN, GAT, GIN), an embedding-table substrate, and an analytic GPU
inference-latency model so the end-to-end latency splits of Figs. 5, 18 and 25
have an inference component with the right relative magnitude.
"""

from repro.gnn.embeddings import EmbeddingTable
from repro.gnn.layers import (
    mean_aggregate,
    sum_aggregate,
    max_aggregate,
    LinearTransform,
    MLPTransform,
)
from repro.gnn.models import (
    GNNModel,
    GraphSAGE,
    GCN,
    GAT,
    GIN,
    MODEL_REGISTRY,
    build_model,
)
from repro.gnn.inference import (
    InferenceEngine,
    InferenceLatencyModel,
    InferenceResult,
    GPU_PEAK_FLOPS,
)

__all__ = [
    "EmbeddingTable",
    "mean_aggregate",
    "sum_aggregate",
    "max_aggregate",
    "LinearTransform",
    "MLPTransform",
    "GNNModel",
    "GraphSAGE",
    "GCN",
    "GAT",
    "GIN",
    "MODEL_REGISTRY",
    "build_model",
    "InferenceEngine",
    "InferenceLatencyModel",
    "InferenceResult",
    "GPU_PEAK_FLOPS",
]
