"""Aggregation and transformation building blocks for GNN layers.

A GNN layer aggregates the embeddings of each destination's neighbourhood and
transforms the aggregate with a small neural network (Section II-A).  These
helpers operate on CSC subgraphs and NumPy feature matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.csc import CSCGraph


def _aggregate(
    graph: CSCGraph, features: np.ndarray, reducer: Callable[[np.ndarray], np.ndarray]
) -> np.ndarray:
    """Apply ``reducer`` over every destination's in-neighbour features."""
    features = np.asarray(features, dtype=np.float64)
    out = np.zeros((graph.num_nodes, features.shape[1]), dtype=np.float64)
    for dst in range(graph.num_nodes):
        neighbors = graph.in_neighbors(dst)
        if neighbors.size == 0:
            continue
        out[dst] = reducer(features[neighbors])
    return out


def mean_aggregate(graph: CSCGraph, features: np.ndarray) -> np.ndarray:
    """Mean of each destination's in-neighbour embeddings (GraphSAGE/GCN)."""
    return _aggregate(graph, features, lambda rows: rows.mean(axis=0))


def sum_aggregate(graph: CSCGraph, features: np.ndarray) -> np.ndarray:
    """Sum of each destination's in-neighbour embeddings (GIN)."""
    return _aggregate(graph, features, lambda rows: rows.sum(axis=0))


def max_aggregate(graph: CSCGraph, features: np.ndarray) -> np.ndarray:
    """Element-wise max of each destination's in-neighbour embeddings."""
    return _aggregate(graph, features, lambda rows: rows.max(axis=0))


def attention_aggregate(
    graph: CSCGraph,
    features: np.ndarray,
    attn_src: np.ndarray,
    attn_dst: np.ndarray,
) -> np.ndarray:
    """Single-head additive attention aggregation (GAT-style).

    ``attn_src`` and ``attn_dst`` are per-node scalar attention logits; the
    edge score is ``leaky_relu(attn_src[u] + attn_dst[v])`` softmax-normalised
    over each destination's neighbourhood.
    """
    features = np.asarray(features, dtype=np.float64)
    out = np.zeros((graph.num_nodes, features.shape[1]), dtype=np.float64)
    for dst in range(graph.num_nodes):
        neighbors = graph.in_neighbors(dst)
        if neighbors.size == 0:
            continue
        logits = attn_src[neighbors] + attn_dst[dst]
        logits = np.where(logits > 0, logits, 0.2 * logits)  # leaky ReLU
        logits = logits - logits.max()
        weights = np.exp(logits)
        weights = weights / weights.sum()
        out[dst] = (weights[:, None] * features[neighbors]).sum(axis=0)
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


@dataclass
class LinearTransform:
    """A single dense layer ``y = x W + b`` with optional ReLU."""

    weight: np.ndarray
    bias: np.ndarray
    activation: bool = True

    @classmethod
    def random(
        cls, in_dim: int, out_dim: int, seed: int = 0, activation: bool = True
    ) -> "LinearTransform":
        """Xavier-style random initialisation."""
        rng = np.random.default_rng(seed)
        scale = np.sqrt(2.0 / (in_dim + out_dim))
        return cls(
            weight=rng.normal(0.0, scale, size=(in_dim, out_dim)),
            bias=np.zeros(out_dim),
            activation=activation,
        )

    @property
    def in_dim(self) -> int:
        """Input feature dimensionality."""
        return int(self.weight.shape[0])

    @property
    def out_dim(self) -> int:
        """Output feature dimensionality."""
        return int(self.weight.shape[1])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        y = np.asarray(x, dtype=np.float64) @ self.weight + self.bias
        return relu(y) if self.activation else y

    def flops(self, num_rows: int) -> int:
        """Multiply-accumulate count of applying the layer to ``num_rows`` rows."""
        return 2 * num_rows * self.in_dim * self.out_dim


@dataclass
class MLPTransform:
    """A two-layer perceptron used as the last-layer transformation (GIN/MLP)."""

    first: LinearTransform
    second: LinearTransform

    @classmethod
    def random(cls, in_dim: int, hidden_dim: int, out_dim: int, seed: int = 0) -> "MLPTransform":
        """Random two-layer MLP."""
        return cls(
            first=LinearTransform.random(in_dim, hidden_dim, seed=seed, activation=True),
            second=LinearTransform.random(hidden_dim, out_dim, seed=seed + 1, activation=False),
        )

    @property
    def in_dim(self) -> int:
        """Input feature dimensionality."""
        return self.first.in_dim

    @property
    def out_dim(self) -> int:
        """Output feature dimensionality."""
        return self.second.out_dim

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.second(self.first(x))

    def flops(self, num_rows: int) -> int:
        """Multiply-accumulate count of applying the MLP to ``num_rows`` rows."""
        return self.first.flops(num_rows) + self.second.flops(num_rows)
