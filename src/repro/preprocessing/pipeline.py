"""End-to-end reference preprocessing pipeline.

The pipeline mirrors Fig. 14 of the paper: edge ordering -> data reshaping ->
unique random selection -> subgraph reindexing -> (edge ordering + reshaping
of the sampled subgraph) producing the final CSC the GNN consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.csc import CSCGraph
from repro.graph.convert import coo_to_csc
from repro.graph.reindex import ReindexResult
from repro.graph.sampling import MODE_VECTORIZED, SampledSubgraph, check_mode
from repro.preprocessing.tasks import (
    DataReshapingTask,
    EdgeOrderingTask,
    SubgraphReindexingTask,
    TaskKind,
    UniqueRandomSelectionTask,
)


@dataclass(frozen=True)
class PreprocessingConfig:
    """Workload parameters of a preprocessing run.

    Attributes:
        k: neighbours sampled per node (paper default 10).
        num_layers: GNN layer count / sampling hops (paper default 2).
        batch_size: number of inference (batch) nodes (paper default 3000).
        sampling_strategy: ``"node"`` (GraphSAGE-style) or ``"layer"``.
        seed: RNG seed used for the random selections.
        mode: functional execution path — ``"vectorized"`` (fast path) or
            ``"reference"`` (per-element verification loops); both produce
            bit-identical results.  ``None`` (the default) inherits the
            executing component's mode (pipeline default: vectorized), so
            only an explicitly chosen mode ever overrides a device's or
            service's own setting.
    """

    k: int = 10
    num_layers: int = 2
    batch_size: int = 3000
    sampling_strategy: str = "node"
    seed: int = 0
    mode: Optional[str] = None


@dataclass
class PreprocessingResult:
    """Everything the pipeline produced, one field per paper task.

    Attributes:
        ordered: the destination-sorted COO of the full graph.
        csc: the CSC conversion of the full graph.
        sample: the sampled multi-hop neighbourhood (original VIDs).
        reindex: the reindexed subgraph (compact VIDs) with its mapping.
        subgraph_csc: the CSC of the reindexed subgraph fed to inference.
        stats: per-task work counters collected along the way.
    """

    ordered: COOGraph
    csc: CSCGraph
    sample: SampledSubgraph
    reindex: ReindexResult
    subgraph_csc: CSCGraph
    stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def num_sampled_nodes(self) -> int:
        """Distinct vertices in the final subgraph."""
        return self.reindex.num_sampled_nodes

    @property
    def num_sampled_edges(self) -> int:
        """Edges in the final subgraph."""
        return self.reindex.edges.num_edges


class PreprocessingPipeline:
    """Composable reference pipeline executing the four tasks in order."""

    def __init__(self, config: Optional[PreprocessingConfig] = None) -> None:
        self.config = config or PreprocessingConfig()
        self.mode = check_mode(self.config.mode or MODE_VECTORIZED)
        self._ordering = EdgeOrderingTask()
        self._reshaping = DataReshapingTask()
        self._selecting = UniqueRandomSelectionTask(
            strategy=self.config.sampling_strategy, mode=self.mode
        )
        self._reindexing = SubgraphReindexingTask(mode=self.mode)

    def choose_batch_nodes(self, graph: COOGraph) -> np.ndarray:
        """Pick the batch (seed) nodes for sampling, capped at the node count."""
        rng = np.random.default_rng(self.config.seed)
        size = min(self.config.batch_size, max(graph.num_nodes, 1))
        if graph.num_nodes == 0:
            return np.empty(0, dtype=VID_DTYPE)
        return rng.choice(graph.num_nodes, size=size, replace=False).astype(VID_DTYPE)

    def run(
        self, graph: COOGraph, batch_nodes: Optional[Sequence[int]] = None
    ) -> PreprocessingResult:
        """Execute the full preprocessing workflow on ``graph``."""
        cfg = self.config
        stats: Dict[str, Dict[str, float]] = {}

        ordering_res = self._ordering.run(graph)
        stats[TaskKind.ORDERING.value] = ordering_res.stats
        ordered: COOGraph = ordering_res.payload

        reshaping_res = self._reshaping.run(ordered)
        stats[TaskKind.RESHAPING.value] = reshaping_res.stats
        csc: CSCGraph = reshaping_res.payload

        if batch_nodes is None:
            batch_nodes = self.choose_batch_nodes(graph)
        selecting_res = self._selecting.run(
            csc, batch_nodes, cfg.k, cfg.num_layers, seed=cfg.seed
        )
        stats[TaskKind.SELECTING.value] = selecting_res.stats
        sample: SampledSubgraph = selecting_res.payload

        reindex_res = self._reindexing.run(sample)
        stats[TaskKind.REINDEXING.value] = reindex_res.stats
        reindex: ReindexResult = reindex_res.payload

        # The sampled subgraph is re-converted to CSC for the GNN (Section II-B:
        # reindexing outputs COO, which then undergoes ordering + reshaping).
        subgraph_csc = coo_to_csc(reindex.edges)

        return PreprocessingResult(
            ordered=ordered,
            csc=csc,
            sample=sample,
            reindex=reindex,
            subgraph_csc=subgraph_csc,
            stats=stats,
        )


def preprocess(
    graph: COOGraph,
    k: int = 10,
    num_layers: int = 2,
    batch_size: int = 3000,
    sampling_strategy: str = "node",
    seed: int = 0,
    batch_nodes: Optional[Sequence[int]] = None,
    mode: Optional[str] = None,
) -> PreprocessingResult:
    """One-call convenience wrapper around :class:`PreprocessingPipeline`."""
    config = PreprocessingConfig(
        k=k,
        num_layers=num_layers,
        batch_size=batch_size,
        sampling_strategy=sampling_strategy,
        seed=seed,
        mode=mode,
    )
    return PreprocessingPipeline(config).run(graph, batch_nodes=batch_nodes)
