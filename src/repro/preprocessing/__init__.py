"""Reference GNN preprocessing pipeline.

The paper decomposes GNN preprocessing into four tasks (Section II-B):
edge ordering, data reshaping, unique random selection and subgraph
reindexing.  This package provides the software reference pipeline that the
CPU/GPU baselines and the AutoGNN hardware simulator are all verified against,
plus the task-level result containers used across the repo.
"""

from repro.preprocessing.tasks import (
    Task,
    TaskResult,
    EdgeOrderingTask,
    DataReshapingTask,
    UniqueRandomSelectionTask,
    SubgraphReindexingTask,
)
from repro.preprocessing.pipeline import (
    PreprocessingConfig,
    PreprocessingResult,
    PreprocessingPipeline,
    preprocess,
)

__all__ = [
    "Task",
    "TaskResult",
    "EdgeOrderingTask",
    "DataReshapingTask",
    "UniqueRandomSelectionTask",
    "SubgraphReindexingTask",
    "PreprocessingConfig",
    "PreprocessingResult",
    "PreprocessingPipeline",
    "preprocess",
]
