"""The four GNN preprocessing tasks as composable reference implementations.

Each task is a small object with an :meth:`run` method returning a
:class:`TaskResult`; tasks carry no timing model (the baselines and the
hardware simulator layer their own timing on top of the same functional
behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.graph.coo import COOGraph, VID_DTYPE
from repro.graph.csc import CSCGraph
from repro.graph.convert import build_pointer_array, edge_order
from repro.graph.reindex import ReindexResult, reindex_edges
from repro.graph.sampling import (
    MODE_VECTORIZED,
    SampledSubgraph,
    check_mode,
    layer_wise_sample,
    node_wise_sample,
)


class TaskKind(Enum):
    """The four preprocessing task categories used throughout the paper."""

    ORDERING = "ordering"
    RESHAPING = "reshaping"
    SELECTING = "selecting"
    REINDEXING = "reindexing"


@dataclass
class TaskResult:
    """Output of a preprocessing task.

    Attributes:
        kind: which of the four tasks produced this result.
        payload: task-specific output object (sorted COO, CSC, sample, ...).
        stats: free-form counters describing the amount of work performed
            (element counts the timing models consume).
    """

    kind: TaskKind
    payload: Any
    stats: Dict[str, float] = field(default_factory=dict)


class Task:
    """Base class for preprocessing tasks."""

    kind: TaskKind

    def run(self, *args: Any, **kwargs: Any) -> TaskResult:
        """Execute the task and return its result."""
        raise NotImplementedError


class EdgeOrderingTask(Task):
    """Sort the COO edge array by (destination, source) VID."""

    kind = TaskKind.ORDERING

    def run(self, graph: COOGraph) -> TaskResult:
        ordered = edge_order(graph)
        return TaskResult(
            kind=self.kind,
            payload=ordered,
            stats={"num_edges": float(graph.num_edges), "num_nodes": float(graph.num_nodes)},
        )


class DataReshapingTask(Task):
    """Build the CSC pointer array from a destination-sorted edge array."""

    kind = TaskKind.RESHAPING

    def run(self, ordered: COOGraph) -> TaskResult:
        indptr = build_pointer_array(ordered.dst, ordered.num_nodes)
        csc = CSCGraph(
            indptr=indptr,
            indices=ordered.src.copy(),
            num_nodes=ordered.num_nodes,
            name=ordered.name,
        )
        return TaskResult(
            kind=self.kind,
            payload=csc,
            stats={"num_edges": float(ordered.num_edges), "num_nodes": float(ordered.num_nodes)},
        )


class UniqueRandomSelectionTask(Task):
    """Multi-hop unique random neighbour selection (node- or layer-wise).

    ``mode`` selects the execution path (``"vectorized"`` fast path by
    default, ``"reference"`` per-node verification loop); both produce
    bit-identical samples.
    """

    kind = TaskKind.SELECTING

    def __init__(self, strategy: str = "node", mode: str = MODE_VECTORIZED) -> None:
        if strategy not in ("node", "layer"):
            raise ValueError(f"unknown sampling strategy {strategy!r}")
        self.strategy = strategy
        self.mode = check_mode(mode)

    def run(
        self,
        csc: CSCGraph,
        batch_nodes: Sequence[int],
        k: int,
        num_layers: int,
        seed: int = 0,
    ) -> TaskResult:
        if self.strategy == "node":
            sample = node_wise_sample(csc, batch_nodes, k, num_layers, seed=seed, mode=self.mode)
        else:
            sample = layer_wise_sample(csc, batch_nodes, k, num_layers, seed=seed, mode=self.mode)
        return TaskResult(
            kind=self.kind,
            payload=sample,
            stats={
                "batch_size": float(len(list(batch_nodes))),
                "k": float(k),
                "num_layers": float(num_layers),
                "sampled_nodes": float(sample.num_sampled_nodes),
                "sampled_edges": float(sample.num_sampled_edges),
            },
        )


class SubgraphReindexingTask(Task):
    """Renumber sampled-subgraph VIDs to a dense range.

    ``mode`` selects the execution path (vectorized factorization by default,
    reference hash-map walk); both produce bit-identical mappings.
    """

    kind = TaskKind.REINDEXING

    def __init__(self, mode: str = MODE_VECTORIZED) -> None:
        self.mode = check_mode(mode)

    def run(
        self,
        sample: SampledSubgraph,
        mapping: Optional[Dict[int, int]] = None,
    ) -> TaskResult:
        combined = sample.all_edges()
        result: ReindexResult = reindex_edges(
            combined.src,
            combined.dst,
            mapping=mapping,
            mode=self.mode,
            num_vids=combined.num_nodes,
        )
        return TaskResult(
            kind=self.kind,
            payload=result,
            stats={
                "num_edges": float(combined.num_edges),
                "num_mapped": float(result.num_sampled_nodes),
            },
        )


def empty_sample(num_nodes: int) -> SampledSubgraph:
    """A zero-layer sample, useful for degenerate inputs in tests."""
    return SampledSubgraph(
        batch_nodes=np.empty(0, dtype=VID_DTYPE),
        layers=[],
        sampled_nodes=np.empty(0, dtype=VID_DTYPE),
        num_nodes=num_nodes,
    )
