"""Reproduction of AutoGNN (HPCA 2026): hardware-driven GNN preprocessing.

The package is organised as follows:

* :mod:`repro.graph` — graph substrate (COO/CSC, datasets, sampling, dynamics).
* :mod:`repro.preprocessing` — reference implementation of the four
  preprocessing tasks and the end-to-end pipeline.
* :mod:`repro.core` — the AutoGNN accelerator model (UPEs, SCRs, kernels,
  cost model, bitstreams, reconfiguration, the device).
* :mod:`repro.gnn` — GNN inference substrate (GraphSAGE/GCN/GAT/GIN).
* :mod:`repro.baselines` — CPU/GPU/GSamp/FPGA-sampler and other accelerators.
* :mod:`repro.system` — host integration: PCIe transfers, AGNN-lib software,
  power/energy, FPGA board catalogue and the AutoPre/StatPre/DynPre variants.
* :mod:`repro.serving` — request traffic, batch scheduling and sharded
  service clusters for the served-traffic experiments.
* :mod:`repro.analysis` — metrics and report formatting for the benchmarks.
"""

__version__ = "1.1.0"

__all__ = [
    "graph",
    "preprocessing",
    "core",
    "gnn",
    "baselines",
    "system",
    "serving",
    "analysis",
]
