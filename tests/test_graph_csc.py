"""Tests for the CSC graph container."""

import numpy as np
import pytest

from repro.graph.csc import CSCGraph


def make_csc():
    # Graph: dst 0 <- {1, 2}, dst 1 <- {0}, dst 2 <- {}
    return CSCGraph(indptr=np.array([0, 2, 3, 3]), indices=np.array([1, 2, 0]), num_nodes=3)


class TestConstruction:
    def test_counts(self):
        g = make_csc()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert len(g) == 3

    def test_bad_indptr_length(self):
        with pytest.raises(ValueError):
            CSCGraph(indptr=np.array([0, 1]), indices=np.array([0]), num_nodes=3)

    def test_indptr_tail_mismatch(self):
        with pytest.raises(ValueError):
            CSCGraph(indptr=np.array([0, 1, 5, 5]), indices=np.array([0]), num_nodes=3)

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSCGraph(indptr=np.array([0, 2, 1, 3]), indices=np.array([0, 1, 2]), num_nodes=3)

    def test_empty_factory(self):
        g = CSCGraph.empty(4)
        assert g.num_edges == 0
        assert g.in_degree(3) == 0


class TestQueries:
    def test_in_neighbors(self):
        g = make_csc()
        assert g.in_neighbors(0).tolist() == [1, 2]
        assert g.in_neighbors(1).tolist() == [0]
        assert g.in_neighbors(2).tolist() == []

    def test_in_neighbors_out_of_range(self):
        with pytest.raises(IndexError):
            make_csc().in_neighbors(3)

    def test_in_degree(self):
        g = make_csc()
        assert g.in_degree(0) == 2
        assert g.in_degree(2) == 0
        with pytest.raises(IndexError):
            g.in_degree(-1)

    def test_in_degrees_vector(self):
        assert make_csc().in_degrees().tolist() == [2, 1, 0]

    def test_avg_degree(self):
        assert make_csc().avg_degree == pytest.approx(1.0)

    def test_iter_edges(self):
        edges = list(make_csc().iter_edges())
        assert edges == [(1, 0), (2, 0), (0, 1)]

    def test_edge_arrays(self):
        src, dst = make_csc().edge_arrays()
        assert src.tolist() == [1, 2, 0]
        assert dst.tolist() == [0, 0, 1]

    def test_validate_detects_bad_indices(self):
        g = make_csc()
        g.indices = np.array([1, 5, 0])
        with pytest.raises(ValueError):
            g.validate()

    def test_copy_independent(self):
        g = make_csc()
        c = g.copy()
        c.indices[0] = 2
        assert g.indices[0] == 1

    def test_nbytes_positive(self):
        assert make_csc().nbytes() > 0
