"""Chunked (array-native) offline loop ↔ per-event loop equivalence.

``serve_trace_fast`` auto-selects the chunked loop for eligible offline
replays (no fault schedule, no fair-mode batching, non-empty trace).  These
suites pin that the selection is invisible: byte-identical
``ClusterReport.as_dict()`` output *and* equal per-request records across
systems, dispatch policies, shard counts, tenants and degraded-quality
traffic — and that ineligible runs degrade gracefully to the per-event loop
instead of diverging or crashing.
"""

import json

import pytest
from conftest import SYSTEM_NAMES, TENANTS, WORKLOAD_POOL, make_bursty_tenant_trace
from hypothesis import given, settings, strategies as st

from repro.serving import (
    BatchScheduler,
    DISPATCH_POLICIES,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    OpenLoopArrivals,
    ShardedServiceCluster,
    SLOPolicy,
    TenantQuota,
    merge_traces,
)
from repro.serving.engine import _ChunkedServedLog, serve_trace_fast
from repro.serving.faults import FaultSchedule


def _render(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


def _cluster(services, name="DynPre", engine=ENGINE_FAST, **kwargs):
    kwargs.setdefault("num_shards", 3)
    kwargs.setdefault(
        "scheduler", BatchScheduler(max_batch_size=4, max_wait_seconds=0.004)
    )
    return ShardedServiceCluster(services[name], engine=engine, **kwargs)


def _both(make_cluster, trace, slo=None):
    """(chunked report, per-event report), each from a fresh cluster.

    Stateful systems (DynPre) mutate shard preprocessing state across a
    serve, so the two runs must not share cluster instances."""
    chunked = serve_trace_fast(make_cluster(), trace, slo=slo, chunked=True)
    event = serve_trace_fast(make_cluster(), trace, slo=slo, chunked=False)
    return chunked, event


class TestChunkedEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(SYSTEM_NAMES),
        policy=st.sampled_from(DISPATCH_POLICIES),
        num_requests=st.integers(min_value=1, max_value=60),
        rate_rps=st.sampled_from([50.0, 400.0, 2000.0]),
        seed=st.integers(min_value=0, max_value=2**16),
        max_batch_size=st.integers(min_value=1, max_value=5),
        max_wait_ms=st.sampled_from([0.0, 1.0, 5.0, 50.0]),
        num_shards=st.integers(min_value=1, max_value=5),
    )
    def test_property_sweep(
        self, services, name, policy, num_requests, rate_rps, seed,
        max_batch_size, max_wait_ms, num_shards,
    ):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=rate_rps, seed=seed).trace(
            num_requests
        )
        chunked, event = _both(
            lambda: _cluster(
                services, name, policy=policy, num_shards=num_shards,
                scheduler=BatchScheduler(
                    max_batch_size=max_batch_size,
                    max_wait_seconds=max_wait_ms * 1e-3,
                ),
            ),
            trace,
        )
        assert _render(chunked) == _render(event)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_shards=st.integers(min_value=1, max_value=4),
    )
    def test_multi_tenant_degraded_slo_sweep(self, services, seed, num_shards):
        """Tenants × degraded-quality traffic × per-tenant SLO overrides."""
        full = make_bursty_tenant_trace(WORKLOAD_POOL, num_per_tenant=15, seed=seed)
        degraded_pool = [w.degrade() for w in WORKLOAD_POOL[:2]]
        degraded = OpenLoopArrivals(
            degraded_pool, rate_rps=300.0, seed=seed + 1, tenant=TENANTS[0]
        ).trace(20)
        trace = merge_traces([full, degraded])
        slo = SLOPolicy(
            default_slo_seconds=0.05,
            per_workload={"wl-m": 0.2},
            per_tenant={"ent": TenantQuota(slo_seconds=0.1)},
        )
        chunked, event = _both(
            lambda: _cluster(services, num_shards=num_shards), trace, slo=slo
        )
        assert _render(chunked) == _render(event)
        assert chunked.tenant_stats == event.tenant_stats

    def test_auto_mode_selects_chunked_and_matches_reference(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=11).trace(40)
        fast = _cluster(services)
        reference = _cluster(services, engine=ENGINE_REFERENCE)
        fast_report = fast.serve_trace(trace)
        assert isinstance(fast_report.served, _ChunkedServedLog)
        assert _render(fast_report) == _render(reference.serve_trace(trace))

    def test_served_records_equal_not_just_summaries(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=3).trace(30)
        chunked, event = _both(lambda: _cluster(services, "StatPre"), trace)
        assert len(chunked.served) == len(event.served)
        assert chunked.served == event.served
        for a, b in zip(chunked.served, event.served):
            assert a.request is b.request
            assert a.batching_delay == b.batching_delay
            assert a.dispatch_delay == b.dispatch_delay
        assert chunked.service_reports() == event.service_reports()


class TestGracefulDegradation:
    def test_fault_schedule_falls_back_to_per_event(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=5).trace(20)
        cluster = _cluster(services)
        report = serve_trace_fast(cluster, trace, faults=FaultSchedule(events=()))
        # Auto mode degraded: per-event loop, plain record list.
        assert isinstance(report.served, list)
        with pytest.raises(ValueError, match="fault"):
            serve_trace_fast(
                cluster, trace, faults=FaultSchedule(events=()), chunked=True
            )

    def test_fair_mode_falls_back_to_per_event(self, services):
        trace = make_bursty_tenant_trace(WORKLOAD_POOL, num_per_tenant=10, seed=2)
        cluster = _cluster(
            services,
            scheduler=BatchScheduler(
                max_batch_size=4,
                max_wait_seconds=0.004,
                tenant_weights={"ent": 2.0, "free": 1.0},
            ),
        )
        report = serve_trace_fast(cluster, trace)
        assert isinstance(report.served, list)
        with pytest.raises(ValueError, match="fair"):
            serve_trace_fast(cluster, trace, chunked=True)


class TestLazyServedLog:
    def test_summaries_never_materialize_records(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=7).trace(50)
        cluster = _cluster(services)
        report = serve_trace_fast(cluster, trace, chunked=True)
        log = report.served
        assert isinstance(log, _ChunkedServedLog)
        report.as_dict()
        assert report.num_requests == 50
        assert len(log) == 50
        assert bool(log)
        # as_dict / len / bool read aggregates and plan arrays only.
        assert log._records is None

    def test_compact_keeps_summary_without_materializing(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=7).trace(50)
        cluster = _cluster(services)
        report = serve_trace_fast(cluster, trace, chunked=True)
        before = _render(report)
        log = report.served
        report.compact()
        assert log._records is None
        assert report.served == []
        assert _render(report) == before

    def test_materialized_records_are_indexable(self, services):
        trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=7).trace(25)
        chunked, event = _both(lambda: _cluster(services), trace)
        assert chunked.served[0] == event.served[0]
        assert list(chunked.served) == event.served
