"""Tests for the Table I cost model."""

import pytest

from repro.core.config import HardwareConfig
from repro.core.cost_model import CostModel, WorkloadParams


@pytest.fixture
def workload():
    return WorkloadParams(num_nodes=100_000, num_edges=5_000_000, num_layers=2, k=10, batch_size=1000)


@pytest.fixture
def config():
    return HardwareConfig(num_upes=64, upe_width=64, num_scrs=4, scr_width=1024)


class TestFormulas:
    def test_merge_rounds(self):
        assert CostModel.merge_rounds(64, 64) == 0
        assert CostModel.merge_rounds(1024, 64) == 3
        assert CostModel.merge_rounds(10_000, 64) == 7

    def test_ordering_matches_table1(self, workload, config):
        model = CostModel()
        m = CostModel.merge_rounds(workload.num_edges, config.upe_width)
        expected = 2 * m * workload.num_edges / (config.num_upes * config.upe_width)
        assert model.ordering_cycles(workload, config) == pytest.approx(expected)

    def test_ordering_zero_edges(self, config):
        model = CostModel()
        empty = WorkloadParams(num_nodes=10, num_edges=0)
        assert model.ordering_cycles(empty, config) == 0.0

    def test_selecting_matches_table1(self, workload, config):
        model = CostModel()
        expected = workload.total_selections / config.num_upes
        assert model.selecting_cycles(workload, config) == pytest.approx(expected)

    def test_reshaping_matches_table1(self, workload, config):
        model = CostModel()
        expected = max(
            workload.num_nodes / config.num_scrs,
            workload.num_edges / config.scr_width,
        )
        assert model.reshaping_cycles(workload, config) == pytest.approx(expected)

    def test_total_selections_geometric_series(self):
        w = WorkloadParams(num_nodes=10**6, num_edges=10**7, num_layers=2, k=10, batch_size=3000)
        assert w.total_selections == 3000 * 111
        w1 = WorkloadParams(num_nodes=10**6, num_edges=10**7, num_layers=1, k=1, batch_size=5)
        assert w1.total_selections == 10

    def test_per_seed_subgraph_nodes(self):
        w = WorkloadParams(num_nodes=10**6, num_edges=10**7, num_layers=2, k=10, batch_size=3000)
        assert w.per_seed_subgraph_nodes == 111
        small = WorkloadParams(num_nodes=50, num_edges=500, num_layers=2, k=10, batch_size=3)
        assert small.per_seed_subgraph_nodes == 50


class TestScaling:
    def test_more_upes_less_selection_time(self, workload):
        model = CostModel()
        small = HardwareConfig(num_upes=16, upe_width=64)
        big = HardwareConfig(num_upes=256, upe_width=64)
        assert model.selecting_cycles(workload, big) < model.selecting_cycles(workload, small)

    def test_wider_scr_less_reshaping_until_node_bound(self, workload):
        model = CostModel()
        narrow = HardwareConfig(num_scrs=1, scr_width=64)
        wide = HardwareConfig(num_scrs=1, scr_width=4096)
        assert model.reshaping_cycles(workload, wide) <= model.reshaping_cycles(workload, narrow)

    def test_reshaping_saturates_at_node_bound(self, workload):
        # Beyond a certain width, the node-side term dominates (Fig. 23a).
        model = CostModel()
        wide = HardwareConfig(num_scrs=1, scr_width=4096)
        wider = HardwareConfig(num_scrs=1, scr_width=8192)
        assert model.reshaping_cycles(workload, wide) == model.reshaping_cycles(workload, wider)

    def test_estimate_latency_positive(self, workload, config):
        estimate = CostModel().estimate(workload, config)
        assert estimate.total_cycles > 0
        assert estimate.latency_seconds() > 0
        assert set(estimate.breakdown()) == {"ordering", "selecting", "reshaping", "reindexing"}


class TestSelection:
    def test_best_configuration_picks_lowest(self, workload):
        model = CostModel()
        candidates = [
            HardwareConfig(num_upes=4, upe_width=64, num_scrs=1, scr_width=64),
            HardwareConfig(num_upes=128, upe_width=64, num_scrs=8, scr_width=1024),
        ]
        best, estimate = model.best_configuration(workload, candidates)
        assert best is candidates[1]
        assert estimate.total_cycles <= model.estimate(workload, candidates[0]).total_cycles

    def test_best_configuration_empty_raises(self, workload):
        with pytest.raises(ValueError):
            CostModel().best_configuration(workload, [])

    def test_rank_configurations_sorted(self, workload):
        model = CostModel()
        candidates = [
            HardwareConfig(num_upes=4, upe_width=64, num_scrs=1, scr_width=64),
            HardwareConfig(num_upes=32, upe_width=64, num_scrs=2, scr_width=512),
            HardwareConfig(num_upes=128, upe_width=64, num_scrs=8, scr_width=1024),
        ]
        ranked = model.rank_configurations(workload, candidates)
        totals = [est.total_cycles for _, est in ranked]
        assert totals == sorted(totals)

    def test_from_graph_constructor(self, small_graph):
        params = WorkloadParams.from_graph(small_graph, num_layers=3, k=5, batch_size=7)
        assert params.num_nodes == small_graph.num_nodes
        assert params.num_edges == small_graph.num_edges
        assert params.num_layers == 3
