"""Tests for the reference preprocessing tasks and pipeline."""

import numpy as np
import pytest

from repro.graph.convert import coo_to_csc
from repro.preprocessing.pipeline import PreprocessingConfig, PreprocessingPipeline, preprocess
from repro.preprocessing.tasks import (
    DataReshapingTask,
    EdgeOrderingTask,
    SubgraphReindexingTask,
    TaskKind,
    UniqueRandomSelectionTask,
)


class TestTasks:
    def test_edge_ordering_task(self, small_graph):
        result = EdgeOrderingTask().run(small_graph)
        assert result.kind is TaskKind.ORDERING
        assert result.payload.is_sorted()
        assert result.stats["num_edges"] == small_graph.num_edges

    def test_data_reshaping_task(self, small_graph):
        ordered = EdgeOrderingTask().run(small_graph).payload
        result = DataReshapingTask().run(ordered)
        assert result.kind is TaskKind.RESHAPING
        expected = coo_to_csc(small_graph)
        assert np.array_equal(result.payload.indptr, expected.indptr)

    def test_selection_task_node_wise(self, small_csc):
        task = UniqueRandomSelectionTask(strategy="node")
        result = task.run(small_csc, [0, 1, 2], k=3, num_layers=2, seed=0)
        assert result.kind is TaskKind.SELECTING
        assert result.stats["sampled_nodes"] > 0

    def test_selection_task_layer_wise(self, small_csc):
        task = UniqueRandomSelectionTask(strategy="layer")
        result = task.run(small_csc, [0, 1, 2], k=3, num_layers=2, seed=0)
        assert result.payload.num_layers <= 2

    def test_selection_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            UniqueRandomSelectionTask(strategy="bogus")

    def test_reindexing_task(self, small_csc):
        sample = UniqueRandomSelectionTask().run(small_csc, [0, 1], k=3, num_layers=2).payload
        result = SubgraphReindexingTask().run(sample)
        assert result.kind is TaskKind.REINDEXING
        assert result.payload.edges.num_edges == sample.num_sampled_edges


class TestPipeline:
    def test_full_run(self, small_graph):
        result = preprocess(small_graph, k=3, num_layers=2, batch_size=8, seed=1)
        assert result.csc.num_edges == small_graph.num_edges
        assert result.num_sampled_edges == result.reindex.edges.num_edges
        assert result.subgraph_csc.num_edges == result.num_sampled_edges

    def test_stats_collected_for_all_tasks(self, small_graph):
        result = preprocess(small_graph, k=3, num_layers=2, batch_size=8)
        assert set(result.stats) == {"ordering", "reshaping", "selecting", "reindexing"}

    def test_batch_capped_by_node_count(self, small_graph):
        pipeline = PreprocessingPipeline(PreprocessingConfig(batch_size=10_000, k=2, num_layers=1))
        batch = pipeline.choose_batch_nodes(small_graph)
        assert len(batch) == small_graph.num_nodes
        assert len(set(batch.tolist())) == len(batch)

    def test_explicit_batch_nodes(self, small_graph):
        result = preprocess(small_graph, k=2, num_layers=1, batch_nodes=[0, 1, 2])
        assert set(result.sample.batch_nodes.tolist()) == {0, 1, 2}

    def test_subgraph_csc_consistent_with_reindex(self, small_graph):
        result = preprocess(small_graph, k=3, num_layers=2, batch_size=6, seed=2)
        rebuilt = coo_to_csc(result.reindex.edges)
        assert np.array_equal(rebuilt.indptr, result.subgraph_csc.indptr)

    def test_layer_wise_strategy(self, small_graph):
        result = preprocess(small_graph, k=3, num_layers=2, batch_size=6, sampling_strategy="layer")
        assert result.sample.num_layers <= 2

    def test_deterministic_given_seed(self, small_graph):
        a = preprocess(small_graph, k=3, num_layers=2, batch_size=6, seed=5)
        b = preprocess(small_graph, k=3, num_layers=2, batch_size=6, seed=5)
        assert np.array_equal(a.reindex.edges.src, b.reindex.edges.src)
