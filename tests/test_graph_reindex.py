"""Tests for subgraph reindexing."""

import numpy as np
import pytest

from repro.graph.convert import coo_to_csc
from repro.graph.generators import GraphSpec, power_law_graph
from repro.graph.reindex import gather_embeddings, reindex_edges, reindex_subgraph
from repro.graph.sampling import node_wise_sample


class TestReindexEdges:
    def test_dense_range(self):
        result = reindex_edges(np.array([10, 20, 10]), np.array([30, 30, 20]))
        all_ids = set(result.edges.src.tolist()) | set(result.edges.dst.tolist())
        assert all_ids == set(range(len(result.mapping)))

    def test_first_seen_order_dst_then_src(self):
        result = reindex_edges(np.array([7]), np.array([9]))
        assert result.mapping[9] == 0
        assert result.mapping[7] == 1

    def test_mapping_consistency(self):
        src = np.array([5, 6, 5, 8])
        dst = np.array([6, 5, 8, 5])
        result = reindex_edges(src, dst)
        for i in range(len(src)):
            assert result.edges.src[i] == result.mapping[int(src[i])]
            assert result.edges.dst[i] == result.mapping[int(dst[i])]

    def test_original_vids_inverse(self):
        result = reindex_edges(np.array([3, 9, 12]), np.array([9, 3, 3]))
        for orig, new in result.mapping.items():
            assert result.original_vids[new] == orig

    def test_empty_edges(self):
        result = reindex_edges(np.array([], dtype=int), np.array([], dtype=int))
        assert result.num_sampled_nodes == 0
        assert result.edges.num_edges == 0

    def test_existing_mapping_respected(self):
        mapping = {42: 0}
        result = reindex_edges(np.array([42]), np.array([43]), mapping=mapping)
        assert result.mapping[42] == 0
        assert result.mapping[43] == 1


class TestReindexSubgraph:
    @pytest.fixture
    def sample(self):
        graph = power_law_graph(GraphSpec(num_nodes=70, num_edges=700, degree_skew=0.4, seed=8))
        csc = coo_to_csc(graph)
        return node_wise_sample(csc, [0, 1, 2, 3], k=4, num_layers=2, seed=0)

    def test_edge_count_preserved(self, sample):
        result = reindex_subgraph(sample)
        assert result.edges.num_edges == sample.num_sampled_edges

    def test_all_sampled_vertices_mapped(self, sample):
        result = reindex_subgraph(sample)
        combined = sample.all_edges()
        touched = set(combined.src.tolist()) | set(combined.dst.tolist())
        assert touched == set(result.mapping.keys())

    def test_structure_preserved(self, sample):
        result = reindex_subgraph(sample)
        combined = sample.all_edges()
        for i in range(combined.num_edges):
            assert result.edges.src[i] == result.mapping[int(combined.src[i])]
            assert result.edges.dst[i] == result.mapping[int(combined.dst[i])]


class TestGatherEmbeddings:
    def test_rows_follow_new_ids(self):
        embeddings = np.arange(50, dtype=float).reshape(25, 2)
        result = reindex_edges(np.array([3, 7]), np.array([7, 11]))
        table = gather_embeddings(embeddings, result)
        assert table.shape == (3, 2)
        assert np.array_equal(table[result.mapping[7]], embeddings[7])
        assert np.array_equal(table[result.mapping[11]], embeddings[11])
