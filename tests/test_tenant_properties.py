"""Property-based tests of the multi-tenant fairness subsystem.

Invariants under test (see ISSUE/DESIGN "Multi-tenancy & traffic models"):

* per-tenant conservation: for every tenant, shed + served == offered, and
  the tenant sections sum to the report's global accounting;
* quota conservation: a tenant operating within its guaranteed rate is
  never shed, however tight the SLO — the guaranteed token bucket admits
  unconditionally (the operator keeps the sum of guarantees within
  capacity, like any reservation scheme);
* weighted shedding: under sustained overload with no excess budget,
  per-tenant shed counts are proportional to each tenant's excess over its
  guarantee (not arrival order), and a shared excess budget is split
  between tenants in proportion to their quota weights;
* hard rate limits shed above the cap even on an idle cluster;
* batching-aware admission strictly increases admitted goodput on a
  mergeable trace (the ROADMAP carry-over);
* weighted-fair batching keeps a light tenant from queueing behind a heavy
  tenant's burst of batch-compatible requests.

Everything here runs the default fast engine; the byte-identity of the two
engines under tenancy is enforced separately in test_engine_equivalence.
"""

import pytest
from conftest import TENANTS, WORKLOAD_POOL, make_bursty_tenant_trace, make_profile
from hypothesis import given, settings, strategies as st

from repro.serving import (
    BatchScheduler,
    InferenceRequest,
    OpenLoopArrivals,
    RequestTrace,
    ServingController,
    ShardedServiceCluster,
    SLOPolicy,
    TenantQuota,
    TraceArrivals,
    merge_traces,
)
from repro.serving.control import MAX_BURST_TOKENS


def _serve(services, trace, slo, name="CPU", num_shards=2, scheduler=None,
           batch_aware=False):
    cluster = ShardedServiceCluster(
        services[name],
        num_shards=num_shards,
        scheduler=scheduler or BatchScheduler(max_batch_size=2, max_wait_seconds=0.002),
    )
    controller = ServingController(cluster, slo=slo, batch_aware=batch_aware)
    return controller.serve(TraceArrivals(trace))


def _uniform_tenant_trace(rates, num_per_tenant, workload=None, seed=0):
    """One uniform-rate open-loop stream per tenant (deterministic gaps)."""
    workload = workload or make_profile()
    streams = [
        OpenLoopArrivals(
            [workload], rate_rps=rate, process="uniform", seed=seed + i,
            tenant=tenant,
        )
        for i, (tenant, rate) in enumerate(sorted(rates.items()))
    ]
    return merge_traces([stream.trace(num_per_tenant) for stream in streams])


# ------------------------------------------------------------- conservation
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_per_tenant=st.integers(min_value=3, max_value=20),
    peak=st.sampled_from([100.0, 800.0, 3000.0]),
    slo_ms=st.sampled_from([20.0, 100.0, 500.0]),
    guaranteed=st.sampled_from([0.0, 10.0, 50.0]),
)
def test_per_tenant_conservation(services, seed, num_per_tenant, peak, slo_ms,
                                 guaranteed):
    """shed + served == offered per tenant, and tenants sum to the totals."""
    trace = make_bursty_tenant_trace(
        WORKLOAD_POOL, num_per_tenant=num_per_tenant, peak_rate_rps=peak, seed=seed
    )
    slo = SLOPolicy(
        default_slo_seconds=slo_ms * 1e-3,
        per_tenant={t: TenantQuota(guaranteed_rps=guaranteed) for t in TENANTS}
        if guaranteed > 0
        else {},
    )
    report = _serve(services, trace, slo)
    stats = report.tenant_stats
    assert set(stats) <= set(TENANTS)
    offered_in_trace = {}
    for request in trace:
        offered_in_trace[request.tenant] = offered_in_trace.get(request.tenant, 0) + 1
    for tenant, ts in stats.items():
        assert ts.served + ts.shed == ts.offered
        assert ts.offered == offered_in_trace[tenant]
        assert 0 <= ts.slo_met <= ts.served
        assert ts.latency.count == ts.served
    assert sum(ts.served for ts in stats.values()) == report.num_requests
    assert sum(ts.shed for ts in stats.values()) == report.num_shed
    assert sum(ts.offered for ts in stats.values()) == report.num_offered
    assert sum(ts.slo_met for ts in stats.values()) == report.goodput.slo_met


# -------------------------------------------------------- quota conservation
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_per_tenant=st.integers(min_value=5, max_value=25),
    rate=st.sampled_from([5.0, 20.0, 60.0]),
    headroom=st.sampled_from([1.5, 2.0, 4.0]),
    slo_us=st.sampled_from([1.0, 10.0]),
)
def test_within_guarantee_traffic_is_never_shed(
    services, seed, num_per_tenant, rate, headroom, slo_us
):
    """Quota conservation: guarantees admit unconditionally, so tenants
    offering within their guaranteed rate see zero shedding even under an
    impossibly tight SLO that the prediction tier would always reject."""
    trace = _uniform_tenant_trace(
        {tenant: rate for tenant in TENANTS}, num_per_tenant, seed=seed
    )
    slo = SLOPolicy(
        default_slo_seconds=slo_us * 1e-6,  # prediction tier sheds everything
        per_tenant={
            tenant: TenantQuota(guaranteed_rps=headroom * rate) for tenant in TENANTS
        },
    )
    report = _serve(services, trace, slo)
    assert report.num_shed == 0
    assert report.num_requests == len(trace)
    for decision in report.decisions:
        assert decision.admitted
        assert decision.reason == "guaranteed"


# ------------------------------------------------------- weighted shedding
@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    num_tenants=st.integers(min_value=2, max_value=4),
    guaranteed=st.sampled_from([4.0, 10.0]),
    excess_factor=st.sampled_from([1.0, 2.0, 3.0]),
)
def test_shedding_proportional_to_excess_over_guarantee(
    services, seed, num_tenants, guaranteed, excess_factor
):
    """With a tight SLO and no excess budget, each tenant keeps roughly its
    guaranteed admissions and sheds its excess — shed counts track the
    per-tenant excess instead of arrival order."""
    tenants = [f"t{i}" for i in range(num_tenants)]
    offered_rate = {
        # Every tenant offers its guarantee plus a distinct excess.
        tenant: guaranteed * (1.0 + excess_factor * (i + 1))
        for i, tenant in enumerate(tenants)
    }
    num_per_tenant = 40
    trace = _uniform_tenant_trace(offered_rate, num_per_tenant, seed=seed)
    slo = SLOPolicy(
        default_slo_seconds=1e-6,  # prediction tier always sheds
        per_tenant={t: TenantQuota(guaranteed_rps=guaranteed) for t in tenants},
    )
    report = _serve(services, trace, slo)
    stats = report.tenant_stats
    for tenant in tenants:
        ts = stats[tenant]
        duration = num_per_tenant / offered_rate[tenant]
        # Token bucket: one burst-capacity allowance plus accrual over the
        # tenant's stream duration (uniform gaps).
        expected_served = min(
            ts.offered, guaranteed * duration + max(1.0, guaranteed)
        )
        assert ts.served == pytest.approx(expected_served, abs=3.0)
        expected_shed = ts.offered - expected_served
        assert ts.shed == pytest.approx(expected_shed, abs=3.0)
    # Proportionality across tenants: served/offered tracks the guarantee
    # share, so the heavier the excess, the higher the shed rate.
    shed_rates = [stats[t].shed_rate for t in tenants]
    assert shed_rates == sorted(shed_rates)


def test_admission_buckets_reset_between_runs(services):
    """Reusing one ServingController across runs must not leak bucket
    state: the second run's simulated clock restarts at 0, so a depleted
    guarantee from run one would otherwise shed within-guarantee traffic."""
    rate = 5.0
    trace = _uniform_tenant_trace({"steady": rate}, 20, seed=7)
    slo = SLOPolicy(
        default_slo_seconds=1e-6,  # only the guaranteed tier can admit
        per_tenant={"steady": TenantQuota(guaranteed_rps=rate)},
    )
    cluster = ShardedServiceCluster(services["CPU"], num_shards=2)
    controller = ServingController(cluster, slo=slo)
    first = controller.serve(TraceArrivals(trace))
    second = controller.serve(TraceArrivals(trace))
    assert first.num_shed == 0
    assert second.num_shed == 0


def test_excess_budget_not_minted_for_unlisted_tenants(services):
    """Only quota-listed tenants share excess_rps: an unlisted tenant must
    not mint its own budget-sized slice during overload."""
    rate = 50.0
    trace = _uniform_tenant_trace({"listed": rate, "unlisted": rate}, 80, seed=8)
    slo = SLOPolicy(
        default_slo_seconds=1e-6,  # only the excess tier can admit
        per_tenant={"listed": TenantQuota(guaranteed_rps=0.0, weight=1.0)},
        excess_rps=10.0,
    )
    report = _serve(services, trace, slo)
    stats = report.tenant_stats
    assert stats["unlisted"].served == 0
    assert stats["listed"].served > 0
    # The listed tenant's admissions stay within the budget (plus burst).
    duration = 80 / rate
    assert stats["listed"].served <= 10.0 * duration + 10.0 + 1


def test_fairness_metric_helpers():
    from repro.analysis.metrics import TenantStats, attainment_spread, jain_fairness_index

    equal = [
        TenantStats(tenant="a", offered=10, served=10, slo_met=8),
        TenantStats(tenant="b", offered=10, served=10, slo_met=8),
    ]
    assert attainment_spread(equal) == 1.0
    assert jain_fairness_index([0.8, 0.8]) == pytest.approx(1.0)
    skewed = [
        TenantStats(tenant="a", offered=10, served=10, slo_met=9),
        TenantStats(tenant="b", offered=10, served=10, slo_met=3),
    ]
    assert attainment_spread(skewed) == pytest.approx(3.0)
    assert 0.5 < jain_fairness_index([0.9, 0.3]) < 1.0
    starved = [
        TenantStats(tenant="a", offered=10, served=10, slo_met=9),
        TenantStats(tenant="b", offered=10, served=0, slo_met=0),
    ]
    assert attainment_spread(starved) == float("inf")
    assert attainment_spread([]) == 0.0
    assert jain_fairness_index([]) == 0.0
    assert jain_fairness_index([0.0, 0.0]) == 0.0


def test_excess_budget_split_by_weight(services):
    """A shared excess budget admits beyond-guarantee traffic roughly in
    proportion to quota weights (3:1 here), not first-come-first-served."""
    rate = 50.0
    num_per_tenant = 100
    trace = _uniform_tenant_trace(
        {"heavy": rate, "light": rate}, num_per_tenant, seed=1
    )
    slo = SLOPolicy(
        default_slo_seconds=1e-6,  # only the excess tier can admit
        per_tenant={
            "heavy": TenantQuota(guaranteed_rps=0.0, weight=3.0),
            "light": TenantQuota(guaranteed_rps=0.0, weight=1.0),
        },
        excess_rps=20.0,
    )
    report = _serve(services, trace, slo)
    stats = report.tenant_stats
    assert stats["heavy"].served > stats["light"].served > 0
    ratio = stats["heavy"].served / stats["light"].served
    assert 2.0 <= ratio <= 4.5
    for decision in report.decisions:
        if decision.admitted:
            assert decision.reason == "weighted-excess"


def test_rate_limit_sheds_above_cap_even_when_idle(services):
    """limit_rps is a hard cap: an idle cluster still sheds above it."""
    rate = 100.0
    trace = _uniform_tenant_trace({"capped": rate}, 50, seed=2)
    slo = SLOPolicy(
        default_slo_seconds=100.0,  # prediction would admit everything
        per_tenant={
            # Small burst allowance so the steady-state cap (1 in 4) shows
            # within a 50-request trace.
            "capped": TenantQuota(limit_rps=rate / 4.0, burst_seconds=0.05)
        },
    )
    report = _serve(services, trace, slo)
    stats = report.tenant_stats["capped"]
    assert stats.shed > 0
    # Roughly three quarters of the offered load exceeds the cap.
    assert stats.shed == pytest.approx(0.75 * stats.offered, rel=0.25)
    reasons = {d.reason for d in report.decisions if not d.admitted}
    assert reasons == {"rate-limit"}


def test_idle_gap_burst_credit_is_clamped(services):
    """A long-idle high-guarantee tenant cannot flood an unbounded burst.

    Regression: ``guaranteed_rps * burst_seconds`` used to be the bucket
    capacity verbatim, so a tenant with ``guaranteed_rps=500`` returning
    from an idle stretch held 500 instantaneous admissions — an arbitrarily
    large same-instant flood past every co-tenant.  Capacity (and the
    post-idle refill) is now clamped to ``MAX_BURST_TOKENS``.
    """
    profile = make_profile()
    rate = 500.0
    trace = RequestTrace(
        # One request to open the bucket, a 100-second idle gap (refilling
        # 50k tokens' worth at the unclamped rate), then a same-instant
        # 200-request flood.
        [InferenceRequest(request_id=0, arrival_seconds=0.0, workload=profile,
                          tenant="whale")]
        + [
            InferenceRequest(request_id=1 + i, arrival_seconds=100.0,
                             workload=profile, tenant="whale")
            for i in range(200)
        ]
    )
    slo = SLOPolicy(
        default_slo_seconds=1e-6,  # only the guaranteed tier can admit
        per_tenant={"whale": TenantQuota(guaranteed_rps=rate)},
    )
    report = _serve(services, trace, slo)
    stats = report.tenant_stats["whale"]
    # The opener plus a full (clamped) bucket at the flood instant.
    assert stats.served == MAX_BURST_TOKENS + 1
    assert stats.shed == 200 - MAX_BURST_TOKENS


# -------------------------------------------------- batching-aware admission
def test_batch_aware_admission_increases_admitted_goodput(services):
    """On a mergeable trace (one compatibility key, arrivals inside the
    batching window) pricing admission at the marginal merged-batch cost
    strictly beats the conservative standalone estimate.

    Arrival clusters of ``max_batch_size`` coincident requests make the
    difference sharp: the conservative estimate charges every cluster
    member a full standalone pass (the pending-work term compounds), so
    members beyond the first blow the SLO and shed; the marginal estimate
    prices them at the merged-batch increment and the whole cluster rides
    one batch — served within the SLO because the cluster spacing keeps
    the shard drained.
    """
    from repro.serving import InferenceRequest, RequestTrace

    workload = make_profile()
    standalone = services["CPU"].estimate_service_seconds(workload)
    group, spacing = 4, 2.0 * standalone
    trace = RequestTrace(
        [
            InferenceRequest(g * group + i, g * spacing, workload)
            for g in range(15)
            for i in range(group)
        ]
    )
    scheduler = BatchScheduler(max_batch_size=group, max_wait_seconds=1e-3)
    slo = SLOPolicy(default_slo_seconds=1.9 * standalone)

    def run(batch_aware):
        return _serve(
            services, trace, slo, num_shards=1, scheduler=scheduler,
            batch_aware=batch_aware,
        )

    conservative = run(False)
    marginal = run(True)
    assert marginal.goodput.slo_met > conservative.goodput.slo_met
    assert marginal.num_requests > conservative.num_requests
    assert marginal.goodput_rps > conservative.goodput_rps


# ------------------------------------------------------ weighted-fair batching
def test_fair_batching_shields_light_tenant_from_heavy_burst(services):
    """A light tenant's request lands in the first fair batch instead of
    queueing behind the heavy tenant's whole burst."""
    workload = make_profile()
    heavy = [
        # A same-instant burst of batch-compatible heavy-tenant requests.
        OpenLoopArrivals([workload], rate_rps=1e6, process="uniform", seed=4,
                         tenant="heavy").trace(20)
    ]
    light = [
        OpenLoopArrivals([workload], rate_rps=1e6, process="uniform", seed=5,
                         tenant="light").trace(1)
    ]
    trace = merge_traces(heavy + light)

    def sojourn_of_light(tenant_weights):
        scheduler = BatchScheduler(
            max_batch_size=4, max_wait_seconds=0.005, tenant_weights=tenant_weights
        )
        cluster = ShardedServiceCluster(
            services["CPU"], num_shards=1, scheduler=scheduler
        )
        report = cluster.serve_trace(trace)
        [light_record] = [
            s for s in report.served if s.request.tenant == "light"
        ]
        return light_record.sojourn_seconds

    fifo = sojourn_of_light(None)
    fair = sojourn_of_light({"heavy": 1.0, "light": 1.0})
    assert fair < fifo


def test_fair_batching_is_work_conserving_for_a_lone_tenant(services):
    """With a single tenant, fair mode degenerates to the FIFO fill: same
    batches, same report."""
    import json

    trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=600.0, seed=6).trace(30)

    def render(tenant_weights):
        scheduler = BatchScheduler(
            max_batch_size=3, max_wait_seconds=0.004, tenant_weights=tenant_weights
        )
        cluster = ShardedServiceCluster(
            services["CPU"], num_shards=2, scheduler=scheduler
        )
        return json.dumps(cluster.serve_trace(trace).as_dict(), sort_keys=True)

    assert render(None) == render({"default": 1.0})


# ------------------------------------------------------------- validation
def test_quota_and_policy_validation():
    with pytest.raises(ValueError):
        TenantQuota(guaranteed_rps=-1.0)
    with pytest.raises(ValueError):
        TenantQuota(weight=0.0)
    with pytest.raises(ValueError):
        TenantQuota(slo_seconds=0.0)
    with pytest.raises(ValueError):
        TenantQuota(limit_rps=0.0)
    with pytest.raises(ValueError):
        TenantQuota(burst_seconds=0.0)
    with pytest.raises(ValueError):
        SLOPolicy(default_slo_seconds=1.0, excess_rps=-1.0)
    with pytest.raises(ValueError):
        BatchScheduler(tenant_weights={"t": 0.0})
    policy = SLOPolicy(
        default_slo_seconds=1.0,
        per_workload={"wl-s": 0.5},
        per_tenant={"vip": TenantQuota(slo_seconds=0.25)},
    )
    assert policy.slo_for(WORKLOAD_POOL[0]) == 0.5
    assert policy.slo_for(WORKLOAD_POOL[0], "vip") == 0.25
    assert policy.slo_for(WORKLOAD_POOL[0], "other") == 0.5
    assert policy.quota_for("other").guaranteed_rps == 0.0
    payload = policy.as_dict()
    assert payload["per_tenant"]["vip"]["slo_seconds"] == 0.25


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
