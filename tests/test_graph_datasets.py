"""Tests for the Table II dataset registry and generators."""

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASETS,
    DATASET_ORDER,
    dataset_table,
    datasets_by_category,
    load_dataset,
    size_class,
)
from repro.graph.generators import (
    GraphSpec,
    grow_graph,
    power_law_graph,
    skew_for_average_degree,
    uniform_random_graph,
)


class TestRegistry:
    def test_eleven_datasets(self):
        assert len(DATASETS) == 11
        assert len(DATASET_ORDER) == 11

    def test_order_matches_registry(self):
        assert set(DATASET_ORDER) == set(DATASETS)

    def test_table_rows(self):
        rows = dataset_table()
        assert len(rows) == 11
        assert rows[0]["key"] == "PH"
        assert rows[-1]["key"] == "TB"

    def test_table2_characteristics(self):
        assert DATASETS["TB"].num_edges == 400_000_000
        assert DATASETS["MV"].avg_degree == pytest.approx(3052.0)
        assert DATASETS["AX"].num_nodes == 169_000

    def test_categories(self):
        assert len(datasets_by_category("citation")) == 3
        assert len(datasets_by_category("e-commerce")) == 2
        assert datasets_by_category("unknown") == []

    def test_size_classes(self):
        assert size_class(DATASETS["PH"]) == "small"
        assert size_class(DATASETS["YL"]) == "medium"
        assert size_class(DATASETS["AM"]) == "large"

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            load_dataset("XX")


class TestLoading:
    def test_scaled_graph_matches_degree(self):
        info = DATASETS["AX"]
        g = load_dataset("AX", scale=1 / 500)
        assert g.num_edges == int(info.num_edges / 500)
        # Average degree should be within a factor of ~2 of the original.
        assert g.avg_degree == pytest.approx(info.avg_degree, rel=0.6)

    def test_deterministic_by_seed(self):
        a = load_dataset("PH", scale=1 / 2000, seed=3)
        b = load_dataset("PH", scale=1 / 2000, seed=3)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.dst, b.dst)

    def test_minimum_sizes_enforced(self):
        g = load_dataset("PH", scale=1e-9)
        assert g.num_edges >= 256
        assert g.num_nodes >= 64


class TestGenerators:
    def test_uniform_graph_shape(self):
        g = uniform_random_graph(100, 500, seed=1)
        assert g.num_nodes == 100
        assert g.num_edges == 500

    def test_skewed_graph_has_hubs(self):
        flat = power_law_graph(GraphSpec(num_nodes=200, num_edges=4000, degree_skew=0.0, seed=2))
        skewed = power_law_graph(GraphSpec(num_nodes=200, num_edges=4000, degree_skew=1.2, seed=2))
        assert skewed.max_degree() > flat.max_degree()

    def test_empty_spec(self):
        g = power_law_graph(GraphSpec(num_nodes=0, num_edges=0))
        assert g.num_edges == 0

    def test_skew_heuristic_monotone(self):
        assert skew_for_average_degree(5) <= skew_for_average_degree(100)
        assert skew_for_average_degree(100) <= skew_for_average_degree(2000)

    def test_grow_graph_adds_edges(self):
        g = uniform_random_graph(50, 200, seed=3)
        grown = grow_graph(g, 50)
        assert grown.num_edges == 250
        assert g.num_edges == 200

    def test_grow_graph_preferential_targets_existing_dst(self):
        g = uniform_random_graph(50, 200, seed=4)
        rng = np.random.default_rng(0)
        grown = grow_graph(g, 100, rng=rng, preferential=True)
        new_dst = set(grown.dst[200:].tolist())
        assert new_dst.issubset(set(g.dst.tolist()))
