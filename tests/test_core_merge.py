"""Tests for Algorithm 1: UPE-based merge sorting."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.merge import merge_rounds, upe_merge, upe_merge_sort
from repro.core.upe import UPE


class TestMergeRounds:
    def test_values(self):
        assert merge_rounds(1) == 0
        assert merge_rounds(2) == 1
        assert merge_rounds(3) == 2
        assert merge_rounds(8) == 3
        assert merge_rounds(9) == 4


class TestUPEMerge:
    def test_merges_two_sorted_arrays(self):
        upe = UPE(width=8)
        a = np.array([1, 4, 7, 10, 13])
        b = np.array([2, 3, 8, 9, 20, 21])
        merged, cycles = upe_merge(upe, a, b, key_bits=8)
        assert merged.tolist() == sorted(a.tolist() + b.tolist())
        assert cycles > 0

    def test_empty_inputs(self):
        upe = UPE(width=8)
        a = np.array([1, 2, 3])
        merged, cycles = upe_merge(upe, a, np.array([], dtype=int), key_bits=8)
        assert merged.tolist() == [1, 2, 3]
        assert cycles == 0
        merged, _ = upe_merge(upe, np.array([], dtype=int), a, key_bits=8)
        assert merged.tolist() == [1, 2, 3]

    def test_skewed_lengths(self):
        upe = UPE(width=4)
        a = np.array([100])
        b = np.arange(20)
        merged, _ = upe_merge(upe, a, b, key_bits=8)
        assert merged.tolist() == sorted(a.tolist() + b.tolist())

    def test_duplicates(self):
        upe = UPE(width=4)
        a = np.array([1, 1, 1, 5, 5])
        b = np.array([1, 5, 5, 9])
        merged, _ = upe_merge(upe, a, b, key_bits=8)
        assert merged.tolist() == sorted(a.tolist() + b.tolist())

    @given(
        st.lists(st.integers(0, 1000), min_size=0, max_size=60),
        st.lists(st.integers(0, 1000), min_size=0, max_size=60),
        st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_property(self, a, b, width):
        upe = UPE(width=width)
        merged, _ = upe_merge(upe, np.array(sorted(a)), np.array(sorted(b)), key_bits=10)
        assert merged.tolist() == sorted(a + b)


class TestMergeSort:
    def test_merges_many_chunks(self):
        upe = UPE(width=8)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 500, size=100)
        chunks = [np.sort(data[i : i + 8]) for i in range(0, 100, 8)]
        merged, cycles = upe_merge_sort(upe, chunks, key_bits=10)
        assert merged.tolist() == sorted(data.tolist())
        assert cycles > 0

    def test_single_chunk(self):
        upe = UPE(width=8)
        chunk = np.array([1, 2, 3])
        merged, cycles = upe_merge_sort(upe, [chunk], key_bits=8)
        assert merged.tolist() == [1, 2, 3]
        assert cycles == 0

    def test_no_chunks(self):
        upe = UPE(width=8)
        merged, cycles = upe_merge_sort(upe, [], key_bits=8)
        assert merged.size == 0
        assert cycles == 0
