"""Tests for the AutoGNN system variants and the AGNN-lib software layer."""

import pytest

from repro.core.bitstream import generate_bitstream_library
from repro.core.reconfig import FULL_RECONFIG_SECONDS
from repro.system.agnn_lib import AGNNLib, GraphProfile
from repro.system.variants import (
    AutoPreSystem,
    DynPreSystem,
    StatPreSystem,
    make_dyn_ablations,
    tuned_config_for,
)
from repro.system.workload import WorkloadProfile


@pytest.fixture
def workload_large():
    return WorkloadProfile.from_dataset("AM")


@pytest.fixture
def workload_small():
    return WorkloadProfile.from_dataset("AX")


class TestVariants:
    def test_all_variants_positive_latency(self, workload_large):
        for system in (AutoPreSystem(), StatPreSystem(), DynPreSystem()):
            report = system.evaluate(workload_large)
            assert report.preprocessing.total > 0
            assert report.transfers.total > 0
            assert 0 <= report.bandwidth_utilization <= 1

    def test_autopre_not_faster_than_statpre(self, workload_large):
        auto = AutoPreSystem().evaluate(workload_large)
        stat = StatPreSystem().evaluate(workload_large)
        assert stat.preprocessing.total <= auto.preprocessing.total * 1.001

    def test_lut_utilization_ordering(self, workload_large):
        auto = AutoPreSystem().evaluate(workload_large)
        stat = StatPreSystem().evaluate(workload_large)
        assert auto.extras["lut_utilization"] < stat.extras["lut_utilization"]
        assert 0 < auto.extras["lut_utilization"] < 1
        assert 0 < stat.extras["lut_utilization"] <= 1

    def test_transfers_only_updates_and_subgraph(self, workload_large):
        report = StatPreSystem().evaluate(workload_large)
        assert report.transfers.host_to_gpu == 0.0
        assert report.transfers.gpu_to_accelerator == 0.0
        assert report.transfers.host_to_accelerator > 0
        assert report.transfers.accelerator_to_gpu > 0

    def test_autognn_beats_gpu_baseline(self, workload_large):
        from repro.baselines.gpu import GPUPreprocessingSystem

        gpu = GPUPreprocessingSystem().evaluate(workload_large)
        stat = StatPreSystem().evaluate(workload_large)
        assert stat.total < gpu.total

    def test_tuned_config_fits(self, workload_small):
        library = generate_bitstream_library()
        config = tuned_config_for(workload_small, library)
        assert config.fits()

    def test_statpre_tuned_for(self, workload_small):
        system = StatPreSystem.tuned_for(workload_small)
        assert system.config.fits()


class TestDynPre:
    def test_reconfigures_for_new_workload(self, workload_small, workload_large):
        system = DynPreSystem()
        system.evaluate(workload_small)
        config_after_small = system.config.key()
        second = system.evaluate(workload_large)
        # Either the configuration changed (reconfiguration charged) or the
        # cost model judged the current one adequate.
        if system.config.key() != config_after_small:
            assert second.reconfiguration > 0
        else:
            assert second.reconfiguration == 0.0

    def test_steady_state_has_no_reconfiguration(self, workload_large):
        system = DynPreSystem()
        system.evaluate(workload_large)
        steady = system.evaluate(workload_large)
        assert steady.reconfiguration == 0.0

    def test_reconfiguration_bounded_by_full_cost(self, workload_small):
        system = DynPreSystem()
        report = system.evaluate(workload_small)
        assert report.reconfiguration <= FULL_RECONFIG_SECONDS + 1e-9

    def test_dynpre_not_worse_than_statpre_steady_state(self, workload_small):
        tuned_mv = tuned_config_for(WorkloadProfile.from_dataset("MV"), generate_bitstream_library())
        stat = StatPreSystem(config=tuned_mv)
        dyn = DynPreSystem(config=tuned_mv)
        dyn.evaluate(workload_small)  # allow reconfiguration
        stat_report = stat.evaluate(workload_small)
        dyn_report = dyn.evaluate(workload_small)
        assert dyn_report.preprocessing.total <= stat_report.preprocessing.total * 1.001

    def test_ablation_ladder(self, workload_small):
        ablations = make_dyn_ablations()
        names = list(ablations)
        assert names == ["StatPre", "DynArea", "DynSCR", "DynUPE"]
        totals = {}
        for name, system in ablations.items():
            system.evaluate(workload_small)  # warm/reconfigure
            totals[name] = system.evaluate(workload_small).preprocessing.total
        # Each additional degree of freedom must not hurt steady-state latency.
        assert totals["DynSCR"] <= totals["DynArea"] * 1.001
        assert totals["DynUPE"] <= totals["DynSCR"] * 1.001


class TestAGNNLib:
    def test_upload_full_then_incremental(self, small_graph):
        lib = AGNNLib()
        first = lib.upload_graph(small_graph)
        grown = small_graph.add_edges([0, 1], [2, 3])
        second = lib.update_graph(grown)
        assert first > 0
        assert second <= first
        assert lib.profile.num_edges == grown.num_edges

    def test_profile_fields(self, small_graph):
        profile = GraphProfile.from_graph(small_graph)
        assert profile.num_nodes == small_graph.num_nodes
        assert profile.max_degree >= profile.avg_degree
        workload = profile.to_workload(k=3, num_layers=2, batch_size=10)
        assert workload.k == 3

    def test_reconfiguration_decision_and_apply(self):
        lib = AGNNLib()
        workload = WorkloadProfile.from_dataset("SO")
        decision = lib.evaluate_reconfiguration(workload)
        assert decision.predicted_improvement >= 0 or not decision.reconfigure
        event = lib.apply_reconfiguration(decision)
        if decision.reconfigure:
            assert event is not None
            assert lib.config.key() == decision.target.key()
        else:
            assert event is None

    def test_prepare_idempotent(self):
        lib = AGNNLib()
        workload = WorkloadProfile.from_dataset("AM")
        _, first_cost = lib.prepare(workload)
        _, second_cost = lib.prepare(workload)
        assert second_cost == 0.0
