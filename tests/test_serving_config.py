"""The unified ``ServingConfig`` surface and its legacy-kwarg shim.

Three contracts:

1. *Validation*: a ``ServingConfig`` rejects contradictory field
   combinations at construction, and ``serve_trace`` rejects online-only
   features (admission, autoscaling) up front.
2. *Shim equivalence*: the deprecated per-call keyword arguments still work,
   emit ``DeprecationWarning``, and produce **byte-identical** reports to
   the equivalent ``config=`` call — the mapped fields are the very objects
   the old signature received.
3. *Override hygiene*: per-run ``engine`` / ``tenant_weights`` overrides
   never leak into later runs on the same cluster.
"""

import json

import pytest
from conftest import WORKLOAD_POOL, make_bursty_tenant_trace

import repro.serving as serving
from repro.serving import (
    AdmissionController,
    Autoscaler,
    BatchScheduler,
    DegradationPolicy,
    ENGINE_FAST,
    ENGINE_REFERENCE,
    FAULT_CRASH,
    FaultEvent,
    FaultSchedule,
    OpenLoopArrivals,
    ServingConfig,
    ShardedServiceCluster,
    SLOPolicy,
    TraceArrivals,
)


def _render(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


def _slo() -> SLOPolicy:
    return SLOPolicy(default_slo_seconds=0.2)


def _faults() -> FaultSchedule:
    return FaultSchedule(
        events=(FaultEvent(seconds=0.02, shard_id=0, kind=FAULT_CRASH),),
        retry_budget=1,
        retry_backoff_seconds=0.005,
    )


def _trace(num_requests=24, seed=5):
    return OpenLoopArrivals(WORKLOAD_POOL, rate_rps=400.0, seed=seed).trace(
        num_requests
    )


def _cluster(services, **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault(
        "scheduler", BatchScheduler(max_batch_size=3, max_wait_seconds=0.003)
    )
    return ShardedServiceCluster(services["DynPre"], **kwargs)


# ---------------------------------------------------------------- validation
class TestValidation:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            ServingConfig(engine="warp")

    def test_rejects_admission_knobs_alongside_controller(self):
        controller = AdmissionController(policy=_slo())
        for knob in (
            {"record_decisions": False},
            {"batch_aware": True},
            {"degradation": DegradationPolicy()},
        ):
            with pytest.raises(ValueError, match="AdmissionController"):
                ServingConfig(controller=controller, **knob)

    def test_rejects_conflicting_slo_and_controller(self):
        with pytest.raises(ValueError, match="disagree"):
            ServingConfig(slo=_slo(), controller=AdmissionController(policy=_slo()))
        # The controller's own policy object is fine (scoring alias).
        controller = AdmissionController(policy=_slo())
        config = ServingConfig(slo=controller.policy, controller=controller)
        assert config.scoring_slo() is controller.policy

    def test_rejects_admission_without_slo(self):
        for kwargs in (
            {"admit": True},
            {"batch_aware": True},
            {"record_decisions": False},
            {"degradation": DegradationPolicy()},
        ):
            with pytest.raises(ValueError, match="slo"):
                ServingConfig(**kwargs)

    def test_rejects_fault_aware_without_faults(self):
        with pytest.raises(ValueError, match="faults"):
            ServingConfig(fault_aware=True)

    def test_rejects_bad_tenant_weights(self):
        with pytest.raises(ValueError, match="empty"):
            ServingConfig(tenant_weights={})
        with pytest.raises(ValueError, match="positive"):
            ServingConfig(tenant_weights={"free": 0.0})

    def test_serve_trace_rejects_online_only_features(self, services):
        cluster = _cluster(services)
        trace = _trace(4)
        with pytest.raises(ValueError, match="serve_online"):
            cluster.serve_trace(
                trace, config=ServingConfig(autoscaler=Autoscaler(max_shards=2))
            )
        with pytest.raises(ValueError, match="serve_online"):
            cluster.serve_trace(trace, config=ServingConfig(slo=_slo(), admit=True))

    def test_rejects_config_plus_legacy_kwargs(self, services):
        cluster = _cluster(services)
        trace = _trace(4)
        with pytest.raises(ValueError, match="not both"):
            cluster.serve_trace(trace, slo=_slo(), config=ServingConfig())
        with pytest.raises(ValueError, match="not both"):
            cluster.serve_online(
                TraceArrivals(trace), slo=_slo(), config=ServingConfig()
            )

    def test_resolved_controller_carries_knobs(self):
        config = ServingConfig(
            slo=_slo(),
            admit=True,
            batch_aware=True,
            record_decisions=False,
            degradation=DegradationPolicy(k_factor=0.5),
        )
        controller = config.resolved_controller()
        assert controller.batch_aware is True
        assert controller.record_decisions is False
        assert controller.degradation is config.degradation
        # Score-only config builds no controller at all.
        assert ServingConfig(slo=_slo()).resolved_controller() is None

    def test_resolved_faults_applies_override(self):
        faults = _faults()
        assert ServingConfig(faults=faults).resolved_faults() is faults
        same = ServingConfig(faults=faults, fault_aware=True).resolved_faults()
        assert same is faults  # no-op override keeps the original object
        flipped = ServingConfig(faults=faults, fault_aware=False).resolved_faults()
        assert flipped.fault_aware is False
        assert flipped.events == faults.events


# ------------------------------------------------------------ shim identity
class TestLegacyShim:
    def test_legacy_kwargs_warn(self, services):
        cluster = _cluster(services)
        trace = _trace(6)
        with pytest.warns(DeprecationWarning, match="serve_trace"):
            cluster.serve_trace(trace, slo=_slo())
        with pytest.warns(DeprecationWarning, match="serve_online"):
            cluster.serve_online(TraceArrivals(trace), slo=_slo())

    def test_config_path_does_not_warn(self, services, recwarn):
        cluster = _cluster(services)
        trace = _trace(6)
        cluster.serve_trace(trace, config=ServingConfig(slo=_slo()))
        cluster.serve_online(TraceArrivals(trace), config=ServingConfig(slo=_slo()))
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_offline_shim_byte_identical(self, services):
        trace = _trace()
        slo, faults = _slo(), _faults()
        with pytest.warns(DeprecationWarning):
            legacy = _cluster(services).serve_trace(trace, slo=slo, faults=faults)
        config = _cluster(services).serve_trace(
            trace, config=ServingConfig(slo=slo, faults=faults)
        )
        assert _render(legacy) == _render(config)

    def test_online_shim_byte_identical(self, services):
        trace = _trace()
        slo, faults = _slo(), _faults()

        def legacy():
            cluster = _cluster(services)
            with pytest.warns(DeprecationWarning):
                return cluster.serve_online(
                    TraceArrivals(trace),
                    slo=slo,
                    admission=AdmissionController(policy=slo),
                    faults=faults,
                )

        def unified():
            return _cluster(services).serve_online(
                TraceArrivals(trace),
                config=ServingConfig(
                    controller=AdmissionController(policy=slo), faults=faults
                ),
            )

        assert _render(legacy()) == _render(unified())

    def test_admit_shorthand_equals_handbuilt_controller(self, services):
        trace = _trace()
        slo = _slo()
        handbuilt = _cluster(services).serve_online(
            TraceArrivals(trace),
            config=ServingConfig(controller=AdmissionController(policy=slo)),
        )
        shorthand = _cluster(services).serve_online(
            TraceArrivals(trace), config=ServingConfig(slo=slo, admit=True)
        )
        assert _render(handbuilt) == _render(shorthand)


# ------------------------------------------------------------------ overrides
class TestRunOverrides:
    def test_engine_override_is_applied_and_restored(self, services):
        trace = _trace()
        reference = _cluster(services, engine=ENGINE_REFERENCE)
        fast = _cluster(services, engine=ENGINE_FAST)
        overridden = reference.serve_trace(
            trace, config=ServingConfig(engine=ENGINE_FAST)
        )
        assert reference.engine == ENGINE_REFERENCE  # restored after the run
        native = fast.serve_trace(trace)
        assert _render(overridden) == _render(native)
        # Fast-engine artifacts (streaming aggregates) prove the override ran.
        assert overridden.aggregates is not None

    def test_tenant_weights_override_is_applied_and_restored(self, services):
        trace = make_bursty_tenant_trace(WORKLOAD_POOL, num_per_tenant=10, seed=3)
        weights = {"ent": 3.0, "free": 1.0, "pro": 2.0}
        plain_scheduler = BatchScheduler(max_batch_size=3, max_wait_seconds=0.003)
        cluster = _cluster(services, scheduler=plain_scheduler)
        overridden = cluster.serve_trace(
            trace, config=ServingConfig(tenant_weights=weights)
        )
        assert cluster.scheduler is plain_scheduler  # restored after the run
        weighted = _cluster(
            services,
            scheduler=BatchScheduler(
                max_batch_size=3, max_wait_seconds=0.003, tenant_weights=weights
            ),
        ).serve_trace(trace)
        assert _render(overridden) == _render(weighted)
        # And the override really changed batch formation vs the plain run.
        plain = _cluster(services, scheduler=plain_scheduler).serve_trace(trace)
        assert _render(plain) != _render(overridden)


# ------------------------------------------------------------------- exports
def test_public_surface_is_importable():
    for name in serving.__all__:
        assert hasattr(serving, name), name
    for name in (
        "ServingConfig",
        "DegradationPolicy",
        "QUALITY_FULL",
        "QUALITY_DEGRADED",
        "QUALITY_TIERS",
    ):
        assert name in serving.__all__


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
