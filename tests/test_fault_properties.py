"""Property-based tests of the fault-tolerant serving contracts.

1. *Conservation*: under any fault schedule, every offered request is
   accounted for exactly once — ``offered == served + shed + failed`` — in
   both report counters and the arrival source's own bookkeeping.
2. *Engine identity*: both serving engines render byte-identical
   ``ClusterReport.as_dict()`` under every fault schedule, offline and
   online.
3. *Recovery*: a schedule with no crashes never fails or migrates anything,
   and a crash-free run is byte-identical to a run with no schedule at all
   (the fault layer is a strict generalisation of the fault-free loops).
"""

import json

import pytest
from conftest import WORKLOAD_POOL
from hypothesis import given, settings, strategies as st

from repro.serving import (
    AdmissionController,
    Autoscaler,
    BatchScheduler,
    ENGINES,
    FAULT_CRASH,
    FAULT_RECOVER,
    FAULT_SLOWDOWN,
    FaultEvent,
    FaultSchedule,
    OpenLoopArrivals,
    RandomFaults,
    ShardedServiceCluster,
    SLOPolicy,
    TenantQuota,
    TraceArrivals,
    merge_traces,
)

NUM_SHARDS = 3

random_schedules = st.builds(
    lambda seed, up, down, slow, budget: RandomFaults(
        num_shards=NUM_SHARDS,
        horizon_seconds=0.6,
        mean_uptime_seconds=up,
        mean_downtime_seconds=down,
        slowdown_probability=slow,
        slowdown_factor=2.0,
        retry_budget=budget,
        retry_backoff_seconds=0.002,
        seed=seed,
    ).schedule(),
    seed=st.integers(min_value=0, max_value=2**16),
    up=st.sampled_from([0.02, 0.05, 0.2]),
    down=st.sampled_from([0.01, 0.05, 0.15]),
    slow=st.sampled_from([0.0, 0.5]),
    budget=st.integers(min_value=0, max_value=3),
)


def _cluster(services, engine="fast", **kwargs):
    kwargs.setdefault("scheduler", BatchScheduler(max_batch_size=3, max_wait_seconds=0.003))
    return ShardedServiceCluster(
        services["DynPre"], num_shards=NUM_SHARDS, engine=engine, **kwargs
    )


def _trace(seed, num_requests=30, rate_rps=300.0):
    return OpenLoopArrivals(WORKLOAD_POOL, rate_rps=rate_rps, seed=seed).trace(num_requests)


def _render(report):
    return json.dumps(report.as_dict(), sort_keys=True)


class _CountingSource(TraceArrivals):
    """Trace replay that tallies terminal callbacks for conservation checks."""

    def __init__(self, trace):
        super().__init__(trace)
        self.completed = 0
        self.dropped = 0

    def on_complete(self, request, seconds):
        self.completed += 1
        super().on_complete(request, seconds)

    def on_shed(self, request, seconds):
        self.dropped += 1
        super().on_shed(request, seconds)


# ------------------------------------------------------------- conservation
@settings(max_examples=20, deadline=None)
@given(faults=random_schedules, seed=st.integers(min_value=0, max_value=2**16))
def test_offline_conservation(services, faults, seed):
    """Offline replay: every request is served or failed, never lost."""
    trace = _trace(seed)
    report = _cluster(services).serve_trace(trace, faults=faults)
    goodput = report.goodput
    assert goodput.offered == len(trace)
    assert goodput.offered == goodput.served + goodput.shed + goodput.failed
    assert goodput.shed == 0
    assert goodput.failed == report.faults.failed


@settings(max_examples=20, deadline=None)
@given(faults=random_schedules, seed=st.integers(min_value=0, max_value=2**16))
def test_online_conservation_with_admission(services, faults, seed):
    """Online with admission: offered == served + shed + failed exactly,
    and the arrival source saw one terminal callback per request."""
    trace = _trace(seed)
    slo = SLOPolicy(default_slo_seconds=0.5)
    source = _CountingSource(trace)
    report = _cluster(services).serve_online(
        source, slo=slo, admission=AdmissionController(policy=slo), faults=faults
    )
    goodput = report.goodput
    assert goodput.offered == len(trace)
    assert goodput.offered == goodput.served + goodput.shed + goodput.failed
    assert source.completed == goodput.served
    assert source.dropped == goodput.shed + goodput.failed


# ---------------------------------------------------------- engine identity
@settings(max_examples=15, deadline=None)
@given(faults=random_schedules, seed=st.integers(min_value=0, max_value=2**16))
def test_engines_identical_offline_under_faults(services, faults, seed):
    trace = _trace(seed)
    slo = SLOPolicy(default_slo_seconds=0.5)
    reference = _cluster(services, engine="reference").serve_trace(
        trace, slo=slo, faults=faults
    )
    fast = _cluster(services, engine="fast").serve_trace(trace, slo=slo, faults=faults)
    assert _render(reference) == _render(fast)


@settings(max_examples=15, deadline=None)
@given(faults=random_schedules, seed=st.integers(min_value=0, max_value=2**16))
def test_engines_identical_online_under_faults(services, faults, seed):
    trace = _trace(seed)
    slo = SLOPolicy(default_slo_seconds=0.5)

    def run(engine):
        return _cluster(services, engine=engine).serve_online(
            TraceArrivals(trace),
            slo=slo,
            admission=AdmissionController(policy=slo),
            autoscaler=Autoscaler(min_shards=1, max_shards=NUM_SHARDS),
            faults=faults,
        )

    assert _render(run("reference")) == _render(run("fast"))


# ----------------------------------------------------------------- recovery
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       factor=st.sampled_from([1.5, 3.0]))
def test_slowdowns_alone_never_fail_requests(services, seed, factor):
    """Slowdown-only schedules degrade latency, never correctness."""
    faults = FaultSchedule(
        events=(
            FaultEvent(seconds=0.01, shard_id=0, kind=FAULT_SLOWDOWN, factor=factor),
            FaultEvent(seconds=0.02, shard_id=1, kind=FAULT_SLOWDOWN, factor=factor),
        )
    )
    report = _cluster(services).serve_trace(_trace(seed), faults=faults)
    assert report.faults.failed == 0
    assert report.faults.migrated == 0
    assert report.faults.retried == 0
    assert report.goodput.served == report.goodput.offered


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_empty_schedule_matches_no_schedule(services, seed):
    """An empty fault schedule only adds the (empty) faults section."""
    trace = _trace(seed)
    faulted = _cluster(services).serve_trace(trace, faults=FaultSchedule(events=()))
    plain = _cluster(services).serve_trace(trace)
    faulted_dict = faulted.as_dict()
    plain_dict = plain.as_dict()
    assert faulted_dict.pop("faults")["failed"] == 0
    assert plain_dict.pop("faults") is None
    assert json.dumps(faulted_dict, sort_keys=True) == json.dumps(
        plain_dict, sort_keys=True
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       budget=st.integers(min_value=1, max_value=3))
def test_recovered_crash_serves_everything_offline(services, seed, budget):
    """One crash-and-recover outage: offline replay still serves 100%
    (work migrates or retries; nothing is lost when capacity returns)."""
    faults = FaultSchedule(
        events=(
            FaultEvent(seconds=0.02, shard_id=0, kind=FAULT_CRASH),
            FaultEvent(seconds=0.1, shard_id=0, kind=FAULT_RECOVER),
        ),
        retry_budget=budget,
        retry_backoff_seconds=0.005,
    )
    report = _cluster(services).serve_trace(_trace(seed), faults=faults)
    assert report.goodput.served == report.goodput.offered
    assert report.faults.failed == 0


def test_all_shards_dead_fails_everything(services):
    """Permanently crashing every shard fails every request (none lost)."""
    faults = FaultSchedule(
        events=tuple(
            FaultEvent(seconds=0.0, shard_id=i, kind=FAULT_CRASH)
            for i in range(NUM_SHARDS)
        ),
        retry_budget=1,
        retry_backoff_seconds=0.005,
    )
    trace = _trace(3, num_requests=10)
    report = _cluster(services).serve_trace(trace, faults=faults)
    assert report.goodput.served == 0
    assert report.goodput.failed == len(trace)


def test_fault_oblivious_baseline_serves_less(services):
    """The fault_aware=False baseline black-holes work on a dead shard."""
    events = (FaultEvent(seconds=0.02, shard_id=0, kind=FAULT_CRASH),)
    aware = FaultSchedule(events=events, retry_budget=1, retry_backoff_seconds=0.005)
    oblivious = FaultSchedule(
        events=events, retry_budget=1, retry_backoff_seconds=0.005, fault_aware=False
    )
    trace = _trace(5, num_requests=40)
    served_aware = _cluster(services).serve_trace(trace, faults=aware).goodput.served
    served_oblivious = (
        _cluster(services).serve_trace(trace, faults=oblivious).goodput.served
    )
    assert served_aware == len(trace)
    assert served_oblivious < served_aware


# ------------------------------------------------------ fault-aware locality
@pytest.mark.parametrize("engine", ENGINES)
def test_locality_dispatch_avoids_dead_preferred_shard(services, engine):
    """Locality dispatch under a crash schedule: the configured/home shard
    is never handed work while it is down — batches fall through to the
    live shards — and service resumes on it after recovery.  Regression
    for dispatch filtering candidates to alive shards before the locality
    preference is applied."""
    w = WORKLOAD_POOL[0]
    trace = OpenLoopArrivals([w], rate_rps=300.0, seed=11).trace(40)
    # A huge spill threshold makes dispatch pure locality preference (no
    # least-loaded spilling): every replica of the calibrated service is
    # already configured for ``w``, so preference is earliest-free with
    # index tie-break — shard 0 is the most-preferred target.
    kwargs = dict(policy="locality", locality_spill_seconds=100.0)

    def starts(report):
        return [
            (
                s.shard_id,
                s.request.arrival_seconds + s.batching_delay + s.dispatch_delay,
            )
            for s in report.served
        ]

    baseline = _cluster(services, engine, **kwargs).serve_trace(trace)
    preferred = 0
    assert any(shard == preferred for shard, _ in starts(baseline)), (
        "fault-free locality should route work to the preferred shard"
    )

    recover = 0.3
    faults = FaultSchedule(
        events=(
            FaultEvent(seconds=0.0, shard_id=preferred, kind=FAULT_CRASH),
            FaultEvent(seconds=recover, shard_id=preferred, kind=FAULT_RECOVER),
        ),
        retry_budget=2,
        retry_backoff_seconds=0.005,
    )
    report = _cluster(services, engine, **kwargs).serve_trace(trace, faults=faults)
    assert report.goodput.served == len(trace)  # nothing lost to the outage
    outage_starts = [
        (shard, start) for shard, start in starts(report) if start < recover
    ]
    assert outage_starts, "fixture should dispatch during the outage window"
    assert all(shard != preferred for shard, _ in outage_starts), (
        "locality dispatch handed work to a crashed shard"
    )
    # Both engines make the same alive-filtered locality choices.
    other = _cluster(
        services, "reference" if engine == "fast" else "fast", **kwargs
    ).serve_trace(trace, faults=faults)
    assert _render(report) == _render(other)


# ------------------------------------------------------ schedule validation
def test_schedule_rejects_crash_while_down():
    with pytest.raises(ValueError):
        FaultSchedule(
            events=(
                FaultEvent(seconds=0.1, shard_id=0, kind=FAULT_CRASH),
                FaultEvent(seconds=0.2, shard_id=0, kind=FAULT_CRASH),
            )
        )


def test_schedule_rejects_recover_while_up():
    with pytest.raises(ValueError):
        FaultSchedule(
            events=(FaultEvent(seconds=0.1, shard_id=0, kind=FAULT_RECOVER),)
        )


def test_schedule_rejects_slowdown_while_down():
    with pytest.raises(ValueError):
        FaultSchedule(
            events=(
                FaultEvent(seconds=0.1, shard_id=0, kind=FAULT_CRASH),
                FaultEvent(seconds=0.2, shard_id=0, kind=FAULT_SLOWDOWN, factor=2.0),
            )
        )


def test_schedule_rejects_out_of_range_shard():
    schedule = FaultSchedule(
        events=(FaultEvent(seconds=0.1, shard_id=7, kind=FAULT_CRASH),)
    )
    with pytest.raises(ValueError):
        schedule.validate_for(num_shards=4)


def test_event_rejects_bad_kind_and_times():
    with pytest.raises(ValueError):
        FaultEvent(seconds=0.1, shard_id=0, kind="meltdown")
    with pytest.raises(ValueError):
        FaultEvent(seconds=-1.0, shard_id=0, kind=FAULT_CRASH)
    with pytest.raises(ValueError):
        FaultEvent(seconds=0.1, shard_id=0, kind=FAULT_SLOWDOWN, factor=0.5)


def test_random_faults_schedule_is_deterministic():
    build = lambda: RandomFaults(  # noqa: E731
        num_shards=4, horizon_seconds=2.0, mean_uptime_seconds=0.3,
        mean_downtime_seconds=0.1, slowdown_probability=0.5, seed=9,
    ).schedule()
    first, second = build(), build()
    assert first.as_dict() == second.as_dict()
    assert any(event.kind == FAULT_CRASH for event in first.events)


def test_random_faults_outages_are_closed():
    """Every crash in a generated schedule has a matching recover."""
    schedule = RandomFaults(
        num_shards=3, horizon_seconds=1.0, mean_uptime_seconds=0.1,
        mean_downtime_seconds=0.05, seed=5,
    ).schedule()
    up = [True] * 3
    for event in schedule.events:
        if event.kind == FAULT_CRASH:
            assert up[event.shard_id]
            up[event.shard_id] = False
        elif event.kind == FAULT_RECOVER:
            assert not up[event.shard_id]
            up[event.shard_id] = True
    assert all(up)


# ------------------------------------------------- tenant-aware autoscaling
def test_tenant_aware_autoscaler_reacts_to_guaranteed_pressure():
    """Guaranteed-tier queue pressure alone triggers scale-up even when the
    global per-shard depth stays below the global threshold."""
    scaler = Autoscaler(
        min_shards=1, max_shards=4, scale_up_depth=100.0, scale_down_depth=0.01,
        hysteresis_observations=2, guaranteed_scale_up_depth=1.0,
    )
    assert scaler.tenant_aware
    scaler.start(0.0)
    scaler.observe(0.01, queue_depth=3, guaranteed_depth=3)
    active = scaler.observe(0.02, queue_depth=3, guaranteed_depth=3)
    assert active == 2


def test_plain_autoscaler_ignores_guaranteed_signal():
    scaler = Autoscaler(
        min_shards=1, max_shards=4, scale_up_depth=100.0, scale_down_depth=0.01,
        hysteresis_observations=2,
    )
    assert not scaler.tenant_aware
    scaler.start(0.0)
    scaler.observe(0.01, queue_depth=3, guaranteed_depth=50)
    active = scaler.observe(0.02, queue_depth=3, guaranteed_depth=50)
    assert active == 1


def test_tenant_aware_scaling_serves_more_guaranteed_traffic(services):
    """End to end: under faults, the guaranteed-pressure signal scales out
    earlier and both engines agree byte-for-byte on the result."""
    streams = [
        OpenLoopArrivals(WORKLOAD_POOL, rate_rps=200.0, seed=11, tenant="ent"),
        OpenLoopArrivals(WORKLOAD_POOL, rate_rps=200.0, seed=12, tenant="free"),
    ]
    trace = merge_traces([stream.trace(25) for stream in streams])
    slo = SLOPolicy(
        default_slo_seconds=0.5,
        per_tenant={"ent": TenantQuota(guaranteed_rps=100.0, weight=2.0)},
    )
    faults = FaultSchedule(
        events=(
            FaultEvent(seconds=0.02, shard_id=0, kind=FAULT_CRASH),
            FaultEvent(seconds=0.15, shard_id=0, kind=FAULT_RECOVER),
        ),
        retry_budget=2,
        retry_backoff_seconds=0.005,
    )

    def run(engine, guaranteed_depth):
        scaler = Autoscaler(
            min_shards=1, max_shards=NUM_SHARDS, scale_up_depth=6.0,
            scale_down_depth=0.5, hysteresis_observations=2,
            guaranteed_scale_up_depth=guaranteed_depth,
        )
        return _cluster(services, engine=engine).serve_online(
            TraceArrivals(trace),
            slo=slo,
            admission=AdmissionController(policy=slo),
            autoscaler=scaler,
            faults=faults,
        )

    tenant_aware = run("fast", 2.0)
    plain = run("fast", None)
    assert _render(run("reference", 2.0)) == _render(tenant_aware)
    aware_events = len(tenant_aware.scaling_timeline)
    plain_events = len(plain.scaling_timeline)
    assert aware_events >= plain_events
    assert tenant_aware.goodput.offered == tenant_aware.goodput.served + \
        tenant_aware.goodput.shed + tenant_aware.goodput.failed
