"""Tests for neighbour sampling (unique random selection)."""

import numpy as np
import pytest

from repro.graph.convert import coo_to_csc
from repro.graph.generators import GraphSpec, power_law_graph
from repro.graph.sampling import (
    expected_sampled_nodes,
    layer_wise_sample,
    node_wise_sample,
    sample_neighbors,
)


@pytest.fixture
def csc():
    graph = power_law_graph(GraphSpec(num_nodes=80, num_edges=900, degree_skew=0.5, seed=5))
    return coo_to_csc(graph)


class TestSampleNeighbors:
    def test_returns_at_most_k(self, csc):
        rng = np.random.default_rng(0)
        for node in range(csc.num_nodes):
            picked = sample_neighbors(csc, node, 3, rng)
            assert len(picked) <= 3

    def test_unique(self, csc):
        rng = np.random.default_rng(1)
        for node in range(csc.num_nodes):
            picked = sample_neighbors(csc, node, 5, rng)
            assert len(set(picked.tolist())) == len(picked)

    def test_subset_of_neighbors(self, csc):
        rng = np.random.default_rng(2)
        for node in range(0, csc.num_nodes, 7):
            picked = set(sample_neighbors(csc, node, 4, rng).tolist())
            assert picked.issubset(set(csc.in_neighbors(node).tolist()))

    def test_small_neighborhood_returned_whole(self, csc):
        rng = np.random.default_rng(3)
        for node in range(csc.num_nodes):
            neighbors = np.unique(csc.in_neighbors(node))
            if neighbors.size <= 2:
                picked = sample_neighbors(csc, node, 10, rng)
                assert sorted(picked.tolist()) == sorted(neighbors.tolist())


class TestNodeWise:
    def test_layer_count(self, csc):
        sample = node_wise_sample(csc, [0, 1, 2], k=3, num_layers=2, seed=0)
        assert sample.num_layers <= 2

    def test_edges_point_to_frontier(self, csc):
        batch = [0, 5, 9]
        sample = node_wise_sample(csc, batch, k=3, num_layers=1, seed=1)
        layer = sample.layers[-1]
        assert set(layer.dst.tolist()).issubset(set(batch))

    def test_edges_exist_in_graph(self, csc):
        sample = node_wise_sample(csc, [0, 1], k=4, num_layers=2, seed=2)
        for layer in sample.layers:
            for src, dst in zip(layer.src.tolist(), layer.dst.tolist()):
                assert src in csc.in_neighbors(dst).tolist()

    def test_sampled_nodes_cover_edges(self, csc):
        sample = node_wise_sample(csc, [3, 4], k=3, num_layers=2, seed=3)
        touched = set(sample.batch_nodes.tolist())
        for layer in sample.layers:
            touched.update(layer.src.tolist())
            touched.update(layer.dst.tolist())
        assert touched.issubset(set(sample.sampled_nodes.tolist()))

    def test_per_node_cap(self, csc):
        k = 4
        sample = node_wise_sample(csc, [0, 1, 2, 3], k=k, num_layers=2, seed=4)
        for layer in sample.layers:
            dst, counts = np.unique(layer.dst, return_counts=True)
            assert np.all(counts <= k)

    def test_deterministic_seed(self, csc):
        a = node_wise_sample(csc, [0, 1], k=3, num_layers=2, seed=9)
        b = node_wise_sample(csc, [0, 1], k=3, num_layers=2, seed=9)
        assert np.array_equal(a.sampled_nodes, b.sampled_nodes)

    def test_all_edges_concatenation(self, csc):
        sample = node_wise_sample(csc, [0, 1], k=3, num_layers=2, seed=5)
        combined = sample.all_edges()
        assert combined.num_edges == sample.num_sampled_edges


class TestLayerWise:
    def test_k_per_layer(self, csc):
        k = 5
        sample = layer_wise_sample(csc, [0, 1, 2], k=k, num_layers=2, seed=0)
        for layer in sample.layers:
            assert len(np.unique(layer.src)) <= k

    def test_edges_exist_in_graph(self, csc):
        sample = layer_wise_sample(csc, [0, 1], k=4, num_layers=2, seed=1)
        for layer in sample.layers:
            for src, dst in zip(layer.src.tolist(), layer.dst.tolist()):
                assert src in csc.in_neighbors(dst).tolist()

    def test_fewer_or_equal_edges_than_node_wise(self, csc):
        node = node_wise_sample(csc, list(range(10)), k=5, num_layers=2, seed=2)
        layer = layer_wise_sample(csc, list(range(10)), k=5, num_layers=2, seed=2)
        assert layer.num_sampled_nodes <= node.num_sampled_nodes + 10


class TestBounds:
    def test_expected_sampled_nodes_geometric(self):
        assert expected_sampled_nodes(1, 10, 2) == 111
        assert expected_sampled_nodes(2, 10, 2) == 222

    def test_expected_sampled_nodes_k1(self):
        assert expected_sampled_nodes(3, 1, 2) == 9

    def test_sample_never_exceeds_bound(self, csc):
        batch = list(range(5))
        sample = node_wise_sample(csc, batch, k=3, num_layers=2, seed=6)
        assert sample.num_sampled_nodes <= expected_sampled_nodes(5, 3, 2)
