"""Tests for the UPE datapath: prefix sum, relocation, set-partition, radix sort."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.upe import (
    CYCLES_PER_PARTITION_PASS,
    PrefixSumLogic,
    RelocationLogic,
    UPE,
)


class TestPrefixSum:
    def test_known_example(self):
        logic = PrefixSumLogic(8)
        result = logic.scan(np.array([1, 0, 1, 1, 0, 0, 1, 0]))
        assert result.tolist() == [0, 1, 1, 2, 3, 3, 3, 4]

    def test_all_true(self):
        logic = PrefixSumLogic(4)
        assert logic.scan(np.array([1, 1, 1, 1])).tolist() == [0, 1, 2, 3]

    def test_all_false(self):
        logic = PrefixSumLogic(4)
        assert logic.scan(np.array([0, 0, 0, 0])).tolist() == [0, 0, 0, 0]

    def test_width_validation(self):
        with pytest.raises(ValueError):
            PrefixSumLogic(0)
        with pytest.raises(ValueError):
            PrefixSumLogic(6)

    def test_input_too_wide(self):
        logic = PrefixSumLogic(4)
        with pytest.raises(ValueError):
            logic.scan(np.ones(5, dtype=int))

    def test_structure(self):
        logic = PrefixSumLogic(64)
        assert logic.num_layers == 6
        assert logic.adder_bits == 7

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    def test_matches_numpy_cumsum(self, bits):
        logic = PrefixSumLogic(64)
        condition = np.array(bits, dtype=int)
        expected = np.cumsum(condition) - condition
        assert np.array_equal(logic.scan(condition), expected)


class TestRelocation:
    def test_compacts_selected(self):
        logic = RelocationLogic(8)
        values = np.array([10, 11, 12, 13, 14, 15, 16, 17])
        condition = np.array([0, 1, 0, 1, 1, 0, 0, 1], dtype=bool)
        displacement = PrefixSumLogic(8).scan(condition.astype(int))
        out = logic.relocate(values, condition, displacement)
        assert out[:4].tolist() == [11, 13, 14, 17]

    def test_rejects_rightward_moves(self):
        logic = RelocationLogic(4)
        with pytest.raises(ValueError):
            logic.relocate(
                np.array([1, 2, 3, 4]),
                np.array([True, True, True, True]),
                np.array([1, 2, 3, 4]),
            )

    def test_structure(self):
        logic = RelocationLogic(32)
        assert logic.num_layers == 5

    @given(st.lists(st.booleans(), min_size=1, max_size=32), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_matches_boolean_indexing(self, bits, seed):
        rng = np.random.default_rng(seed)
        condition = np.array(bits, dtype=bool)
        values = rng.integers(1, 1000, size=len(bits))
        displacement = PrefixSumLogic(32).scan(condition.astype(int))
        out = RelocationLogic(32).relocate(values, condition, displacement)
        expected = values[condition]
        assert np.array_equal(out[: expected.size], expected)


class TestSetPartition:
    def test_partition_preserves_order(self):
        upe = UPE(width=16, detailed=True)
        values = np.arange(100, 116)
        condition = values % 3 == 0
        result = upe.set_partition(values, condition)
        assert result.selected.tolist() == values[condition].tolist()
        assert result.rejected.tolist() == values[~condition].tolist()

    def test_cycles_charged(self):
        upe = UPE(width=8)
        upe.set_partition(np.arange(8), np.zeros(8, dtype=bool))
        assert upe.cycles_consumed == CYCLES_PER_PARTITION_PASS
        upe.reset_cycles()
        assert upe.cycles_consumed == 0

    def test_detailed_and_fast_agree(self):
        values = np.array([5, 3, 9, 1, 7, 2, 8, 6])
        condition = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=bool)
        fast = UPE(width=8, detailed=False).set_partition(values, condition)
        detailed = UPE(width=8, detailed=True).set_partition(values, condition)
        assert np.array_equal(fast.selected, detailed.selected)
        assert np.array_equal(fast.rejected, detailed.rejected)

    def test_length_mismatch_rejected(self):
        upe = UPE(width=8)
        with pytest.raises(ValueError):
            upe.set_partition(np.arange(4), np.zeros(3, dtype=bool))

    def test_chunk_too_wide_rejected(self):
        upe = UPE(width=4)
        with pytest.raises(ValueError):
            upe.set_partition(np.arange(8), np.zeros(8, dtype=bool))

    def test_extract_by_bitmap(self):
        upe = UPE(width=8)
        values = np.arange(8) * 10
        bitmap = np.array([0, 1, 1, 0, 0, 0, 1, 0], dtype=bool)
        result = upe.extract_by_bitmap(values, bitmap)
        assert result.selected.tolist() == [10, 20, 60]


class TestRadixSort:
    def test_sorts_chunk(self):
        upe = UPE(width=32, detailed=True)
        keys = np.array([9, 3, 27, 1, 14, 3, 0, 255, 128])
        out, cycles = upe.radix_sort_chunk(keys, key_bits=8)
        assert out.tolist() == sorted(keys.tolist())
        assert cycles == CYCLES_PER_PARTITION_PASS  # one 8-bit digit pass

    def test_pass_count(self):
        upe = UPE(width=64, radix_bits=8)
        assert upe.radix_sort_passes(24) == 3
        assert upe.radix_sort_passes(1) == 1

    def test_fast_mode_matches_detailed(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 1 << 16, size=48)
        fast, _ = UPE(width=64, detailed=False).radix_sort_chunk(keys, key_bits=16)
        detailed, _ = UPE(width=64, detailed=True).radix_sort_chunk(keys, key_bits=16)
        assert np.array_equal(fast, detailed)

    @given(st.lists(st.integers(0, 2**20 - 1), min_size=1, max_size=64), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_radix_sort_property(self, values, detailed):
        upe = UPE(width=64, detailed=detailed)
        out, _ = upe.radix_sort_chunk(np.array(values), key_bits=20)
        assert out.tolist() == sorted(values)
