"""Tests for the end-to-end GNN service and the Fig. 18 system set."""

import pytest

from repro.analysis.metrics import geometric_mean
from repro.graph.datasets import DATASET_ORDER
from repro.system.service import GNNService, build_reference_systems, build_services
from repro.system.workload import WorkloadProfile


@pytest.fixture(scope="module")
def services():
    return build_services()


class TestReferenceSystems:
    def test_seven_systems(self, services):
        assert set(services) == {"CPU", "GPU", "GSamp", "FPGA", "AutoPre", "StatPre", "DynPre"}

    def test_names_match_keys(self):
        for key, system in build_reference_systems().items():
            assert system.name == key


class TestServe:
    def test_report_components(self, services):
        report = services["GPU"].serve(WorkloadProfile.from_dataset("AX"))
        assert report.total_seconds > 0
        assert 0 < report.preprocessing_share < 1
        assert report.energy.total_joules > 0
        breakdown = report.breakdown()
        assert set(breakdown) >= {"ordering", "reshaping", "selecting", "reindexing", "transfer", "inference"}

    def test_paper_ordering_of_systems(self, services):
        """End-to-end latency ordering follows the paper: CPU > GPU > AutoGNN."""
        w = WorkloadProfile.from_dataset("AM")
        totals = {}
        for name, service in services.items():
            service.serve(w)
            totals[name] = service.serve(w).total_seconds
        assert totals["CPU"] > totals["GPU"]
        assert totals["GPU"] > totals["StatPre"]
        assert totals["GPU"] > totals["DynPre"]

    def test_gpu_speedup_over_cpu_near_paper(self, services):
        """Geomean GPU speedup over CPU lands in the paper's neighbourhood (3.4x)."""
        ratios = []
        for key in DATASET_ORDER:
            w = WorkloadProfile.from_dataset(key)
            cpu = services["CPU"].serve(w).total_seconds
            gpu = services["GPU"].serve(w).total_seconds
            ratios.append(cpu / gpu)
        assert 2.0 <= geometric_mean(ratios) <= 5.5

    def test_autognn_speedup_over_cpu_large(self, services):
        """AutoGNN's end-to-end advantage grows with graph size."""
        small = WorkloadProfile.from_dataset("PH")
        large = WorkloadProfile.from_dataset("TB")
        def ratio(w):
            cpu = services["CPU"].serve(w).total_seconds
            services["DynPre"].serve(w)
            dyn = services["DynPre"].serve(w).total_seconds
            return cpu / dyn
        assert ratio(large) > ratio(small)

    def test_preprocessing_share_grows_with_graph(self, services):
        small = services["GPU"].serve(WorkloadProfile.from_dataset("PH"))
        large = services["GPU"].serve(WorkloadProfile.from_dataset("TB"))
        assert large.preprocessing_share > small.preprocessing_share

    def test_energy_advantage_of_autognn(self, services):
        w = WorkloadProfile.from_dataset("AM")
        gpu = services["GPU"].serve(w)
        services["DynPre"].serve(w)
        dyn = services["DynPre"].serve(w)
        assert dyn.energy.total_joules < gpu.energy.total_joules

    def test_serve_many(self, services):
        workloads = [WorkloadProfile.from_dataset(k) for k in ("PH", "AX")]
        reports = services["CPU"].serve_many(workloads)
        assert len(reports) == 2

    def test_estimate_cache_keyed_by_reconfiguration_state(self, services):
        # Regression: the cost cache used to be keyed by workload shape only,
        # so an estimate taken *after* a reconfiguration silently reused the
        # pre-reconfigure cost.  A DynPre shard that reconfigures between
        # estimates must re-price from its new bitstream state.
        service = services["DynPre"].replicate()
        probe = WorkloadProfile(
            name="deep", num_nodes=100_000, num_edges=1_000_000, avg_degree=10.0,
            batch_size=500, k=5, num_layers=4,
        )
        trigger = WorkloadProfile(
            name="tiny", num_nodes=2_000, num_edges=8_000, avg_degree=4.0,
            batch_size=16, k=2, num_layers=1,
        )
        before = service.estimate_service_seconds(probe)
        config_before = service.preprocessing.config
        service.serve(trigger)
        assert service.preprocessing.config != config_before, (
            "test needs a workload that actually triggers a reconfiguration"
        )
        after = service.estimate_service_seconds(probe)
        fresh = service.preprocessing.cost_hint(probe) + service.inference_latency(probe)
        assert after == fresh
        assert after != before

    def test_estimate_cache_hits_when_state_unchanged(self, services):
        service = services["CPU"].replicate()
        w = WorkloadProfile.from_dataset("PH")
        assert service.estimate_service_seconds(w) == service.estimate_service_seconds(w)
        assert len(service._cost_cache) == 1

    def test_power_platform_defaults(self):
        systems = build_reference_systems()
        assert GNNService(systems["CPU"]).power.preprocessing_platform == "cpu"
        assert GNNService(systems["GPU"]).power.preprocessing_platform == "gpu"
        assert GNNService(systems["DynPre"]).power.preprocessing_platform == "fpga"
