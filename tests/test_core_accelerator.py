"""End-to-end tests of the AutoGNN device simulator."""

import numpy as np
import pytest

from repro.core.accelerator import AutoGNNDevice
from repro.core.config import HardwareConfig
from repro.graph.convert import coo_to_csc, validate_conversion
from repro.preprocessing.pipeline import PreprocessingConfig


@pytest.fixture
def device():
    return AutoGNNDevice(HardwareConfig(num_upes=8, upe_width=32, num_scrs=2, scr_width=64))


class TestConvert:
    def test_conversion_correct(self, device, medium_graph):
        ordered, csc, ordering_cycles, reshaping_cycles = device.convert(medium_graph)
        assert validate_conversion(medium_graph, csc)
        assert ordered.is_sorted()
        assert ordering_cycles > 0
        assert reshaping_cycles > 0


class TestPreprocess:
    def test_end_to_end_produces_consistent_subgraph(self, device, medium_graph):
        out = device.preprocess(medium_graph, PreprocessingConfig(batch_size=16, k=3, num_layers=2))
        result = out.result
        # Full-graph CSC matches the reference conversion.
        reference = coo_to_csc(medium_graph)
        assert np.array_equal(result.csc.indptr, reference.indptr)
        # The subgraph CSC is the conversion of the reindexed edges.
        rebuilt = coo_to_csc(result.reindex.edges)
        assert np.array_equal(result.subgraph_csc.indptr, rebuilt.indptr)
        # Sampled edges exist in the original graph (after mapping back).
        inverse = result.reindex.original_vids
        for src, dst in zip(result.reindex.edges.src.tolist(), result.reindex.edges.dst.tolist()):
            orig_src, orig_dst = int(inverse[src]), int(inverse[dst])
            assert orig_src in reference.in_neighbors(orig_dst).tolist()

    def test_timing_components_positive(self, device, medium_graph):
        out = device.preprocess(medium_graph, PreprocessingConfig(batch_size=16, k=3, num_layers=2))
        timing = out.timing
        assert timing.ordering_cycles > 0
        assert timing.reshaping_cycles > 0
        assert timing.selecting_cycles > 0
        assert timing.reindexing_cycles > 0
        assert timing.total_cycles == sum(timing.breakdown().values())
        assert timing.total_seconds > 0
        assert 0 <= timing.bandwidth_utilization() <= 1

    def test_detailed_matches_fast(self, small_graph, tiny_hardware):
        cfg = PreprocessingConfig(batch_size=6, k=2, num_layers=2, seed=3)
        fast = AutoGNNDevice(tiny_hardware, detailed=False).preprocess(small_graph, cfg)
        detailed = AutoGNNDevice(tiny_hardware, detailed=True).preprocess(small_graph, cfg)
        # The full-graph conversion is deterministic, so both modes agree on it.
        assert np.array_equal(fast.result.csc.indptr, detailed.result.csc.indptr)
        assert np.array_equal(fast.result.ordered.dst, detailed.result.ordered.dst)

    def test_detailed_matches_fast_conversion_cycles(self, small_graph, tiny_hardware):
        _, fast_csc, fast_ord, fast_resh = AutoGNNDevice(
            tiny_hardware, detailed=False
        ).convert(small_graph)
        _, det_csc, det_ord, det_resh = AutoGNNDevice(
            tiny_hardware, detailed=True
        ).convert(small_graph)
        assert np.array_equal(fast_csc.indptr, det_csc.indptr)
        assert fast_ord == det_ord
        assert fast_resh == det_resh

    def test_explicit_batch_nodes(self, device, small_graph):
        out = device.preprocess(
            small_graph, PreprocessingConfig(k=2, num_layers=1), batch_nodes=[0, 1]
        )
        assert set(out.result.sample.batch_nodes.tolist()) == {0, 1}

    def test_reconfigure_swaps_kernels(self, device, small_graph):
        new_config = HardwareConfig(num_upes=4, upe_width=16, num_scrs=1, scr_width=32)
        before = device.preprocess(small_graph, PreprocessingConfig(batch_size=4, k=2, num_layers=1))
        device.reconfigure(new_config)
        after = device.preprocess(small_graph, PreprocessingConfig(batch_size=4, k=2, num_layers=1))
        assert device.config is new_config
        assert after.config is new_config
        # Different hardware, different cycle counts (smaller config is slower).
        assert after.timing.ordering_cycles >= before.timing.ordering_cycles

    def test_more_upes_fewer_ordering_cycles(self, medium_graph):
        small = AutoGNNDevice(HardwareConfig(num_upes=2, upe_width=32, num_scrs=1, scr_width=64))
        large = AutoGNNDevice(HardwareConfig(num_upes=32, upe_width=32, num_scrs=1, scr_width=64))
        cfg = PreprocessingConfig(batch_size=8, k=3, num_layers=2)
        a = small.preprocess(medium_graph, cfg)
        b = large.preprocess(medium_graph, cfg)
        assert b.timing.ordering_cycles < a.timing.ordering_cycles
