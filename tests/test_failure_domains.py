"""Failure-domain topology, correlated faults and domain-aware serving.

Covers the correlated-failure layer end to end:

* :class:`ClusterTopology` — partition validation, activation orders,
  dict round-trips.
* Domain fault macros — ``crash_domain`` / ``recover_domain`` expansion
  with order-stable tie-breaking, collision rejection, re-expansion under
  ``dataclasses.replace``.
* :class:`RandomFaults(correlated=...)` — seeded whole-domain outages that
  leave the independent per-shard stream bit-identical, and the
  :meth:`provenance` dict that rebuilds the exact schedule.
* Serving integration — per-domain outage reporting in both engines,
  spread placement activating across domains, topology via
  ``ServingConfig`` overrides, the ``no_degrade`` tenant buy-out and
  per-tenant ``degraded_utility`` floors.
* Late recovery — a recover past ``horizon_seconds`` (and past an
  autoscaler scale-down/scale-up cycle) is still applied in both engines.
"""

import dataclasses
import json

import pytest
from conftest import WORKLOAD_POOL, make_profile
from hypothesis import given, settings, strategies as st

from repro.analysis.report import format_domain_outages, format_timeline
from repro.serving import (
    Autoscaler,
    BatchScheduler,
    ClusterTopology,
    CorrelatedFaults,
    DegradationPolicy,
    DomainFaultEvent,
    FAULT_CRASH,
    FAULT_CRASH_DOMAIN,
    FAULT_RECOVER,
    FAULT_RECOVER_DOMAIN,
    FaultEvent,
    FaultSchedule,
    OpenLoopArrivals,
    QUALITY_DEGRADED,
    RandomFaults,
    RequestTrace,
    ServingConfig,
    ShardedServiceCluster,
    SLOPolicy,
    TenantQuota,
    TraceArrivals,
    merge_traces,
)


def _render(report):
    return json.dumps(report.as_dict(), sort_keys=True)


def _cluster(services, engine="fast", num_shards=4, **kwargs):
    kwargs.setdefault("scheduler", BatchScheduler(max_batch_size=3, max_wait_seconds=0.003))
    return ShardedServiceCluster(
        services["DynPre"], num_shards=num_shards, engine=engine, **kwargs
    )


def _trace(seed, num_requests=40, rate_rps=300.0):
    return OpenLoopArrivals(WORKLOAD_POOL, rate_rps=rate_rps, seed=seed).trace(num_requests)


# ----------------------------------------------------------------- topology
def test_uniform_topology_partitions_with_remainder_up_front():
    topo = ClusterTopology.uniform(7, 3)
    assert topo.domains == {"rack0": (0, 1, 2), "rack1": (3, 4), "rack2": (5, 6)}
    assert topo.num_shards == 7
    assert topo.num_domains == 3
    assert topo.domain_names == ("rack0", "rack1", "rack2")
    assert topo.domain_of(4) == "rack1"
    assert topo.shards_in("rack2") == (5, 6)
    topo.validate_for(7)


def test_topology_validation_rejects_bad_partitions():
    with pytest.raises(ValueError, match="at least one failure domain"):
        ClusterTopology({})
    with pytest.raises(ValueError, match="appears in domains"):
        ClusterTopology({"a": (0, 1), "b": (1, 2)})
    with pytest.raises(ValueError, match="partition range"):
        ClusterTopology({"a": (0,), "b": (2,)})
    with pytest.raises(ValueError, match="no member shards"):
        ClusterTopology({"a": (0,), "b": ()})
    with pytest.raises(ValueError, match="non-empty string"):
        ClusterTopology({"": (0,)})
    with pytest.raises(ValueError, match="covers 2 shards"):
        ClusterTopology.uniform(2, 2).validate_for(3)
    with pytest.raises(ValueError, match="unknown failure domain"):
        ClusterTopology.uniform(2, 2).shards_in("rack9")
    with pytest.raises(ValueError, match="outside this topology"):
        ClusterTopology.uniform(2, 2).domain_of(5)
    with pytest.raises(ValueError, match="num_domains"):
        ClusterTopology.uniform(2, 3)


def test_activation_order_spread_round_robins_across_domains():
    topo = ClusterTopology.uniform(6, 3)
    assert topo.activation_order("dense") == (0, 1, 2, 3, 4, 5)
    assert topo.activation_order("spread") == (0, 2, 4, 1, 3, 5)
    # Uneven domains: exhausted pools are skipped, every shard appears once.
    uneven = ClusterTopology({"big": (0, 1, 2), "small": (3,)})
    assert uneven.activation_order("spread") == (0, 3, 1, 2)
    with pytest.raises(ValueError, match="unknown placement"):
        topo.activation_order("sparse")


def test_topology_dict_round_trip():
    topo = ClusterTopology({"zoneB": (2, 3), "zoneA": (0, 1)})
    clone = ClusterTopology.from_dict(topo.as_dict())
    assert clone == topo
    assert clone.domain_names == topo.domain_names  # declaration order survives


# ------------------------------------------------------------ domain macros
def test_domain_events_expand_with_order_stable_tie_breaking():
    topo = ClusterTopology({"a": (0, 2), "b": (1, 3)})
    schedule = FaultSchedule(
        events=(FaultEvent(0.30, 0, FAULT_CRASH), FaultEvent(0.40, 0, FAULT_RECOVER)),
        domain_events=(
            DomainFaultEvent(0.10, "b", FAULT_CRASH_DOMAIN),
            DomainFaultEvent(0.10, "a", FAULT_CRASH_DOMAIN),
            DomainFaultEvent(0.20, "a", FAULT_RECOVER_DOMAIN),
            DomainFaultEvent(0.20, "b", FAULT_RECOVER_DOMAIN),
        ),
        topology=topo,
    )
    expanded = schedule.expanded_events
    # Two domains failing at the same instant expand to per-shard events
    # applied in deterministic shard order.
    assert [(e.seconds, e.shard_id, e.kind) for e in expanded[:4]] == [
        (0.10, 0, FAULT_CRASH),
        (0.10, 1, FAULT_CRASH),
        (0.10, 2, FAULT_CRASH),
        (0.10, 3, FAULT_CRASH),
    ]
    assert [e.kind for e in expanded[4:8]] == [FAULT_RECOVER] * 4
    # Independent events survive the merge, in timestamp order.
    assert (expanded[8].seconds, expanded[8].shard_id) == (0.30, 0)
    # replace() re-expands from the macros instead of double-applying them.
    clone = dataclasses.replace(schedule, retry_budget=1)
    assert clone.expanded_events == expanded
    assert clone.retry_budget == 1


def test_domain_events_validation():
    topo = ClusterTopology.uniform(4, 2)
    with pytest.raises(ValueError, match="require a topology"):
        FaultSchedule(domain_events=(DomainFaultEvent(0.1, "rack0", FAULT_CRASH_DOMAIN),))
    with pytest.raises(ValueError, match="unknown failure domain"):
        FaultSchedule(
            domain_events=(DomainFaultEvent(0.1, "rack9", FAULT_CRASH_DOMAIN),),
            topology=topo,
        )
    with pytest.raises(ValueError, match="unknown domain fault kind"):
        DomainFaultEvent(0.1, "rack0", FAULT_CRASH)
    # An independent event colliding with a member expansion at the same
    # instant would apply in ambiguous order — rejected up front.
    with pytest.raises(ValueError, match="order would be ambiguous"):
        FaultSchedule(
            events=(FaultEvent(0.1, 2, FAULT_CRASH),),
            domain_events=(
                DomainFaultEvent(0.1, "rack1", FAULT_CRASH_DOMAIN),
                DomainFaultEvent(0.2, "rack1", FAULT_RECOVER_DOMAIN),
            ),
            topology=topo,
        )
    with pytest.raises(ValueError, match="covers 4 shards"):
        FaultSchedule(
            domain_events=(
                DomainFaultEvent(0.1, "rack1", FAULT_CRASH_DOMAIN),
                DomainFaultEvent(0.2, "rack1", FAULT_RECOVER_DOMAIN),
            ),
            topology=topo,
        ).validate_for(2)


# -------------------------------------------------------- correlated faults
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_correlated_outages_leave_independent_stream_bit_identical(seed):
    """Enabling ``correlated=`` draws domain outages from a separate stream:
    every surviving independent event is byte-for-byte one the uncorrelated
    run generated (colliding cycles are dropped, never re-rolled)."""
    topo = ClusterTopology.uniform(6, 3)
    kwargs = dict(
        num_shards=6,
        horizon_seconds=0.4,
        mean_uptime_seconds=0.1,
        mean_downtime_seconds=0.05,
        slowdown_probability=0.5,
        seed=seed,
        topology=topo,
    )
    baseline = RandomFaults(**kwargs).schedule()
    correlated = RandomFaults(
        **kwargs,
        correlated=CorrelatedFaults(mean_uptime_seconds=0.1, mean_downtime_seconds=0.04),
    ).schedule()
    assert set(correlated.events) <= set(baseline.events)
    assert baseline.domain_events == ()


def test_correlated_faults_deterministic_and_provenance_round_trips():
    topo = ClusterTopology.uniform(4, 2)
    generator = RandomFaults(
        num_shards=4,
        horizon_seconds=0.5,
        mean_uptime_seconds=0.08,
        mean_downtime_seconds=0.04,
        seed=7,
        topology=topo,
        correlated=CorrelatedFaults(mean_uptime_seconds=0.1, mean_downtime_seconds=0.05),
    )
    first = generator.schedule()
    assert first == generator.schedule()  # same seed, same schedule
    assert first.domain_events  # the process actually fires within horizon
    provenance = generator.provenance()
    # JSON round-trip carries every generation parameter.
    decoded = json.loads(json.dumps(provenance, sort_keys=True))
    rebuilt = RandomFaults(
        num_shards=decoded["num_shards"],
        horizon_seconds=decoded["horizon_seconds"],
        mean_uptime_seconds=decoded["mean_uptime_seconds"],
        mean_downtime_seconds=decoded["mean_downtime_seconds"],
        slowdown_probability=decoded["slowdown_probability"],
        slowdown_factor=decoded["slowdown_factor"],
        retry_budget=decoded["retry_budget"],
        retry_backoff_seconds=decoded["retry_backoff_seconds"],
        seed=decoded["seed"],
        topology=ClusterTopology.from_dict(decoded["topology"]),
        correlated=CorrelatedFaults(**decoded["correlated"]),
    )
    assert rebuilt.schedule() == first
    with pytest.raises(ValueError, match="require a topology"):
        RandomFaults(
            num_shards=2,
            horizon_seconds=0.1,
            mean_uptime_seconds=0.1,
            mean_downtime_seconds=0.1,
            correlated=CorrelatedFaults(0.1, 0.1),
        )


# -------------------------------------------------------- serving integration
def test_domain_outages_reported_identically_by_both_engines(services):
    topo = ClusterTopology.uniform(4, 2)
    faults = FaultSchedule(
        domain_events=(
            DomainFaultEvent(0.02, "rack1", FAULT_CRASH_DOMAIN),
            DomainFaultEvent(0.05, "rack1", FAULT_RECOVER_DOMAIN),
        ),
        topology=topo,
        retry_budget=2,
        retry_backoff_seconds=0.002,
    )
    trace = _trace(3)
    reports = {
        engine: _cluster(services, engine, topology=topo).serve_trace(
            trace, config=ServingConfig(faults=faults)
        )
        for engine in ("reference", "fast")
    }
    assert _render(reports["reference"]) == _render(reports["fast"])
    stats = reports["fast"].faults
    assert stats.domains is not None
    by_name = {d.domain: d for d in stats.domains}
    assert set(by_name) == {"rack0", "rack1"}
    assert by_name["rack1"].outages == 1
    assert by_name["rack1"].outage_seconds > 0
    assert by_name["rack1"].downtime_seconds >= by_name["rack1"].outage_seconds
    assert by_name["rack0"].outages == 0
    # The rendered tables mention the domains and their transitions.
    table = format_domain_outages("domain outages", stats.domains)
    assert "rack1" in table and "outage_s" in table
    timeline = format_timeline("domain timeline", stats.domain_timeline())
    assert "domain-down:rack1" in timeline and "domain-up:rack1" in timeline
    # Without a topology the section stays absent (pre-domain report shape).
    bare = _cluster(services).serve_trace(
        trace,
        config=ServingConfig(
            faults=dataclasses.replace(faults, domain_events=(), topology=None)
        ),
    )
    assert bare.faults.domains is None


def test_spread_placement_activates_across_domains(services):
    """With ``placement="spread"`` a 2-shard active prefix lands one shard
    per rack instead of both in rack0."""
    topo = ClusterTopology.uniform(4, 2)
    trace = _trace(5)
    autoscaler = Autoscaler(
        min_shards=2, max_shards=2, scale_up_depth=1e9, hysteresis_observations=3
    )
    config = ServingConfig(autoscaler=autoscaler)
    spread = _cluster(services, topology=topo, placement="spread").serve_online(
        TraceArrivals(trace), config=config
    )
    assert spread.shard_requests[0] > 0 and spread.shard_requests[2] > 0
    assert spread.shard_requests[1] == 0 and spread.shard_requests[3] == 0
    dense = _cluster(services, topology=topo, placement="dense").serve_online(
        TraceArrivals(trace), config=config
    )
    assert dense.shard_requests[0] > 0 and dense.shard_requests[1] > 0
    assert dense.shard_requests[2] == 0 and dense.shard_requests[3] == 0


def test_topology_via_serving_config_matches_constructor(services):
    topo = ClusterTopology.uniform(4, 2)
    trace = _trace(9)
    via_ctor = _cluster(services, topology=topo, placement="spread").serve_trace(trace)
    bare = _cluster(services)
    via_config = bare.serve_trace(
        trace, config=ServingConfig(topology=topo, placement="spread")
    )
    assert _render(via_ctor) == _render(via_config)
    # The override is per-run: the bare cluster's installed topology,
    # placement and activation order are restored afterwards.
    assert bare.topology is None
    assert bare._order is None
    with pytest.raises(ValueError, match="unknown placement"):
        ServingConfig(placement="sparse")


# --------------------------------------------------- tenant degraded buy-out
def _two_tenant_degraded_setup(services):
    """An operating point where every admitted request degrades: the SLO sits
    between the degraded and full-quality costs (see
    test_control_properties.test_degraded_tier_admits_instead_of_shedding)."""
    w = make_profile()
    svc = services["CPU"]
    degradation = DegradationPolicy(k_factor=0.3, layer_drop=1)
    full_cost = svc.estimate_service_seconds(w)
    degraded_cost = svc.estimate_service_seconds(degradation.apply(w))
    assert degraded_cost < full_cost
    slo_seconds = (degraded_cost + full_cost) / 2.0
    rate = 0.01 / full_cost
    trace = merge_traces(
        [
            OpenLoopArrivals([w], rate_rps=rate, seed=3, tenant="buyout").trace(5),
            OpenLoopArrivals([w], rate_rps=rate, seed=4, tenant="flex").trace(5),
        ]
    )
    return svc, degradation, slo_seconds, trace


def test_no_degrade_tenant_is_never_served_degraded(services):
    svc, degradation, slo_seconds, trace = _two_tenant_degraded_setup(services)
    slo = SLOPolicy(
        default_slo_seconds=slo_seconds,
        per_tenant={"buyout": TenantQuota(no_degrade=True)},
    )
    config = ServingConfig(slo=slo, admit=True, degradation=degradation)
    reports = {}
    for engine in ("reference", "fast"):
        cluster = ShardedServiceCluster(
            svc, num_shards=1, engine=engine, scheduler=BatchScheduler(max_batch_size=1)
        )
        reports[engine] = cluster.serve_online(TraceArrivals(trace), config=config)
    assert _render(reports["reference"]) == _render(reports["fast"])
    tenants = reports["fast"].tenant_stats
    # The buy-out tenant is shed rather than downgraded; the flexible tenant
    # rides the degraded tier on the same cluster and policy.
    assert tenants["buyout"].served_degraded == 0
    assert tenants["buyout"].shed == tenants["buyout"].offered == 5
    assert tenants["flex"].served_degraded == tenants["flex"].served == 5
    assert tenants["flex"].shed == 0
    assert all(
        s.request.tenant == "flex" and s.request.workload.quality == QUALITY_DEGRADED
        for s in reports["fast"].served
    )


def test_per_tenant_degraded_utility_floor(services):
    svc, degradation, slo_seconds, trace = _two_tenant_degraded_setup(services)
    assert degradation.utility_for(None) == degradation.degraded_utility
    assert degradation.utility_for(TenantQuota()) == degradation.degraded_utility
    floored = TenantQuota(degraded_utility=0.9)
    assert degradation.utility_for(floored) == 0.9
    # The floor never scores *below* the policy-wide knob.
    assert degradation.utility_for(TenantQuota(degraded_utility=0.1)) == (
        degradation.degraded_utility
    )
    with pytest.raises(ValueError, match="degraded_utility"):
        TenantQuota(degraded_utility=1.5)

    slo = SLOPolicy(default_slo_seconds=slo_seconds, per_tenant={"buyout": floored})
    cluster = ShardedServiceCluster(
        svc, num_shards=1, scheduler=BatchScheduler(max_batch_size=1)
    )
    report = cluster.serve_online(
        TraceArrivals(trace),
        config=ServingConfig(slo=slo, admit=True, degradation=degradation),
    )
    weighted = report.tenant_weighted_goodput(degradation)
    stats = report.tenant_stats
    makespan = report.makespan_seconds
    # Both tenants serve fully degraded here; the floored tenant's degraded
    # completions are valued at 0.9 instead of the policy-wide 0.5.
    for tenant, utility in (("buyout", 0.9), ("flex", degradation.degraded_utility)):
        expected = (
            stats[tenant].slo_met_full + utility * stats[tenant].slo_met_degraded
        ) / makespan
        assert weighted[tenant] == pytest.approx(expected)
    if stats["buyout"].slo_met_degraded == stats["flex"].slo_met_degraded > 0:
        assert weighted["buyout"] > weighted["flex"]


# ------------------------------------------------------------- late recovery
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_recover_past_horizon_is_applied_in_both_engines(services, seed):
    """Outages are always closed: a recover generated *past*
    ``horizon_seconds`` still lands in the schedule and both engines apply
    it — no shard stays dead forever and the reports stay byte-identical."""
    generator = RandomFaults(
        num_shards=3,
        horizon_seconds=0.05,
        mean_uptime_seconds=0.03,
        mean_downtime_seconds=0.4,  # recovery almost surely past the horizon
        retry_budget=2,
        retry_backoff_seconds=0.002,
        seed=seed,
    )
    schedule = generator.schedule()
    crashes = [e for e in schedule.events if e.kind == FAULT_CRASH]
    recovers = [e for e in schedule.events if e.kind == FAULT_RECOVER]
    assert len(crashes) == len(recovers)  # every outage closed
    for crash in crashes:
        assert any(
            r.shard_id == crash.shard_id and r.seconds > crash.seconds for r in recovers
        )
    trace = _trace(seed, num_requests=30)
    reports = {
        engine: _cluster(services, engine, num_shards=3).serve_trace(
            trace, config=ServingConfig(faults=schedule)
        )
        for engine in ("reference", "fast")
    }
    assert _render(reports["reference"]) == _render(reports["fast"])
    goodput = reports["fast"].goodput
    assert goodput.offered == goodput.served + goodput.shed + goodput.failed


def test_late_recovery_survives_scale_down_and_up_cycle(services):
    """A shard that crashes early and recovers long after the horizon is
    usable again even when the autoscaler scaled the cluster down (trough)
    and back up (second wave) across the outage — in both engines."""
    wave1 = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=11).trace(30)
    shifted = [
        dataclasses.replace(
            r, request_id=len(wave1) + i, arrival_seconds=r.arrival_seconds + 0.6
        )
        for i, r in enumerate(
            OpenLoopArrivals(WORKLOAD_POOL, rate_rps=500.0, seed=12).trace(30)
        )
    ]
    trace = RequestTrace(list(wave1) + shifted)
    faults = FaultSchedule(
        events=(
            FaultEvent(0.005, 2, FAULT_CRASH),
            FaultEvent(0.45, 2, FAULT_RECOVER),  # past wave 1 and the trough
        ),
        retry_budget=2,
        retry_backoff_seconds=0.002,
    )
    autoscaler = Autoscaler(
        min_shards=1,
        max_shards=3,
        scale_up_depth=2.0,
        scale_down_depth=0.5,
        hysteresis_observations=2,
    )
    reports = {}
    for engine in ("reference", "fast"):
        reports[engine] = _cluster(services, engine, num_shards=3).serve_online(
            TraceArrivals(trace),
            config=ServingConfig(autoscaler=autoscaler, faults=faults),
        )
    assert _render(reports["reference"]) == _render(reports["fast"])
    report = reports["fast"]
    goodput = report.goodput
    assert goodput.offered == len(trace)
    assert goodput.offered == goodput.served + goodput.shed + goodput.failed
    # The trough actually scaled down and wave 2 scaled back up.
    counts = [event.active_shards for event in report.scaling_timeline]
    assert counts and min(counts) < 3
    trough = counts.index(min(counts))
    assert max(counts[trough:]) > min(counts)
    # The recovered shard serves wave-2 work: some request starts after the
    # recover instant on shard 2.
    recovered_starts = [
        s.finish_seconds - s.service_seconds
        for s in report.served
        if s.shard_id == 2
    ]
    assert any(start >= 0.45 for start in recovered_starts)
    assert not any(0.005 < start < 0.45 for start in recovered_starts)
