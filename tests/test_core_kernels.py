"""Tests for the UPE/SCR kernels and the shared cycle-count formulas."""

import numpy as np
import pytest

from repro.core.config import HardwareConfig
from repro.core.kernels import (
    SCRKernel,
    UPEKernel,
    key_bits_for_nodes,
    ordering_cycle_count,
    reindexer_scan_width,
    reindexing_cycle_count,
    reindexing_cycle_estimate,
    reshaping_cycle_count,
    reshaping_cycle_estimate,
    selection_cycle_count,
)
from repro.graph.convert import coo_to_csc, edge_order
from repro.graph.reindex import reindex_edges


@pytest.fixture
def config():
    return HardwareConfig(num_upes=8, upe_width=32, num_scrs=2, scr_width=64)


class TestCycleFormulas:
    def test_key_bits(self):
        assert key_bits_for_nodes(2) == 2
        assert key_bits_for_nodes(1024) == 20
        assert key_bits_for_nodes(1025) == 22

    def test_ordering_scales_with_edges(self, config):
        small = ordering_cycle_count(1000, 100, config)
        large = ordering_cycle_count(100_000, 100, config)
        assert large > small
        assert ordering_cycle_count(0, 100, config) == 0

    def test_ordering_improves_with_more_upes(self):
        few = HardwareConfig(num_upes=2, upe_width=32)
        many = HardwareConfig(num_upes=64, upe_width=32)
        assert ordering_cycle_count(100_000, 1000, many) < ordering_cycle_count(100_000, 1000, few)

    def test_selection_cycles(self, config):
        assert selection_cycle_count(0, 0, config) == 0
        assert selection_cycle_count(80, 8, config) == (80 + 8 * 3 + 7) // 8

    def test_reshaping_count_vs_estimate(self, config, medium_graph):
        ordered = edge_order(medium_graph)
        exact = reshaping_cycle_count(ordered.dst, medium_graph.num_nodes, config)
        estimate = reshaping_cycle_estimate(medium_graph.num_edges, medium_graph.num_nodes, config)
        assert exact > 0
        # The aggregate estimate is within a small factor of the exact walk.
        assert 0.3 <= exact / estimate <= 3.0

    def test_reshaping_empty(self, config):
        assert reshaping_cycle_count(np.array([], dtype=int), 10, config) == 0
        assert reshaping_cycle_estimate(0, 10, config) == 0

    def test_reindexer_scan_width(self, config):
        assert reindexer_scan_width(config) == 128

    def test_reindexing_count(self, config):
        sizes = [1, 10, 200, 300]
        cycles = reindexing_cycle_count(sizes, config)
        assert cycles == 1 + 1 + 2 + 3

    def test_reindexing_estimate(self, config):
        assert reindexing_cycle_estimate(0, 100, config) == 0
        assert reindexing_cycle_estimate(10, 100, config) == 10
        assert reindexing_cycle_estimate(10, 1000, config) == 40


class TestUPEKernel:
    def test_edge_ordering_matches_reference(self, medium_graph, config):
        kernel = UPEKernel(config)
        ordered, cycles = kernel.edge_ordering(medium_graph)
        reference = edge_order(medium_graph)
        assert np.array_equal(ordered.dst, reference.dst)
        assert np.array_equal(np.sort(ordered.src), np.sort(reference.src))
        assert ordered.is_sorted()
        assert cycles == ordering_cycle_count(medium_graph.num_edges, medium_graph.num_nodes, config)

    def test_edge_ordering_detailed_matches_fast(self, small_graph, tiny_hardware):
        fast = UPEKernel(tiny_hardware, detailed=False)
        detailed = UPEKernel(tiny_hardware, detailed=True)
        ordered_fast, cycles_fast = fast.edge_ordering(small_graph)
        ordered_detailed, cycles_detailed = detailed.edge_ordering(small_graph)
        assert np.array_equal(ordered_fast.concatenate_vids(), ordered_detailed.concatenate_vids())
        assert cycles_fast == cycles_detailed

    def test_edge_ordering_empty(self, config):
        from repro.graph.coo import COOGraph

        empty = COOGraph(src=np.array([], dtype=int), dst=np.array([], dtype=int), num_nodes=4)
        ordered, cycles = UPEKernel(config).edge_ordering(empty)
        assert ordered.num_edges == 0
        assert cycles == 0

    def test_selection_valid_edges(self, small_graph, config):
        csc = coo_to_csc(small_graph)
        kernel = UPEKernel(config)
        sample, cycles, stats = kernel.unique_random_selection(csc, [0, 1, 2], k=3, num_layers=2, seed=0)
        assert cycles > 0
        assert stats.selection_draws > 0
        for layer in sample.layers:
            for src, dst in zip(layer.src.tolist(), layer.dst.tolist()):
                assert src in csc.in_neighbors(dst).tolist()

    def test_selection_unique_per_node(self, small_graph, config):
        csc = coo_to_csc(small_graph)
        kernel = UPEKernel(config)
        sample, _, _ = kernel.unique_random_selection(csc, list(range(5)), k=4, num_layers=1, seed=1)
        layer = sample.layers[-1]
        for dst in np.unique(layer.dst):
            srcs = layer.src[layer.dst == dst]
            assert len(set(srcs.tolist())) == len(srcs)

    def test_selection_detailed_mode(self, small_graph, tiny_hardware):
        csc = coo_to_csc(small_graph)
        kernel = UPEKernel(tiny_hardware, detailed=True)
        sample, cycles, _ = kernel.unique_random_selection(csc, [0, 1], k=2, num_layers=1, seed=2)
        assert cycles > 0
        layer = sample.layers[-1]
        for dst in np.unique(layer.dst):
            srcs = layer.src[layer.dst == dst]
            assert len(srcs) <= 2
            assert len(set(srcs.tolist())) == len(srcs)


class TestSCRKernel:
    def test_reshaping_matches_reference(self, medium_graph, config):
        ordered = edge_order(medium_graph)
        kernel = SCRKernel(config)
        csc, cycles = kernel.data_reshaping(ordered)
        reference = coo_to_csc(medium_graph)
        assert np.array_equal(csc.indptr, reference.indptr)
        assert np.array_equal(csc.indices, reference.indices)
        assert cycles > 0

    def test_reshaping_detailed_matches_fast(self, small_graph, tiny_hardware):
        ordered = edge_order(small_graph)
        fast_csc, fast_cycles = SCRKernel(tiny_hardware, detailed=False).data_reshaping(ordered)
        det_csc, det_cycles = SCRKernel(tiny_hardware, detailed=True).data_reshaping(ordered)
        assert np.array_equal(fast_csc.indptr, det_csc.indptr)
        assert fast_cycles == det_cycles

    def test_reindexing_matches_reference(self, small_graph, config):
        csc = coo_to_csc(small_graph)
        kernel = UPEKernel(config)
        sample, _, _ = kernel.unique_random_selection(csc, [0, 1, 2], k=3, num_layers=2, seed=3)
        scr = SCRKernel(config)
        result, cycles = scr.subgraph_reindexing(sample)
        combined = sample.all_edges()
        reference = reindex_edges(combined.src, combined.dst)
        assert result.mapping == reference.mapping
        assert np.array_equal(result.edges.src, reference.edges.src)
        assert cycles >= combined.num_edges  # at least one cycle per endpoint pair

    def test_reindexing_detailed_matches_fast(self, small_graph, tiny_hardware):
        csc = coo_to_csc(small_graph)
        sample, _, _ = UPEKernel(tiny_hardware).unique_random_selection(
            csc, [0, 1], k=2, num_layers=2, seed=4
        )
        fast_result, fast_cycles = SCRKernel(tiny_hardware, detailed=False).subgraph_reindexing(sample)
        det_result, det_cycles = SCRKernel(tiny_hardware, detailed=True).subgraph_reindexing(sample)
        assert fast_result.mapping == det_result.mapping
        assert np.array_equal(fast_result.edges.src, det_result.edges.src)
        assert fast_cycles == det_cycles
