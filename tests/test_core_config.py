"""Tests for hardware configuration, bitstreams and reconfiguration."""

import pytest

from repro.core.bitstream import generate_bitstream_library
from repro.core.config import (
    DEFAULT_HARDWARE,
    FPGAResources,
    HardwareConfig,
    max_scr_width_for_budget,
    max_upes_for_budget,
    scaled_default_config,
)
from repro.core.reconfig import (
    FULL_RECONFIG_SECONDS,
    REGION_RECONFIG_SECONDS,
    ReconfigurationController,
    icap_program_time,
)


class TestHardwareConfig:
    def test_default_fits_board(self):
        assert DEFAULT_HARDWARE.fits()
        assert 0 < DEFAULT_HARDWARE.utilization() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareConfig(num_upes=0)
        with pytest.raises(ValueError):
            HardwareConfig(upe_width=48)  # not a power of two
        with pytest.raises(ValueError):
            HardwareConfig(scr_width=0)
        with pytest.raises(ValueError):
            HardwareConfig(scr_area_fraction=1.5)

    def test_with_upe_and_scr(self):
        cfg = HardwareConfig(num_upes=8, upe_width=64, num_scrs=2, scr_width=64)
        assert cfg.with_upe(num_upes=4).num_upes == 4
        assert cfg.with_upe(upe_width=32).upe_width == 32
        assert cfg.with_scr(num_scrs=4).num_scrs == 4
        assert cfg.key() != cfg.with_scr(scr_width=128).key()

    def test_lut_accounting(self):
        cfg = HardwareConfig(num_upes=2, upe_width=64, num_scrs=1, scr_width=64)
        assert cfg.upe_luts == 2 * 64 * 180
        assert cfg.scr_luts == 64 * 36
        assert cfg.total_luts == cfg.upe_luts + cfg.scr_luts

    def test_budget_helpers(self):
        assert max_upes_for_budget(180 * 64 * 10, 64) == 10
        assert max_scr_width_for_budget(36 * 100, 1) == 64
        assert max_scr_width_for_budget(1, 1) == 1

    def test_scaled_default_for_small_board(self):
        small = FPGAResources(name="small", luts=400_000, price_usd=1000)
        cfg = scaled_default_config(small)
        assert cfg.fits()
        assert cfg.board is small

    def test_region_budgets_split(self):
        cfg = DEFAULT_HARDWARE
        total = cfg.board.reconfigurable_luts()
        assert cfg.upe_region_budget() + cfg.scr_region_budget() == pytest.approx(total, abs=2)


class TestBitstreamLibrary:
    def test_generation_counts(self):
        library = generate_bitstream_library()
        assert 1 <= len(library.upe_variants) <= 10
        assert 1 <= len(library.scr_variants) <= 10
        assert library.num_variants == len(library.upe_variants) + len(library.scr_variants)

    def test_width_halving_series(self):
        library = generate_bitstream_library()
        widths = [b.width for b in library.upe_variants]
        counts = [b.count for b in library.upe_variants]
        for i in range(1, len(widths)):
            assert widths[i] == widths[i - 1] // 2
            assert counts[i] == counts[i - 1] * 2

    def test_find(self):
        library = generate_bitstream_library()
        first = library.upe_variants[0]
        assert library.find("upe", first.count, first.width) is first
        assert library.find("upe", 99999, 3) is None

    def test_configurations_fit(self):
        library = generate_bitstream_library()
        for config in library.configurations():
            assert config.fits(), config.key()

    def test_default_config_is_in_library(self):
        library = generate_bitstream_library()
        keys = {c.key() for c in library.configurations()}
        assert scaled_default_config().key() in keys

    def test_total_bytes(self):
        library = generate_bitstream_library()
        assert library.total_bytes == library.num_variants * 50 * 1024 * 1024


class TestReconfiguration:
    def test_no_change_is_free(self):
        library = generate_bitstream_library()
        config = library.configurations()[0]
        controller = ReconfigurationController(library, config)
        assert controller.reconfigure(config) is None
        assert controller.num_reconfigurations == 0

    def test_single_region_cheaper_than_both(self):
        library = generate_bitstream_library()
        configs = library.configurations()
        base = configs[0]
        controller = ReconfigurationController(library, base)
        scr_only = library.config_for(library.upe_variants[0], library.scr_variants[1])
        event = controller.reconfigure(scr_only)
        assert event.regions == ("scr",)
        assert event.latency_seconds == pytest.approx(REGION_RECONFIG_SECONDS)
        both = library.config_for(library.upe_variants[1], library.scr_variants[0])
        event = controller.reconfigure(both)
        assert set(event.regions) == {"upe", "scr"}
        assert event.latency_seconds == pytest.approx(FULL_RECONFIG_SECONDS)
        assert controller.total_reconfig_seconds > 0

    def test_missing_bitstream_rejected(self):
        library = generate_bitstream_library()
        base = library.configurations()[0]
        controller = ReconfigurationController(library, base)
        bogus = HardwareConfig(num_upes=3, upe_width=64, num_scrs=1, scr_width=64)
        with pytest.raises(KeyError):
            controller.reconfigure(bogus)

    def test_full_reconfig_matches_paper_magnitude(self):
        # The paper reports ~230 ms for a full reconfiguration.
        assert 0.2 <= FULL_RECONFIG_SECONDS <= 0.26

    def test_icap_time_scales_with_size(self):
        assert icap_program_time(50 * 1024 * 1024) > icap_program_time(10 * 1024 * 1024)
