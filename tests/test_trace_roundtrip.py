"""Trace capture/replay: ``RequestTrace.to_jsonl`` / ``from_jsonl``.

The golden fixture (``tests/golden/request_trace.jsonl``) pins the format:
overload scenarios captured in one PR must replay byte-identically in later
ones, so both the serialization *bytes* and the replayed trace *behaviour*
(serving it produces the same report) are asserted.

Regenerate after an intentional format change with::

    PYTHONPATH=src python tests/test_trace_roundtrip.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.serving import (
    DEFAULT_TENANT,
    BatchScheduler,
    BurstyArrivals,
    InferenceRequest,
    OpenLoopArrivals,
    RequestTrace,
    ShardedServiceCluster,
    merge_traces,
)
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

GOLDEN_PATH = Path(__file__).parent / "golden" / "request_trace.jsonl"

#: A pre-tenancy (version 1) capture of the same golden trace, kept to pin
#: backwards compatibility: old fixtures must keep loading, with every
#: request assigned the default tenant.
GOLDEN_V1_PATH = Path(__file__).parent / "golden" / "request_trace_v1.jsonl"

#: The fixed mix the golden trace was generated from (same profiles as the
#: golden cluster reports, so the two suites pin consistent scenarios).
GOLDEN_MIX = [
    WorkloadProfile(name="gold-a", num_nodes=30_000, num_edges=240_000, avg_degree=8.0,
                    batch_size=600),
    WorkloadProfile(name="gold-b", num_nodes=90_000, num_edges=990_000, avg_degree=11.0,
                    batch_size=1200),
]


def _golden_trace() -> RequestTrace:
    return OpenLoopArrivals(GOLDEN_MIX, rate_rps=300.0, seed=13).trace(12)


class TestGoldenFixture:
    def test_serialization_is_byte_stable(self, tmp_path):
        captured = _golden_trace().to_jsonl(tmp_path / "trace.jsonl")
        assert captured.read_text() == GOLDEN_PATH.read_text(), (
            "trace capture drifted from its golden fixture; if intentional, "
            "regenerate with `PYTHONPATH=src python tests/test_trace_roundtrip.py --regen`"
        )

    def test_replay_equals_generated_trace(self):
        replayed = RequestTrace.from_jsonl(GOLDEN_PATH)
        assert replayed == _golden_trace()

    def test_v1_capture_still_loads_with_default_tenant(self):
        replayed = RequestTrace.from_jsonl(GOLDEN_V1_PATH)
        assert replayed == _golden_trace()
        assert all(r.tenant == DEFAULT_TENANT for r in replayed)
        assert replayed.tenants() == [DEFAULT_TENANT]

    def test_v1_capture_upgrades_to_v2_on_recapture(self, tmp_path):
        upgraded = RequestTrace.from_jsonl(GOLDEN_V1_PATH).to_jsonl(
            tmp_path / "upgraded.jsonl"
        )
        assert upgraded.read_text() == GOLDEN_PATH.read_text()

    def test_replayed_trace_serves_identically(self):
        services = build_services()
        scheduler = BatchScheduler(max_batch_size=3, max_wait_seconds=0.004)

        def report(trace):
            cluster = ShardedServiceCluster(
                services["StatPre"], num_shards=2, scheduler=scheduler
            )
            return json.dumps(cluster.serve_trace(trace).as_dict(), sort_keys=True)

        assert report(RequestTrace.from_jsonl(GOLDEN_PATH)) == report(_golden_trace())


class TestRoundTrip:
    def test_list_built_trace_round_trips(self, tmp_path):
        # Arbitrary ids and coincident timestamps survive the round trip.
        w = GOLDEN_MIX[0]
        trace = RequestTrace(
            [
                InferenceRequest(7, 0.5, w),
                InferenceRequest(3, 0.5, GOLDEN_MIX[1]),
                InferenceRequest(9, 0.25, w),
            ]
        )
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        replayed = RequestTrace.from_jsonl(path)
        assert replayed == trace
        assert [r.request_id for r in replayed] == [9, 3, 7]

    def test_multi_tenant_trace_round_trips(self, tmp_path):
        streams = [
            BurstyArrivals(
                GOLDEN_MIX, base_rate_rps=50.0, peak_rate_rps=400.0,
                period_seconds=0.5, burst_fraction=0.3, phase_seconds=phase,
                tenant=tenant, seed=seed,
            )
            for tenant, phase, seed in [("free", 0.0, 1), ("pro", 0.2, 2)]
        ]
        trace = merge_traces([stream.trace(10) for stream in streams])
        path = trace.to_jsonl(tmp_path / "tenants.jsonl")
        replayed = RequestTrace.from_jsonl(path)
        assert replayed == trace
        assert [r.tenant for r in replayed] == [r.tenant for r in trace]
        assert sorted(replayed.tenants()) == ["free", "pro"]

    def test_explicit_tenant_objects_round_trip(self, tmp_path):
        w = GOLDEN_MIX[0]
        trace = RequestTrace(
            [
                InferenceRequest(0, 0.0, w, tenant="acme"),
                InferenceRequest(1, 0.1, w),
                InferenceRequest(2, 0.2, w, tenant="acme"),
            ]
        )
        replayed = RequestTrace.from_jsonl(trace.to_jsonl(tmp_path / "t.jsonl"))
        assert replayed == trace
        assert [r.tenant for r in replayed] == ["acme", DEFAULT_TENANT, "acme"]

    def test_double_round_trip_is_stable(self, tmp_path):
        first = _golden_trace().to_jsonl(tmp_path / "a.jsonl")
        second = RequestTrace.from_jsonl(first).to_jsonl(tmp_path / "b.jsonl")
        assert first.read_text() == second.read_text()

    def test_rejects_corrupt_captures(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            RequestTrace.from_jsonl(empty)

        bad_header = tmp_path / "bad_header.jsonl"
        bad_header.write_text(json.dumps({"kind": "request"}) + "\n")
        with pytest.raises(ValueError, match="header"):
            RequestTrace.from_jsonl(bad_header)

        bad_version = tmp_path / "bad_version.jsonl"
        bad_version.write_text(
            json.dumps({"kind": "trace", "version": 99, "num_requests": 0,
                        "num_workloads": 0}) + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            RequestTrace.from_jsonl(bad_version)

        truncated = tmp_path / "truncated.jsonl"
        lines = GOLDEN_PATH.read_text().splitlines()
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            RequestTrace.from_jsonl(truncated)

        missing_tenant = tmp_path / "missing_tenant.jsonl"
        missing_tenant.write_text(
            json.dumps({"kind": "trace", "version": 2, "num_requests": 0,
                        "num_workloads": 0, "num_tenants": 1}) + "\n"
        )
        with pytest.raises(ValueError, match="tenant"):
            RequestTrace.from_jsonl(missing_tenant)

    def test_rejects_tampered_timestamps(self, tmp_path):
        """``from_arrays`` sorts by arrival, so a capture with shuffled or
        negative timestamps would load "successfully" with silently repaired
        ordering — replay must reject it instead of masking the corruption."""
        lines = GOLDEN_PATH.read_text().splitlines()
        first_request = next(
            i for i, line in enumerate(lines)
            if json.loads(line).get("kind") == "request"
        )

        negative = tmp_path / "negative.jsonl"
        record = json.loads(lines[first_request])
        record["arrival_seconds"] = -0.5
        negative.write_text(
            "\n".join(lines[:first_request] + [json.dumps(record, sort_keys=True)]
                      + lines[first_request + 1:]) + "\n"
        )
        with pytest.raises(ValueError, match="negative"):
            RequestTrace.from_jsonl(negative)

        shuffled = tmp_path / "shuffled.jsonl"
        swapped = list(lines)
        swapped[first_request], swapped[-1] = swapped[-1], swapped[first_request]
        shuffled.write_text("\n".join(swapped) + "\n")
        with pytest.raises(ValueError, match="monotonic"):
            RequestTrace.from_jsonl(shuffled)

        non_finite = tmp_path / "non_finite.jsonl"
        record = json.loads(lines[first_request])
        record["arrival_seconds"] = float("nan")
        non_finite.write_text(
            "\n".join(lines[:first_request] + [json.dumps(record, sort_keys=True)]
                      + lines[first_request + 1:]) + "\n"
        )
        with pytest.raises(ValueError, match="negative or non-finite"):
            RequestTrace.from_jsonl(non_finite)


class TestMergeContract:
    """``merge_traces``: id reassignment + input validation, pinned."""

    def _streams(self):
        return [
            BurstyArrivals(
                GOLDEN_MIX, base_rate_rps=50.0, peak_rate_rps=400.0,
                period_seconds=0.5, burst_fraction=0.3, phase_seconds=phase,
                tenant=tenant, seed=seed,
            )
            for tenant, phase, seed in [
                ("ent", 0.0, 1), ("free", 0.17, 2), ("pro", 0.33, 3),
            ]
        ]

    def test_ids_reassigned_in_merged_arrival_order(self):
        merged = merge_traces([s.trace(8) for s in self._streams()])
        assert [r.request_id for r in merged] == list(range(len(merged)))
        arrivals = [r.arrival_seconds for r in merged]
        assert arrivals == sorted(arrivals)

    def test_same_instant_requests_keep_input_order(self):
        w = GOLDEN_MIX[0]
        first = RequestTrace([InferenceRequest(0, 0.5, w, tenant="a")])
        second = RequestTrace([InferenceRequest(0, 0.5, w, tenant="b")])
        merged = merge_traces([first, second])
        # Stable by input position at the tie; ids renumber over that order.
        assert [(r.request_id, r.tenant) for r in merged] == [(0, "a"), (1, "b")]

    def test_rejects_unsorted_input(self):
        w = GOLDEN_MIX[0]
        sorted_trace = RequestTrace([InferenceRequest(0, 0.0, w)])
        # Every public constructor sorts, so an unsorted trace can only come
        # from a corrupted SoA view; forge one the way a buggy capture
        # loader would to exercise the defence.
        unsorted = RequestTrace(
            [InferenceRequest(0, 0.5, w), InferenceRequest(1, 1.0, w)]
        )
        arrays = unsorted.arrays()
        unsorted._arrays = arrays._replace(
            arrival_seconds=arrays.arrival_seconds[::-1].copy()
        )
        with pytest.raises(ValueError, match="input 1 is not sorted"):
            merge_traces([sorted_trace, unsorted])

    def test_rejects_non_finite_input(self):
        w = GOLDEN_MIX[0]
        bad = RequestTrace([InferenceRequest(0, float("inf"), w)])
        with pytest.raises(ValueError, match="non-finite"):
            merge_traces([bad])

    def test_merged_multi_tenant_trace_round_trips_and_serves(self, tmp_path):
        """The full capture path: merge → JSONL → replay → identical serve."""
        merged = merge_traces([s.trace(8) for s in self._streams()])
        replayed = RequestTrace.from_jsonl(merged.to_jsonl(tmp_path / "m.jsonl"))
        assert replayed == merged
        assert [r.request_id for r in replayed] == [r.request_id for r in merged]
        assert sorted(replayed.tenants()) == ["ent", "free", "pro"]
        services = build_services()
        scheduler = BatchScheduler(max_batch_size=3, max_wait_seconds=0.004)

        def report(trace):
            cluster = ShardedServiceCluster(
                services["StatPre"], num_shards=2, scheduler=scheduler,
                engine="fast",
            )
            return json.dumps(cluster.serve_trace(trace).as_dict(), sort_keys=True)

        assert report(replayed) == report(merged)


def regenerate() -> None:
    path = _golden_trace().to_jsonl(GOLDEN_PATH)
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        sys.exit(pytest.main([__file__, "-q"]))
