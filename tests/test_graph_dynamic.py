"""Tests for dynamic graphs and update streams."""

import numpy as np
import pytest

from repro.graph.dynamic import (
    DAILY_GROWTH_RATE,
    DynamicGraph,
    GraphUpdateStream,
    UpdateBatch,
    affected_vertex_ratio,
    critical_update_ratio,
)
from repro.graph.generators import uniform_random_graph


@pytest.fixture
def base():
    return uniform_random_graph(100, 1000, seed=10)


class TestUpdateStream:
    def test_growth_rate(self, base):
        stream = GraphUpdateStream(base, growth_rate=0.1, seed=0)
        batches = list(stream.generate(3))
        assert len(batches) == 3
        assert batches[0].num_edges == pytest.approx(100, abs=2)
        # Each batch grows relative to the compounded edge count.
        assert batches[2].num_edges > batches[0].num_edges

    def test_negative_growth_rejected(self, base):
        with pytest.raises(ValueError):
            GraphUpdateStream(base, growth_rate=-0.1)

    def test_replay_accumulates(self, base):
        stream = GraphUpdateStream(base, growth_rate=0.05, seed=1)
        dynamic = stream.replay(4)
        assert dynamic.num_steps == 4
        assert dynamic.graph.num_edges > base.num_edges

    def test_new_nodes_added(self, base):
        stream = GraphUpdateStream(base, growth_rate=0.2, new_node_rate=0.5, seed=2)
        dynamic = stream.replay(2)
        assert dynamic.graph.num_nodes > base.num_nodes

    def test_paper_growth_rates_present(self):
        assert DAILY_GROWTH_RATE["SO"] == pytest.approx(0.0052)
        assert DAILY_GROWTH_RATE["TB"] == pytest.approx(0.0095)


class TestDynamicGraph:
    def test_apply_and_ratio(self, base):
        dynamic = DynamicGraph(graph=base.copy())
        batch = UpdateBatch(step=0, src=np.array([0, 1]), dst=np.array([2, 3]))
        before = dynamic.graph.num_edges
        dynamic.apply(batch)
        assert dynamic.graph.num_edges == before + 2
        assert 0 < dynamic.update_ratio(batch) < 1

    def test_apply_with_new_nodes(self, base):
        dynamic = DynamicGraph(graph=base.copy())
        batch = UpdateBatch(step=0, src=np.array([0]), dst=np.array([100]), new_nodes=1)
        dynamic.apply(batch)
        assert dynamic.graph.num_nodes == base.num_nodes + 1


class TestInfluence:
    def test_affected_ratio_bounds(self, base):
        ratio = affected_vertex_ratio(base, base.dst[:10], num_layers=1)
        assert 0.0 < ratio <= 1.0

    def test_more_layers_more_influence(self, base):
        seed_dst = base.dst[:5]
        r1 = affected_vertex_ratio(base, seed_dst, num_layers=1)
        r3 = affected_vertex_ratio(base, seed_dst, num_layers=3)
        assert r3 >= r1

    def test_empty_graph(self):
        from repro.graph.coo import COOGraph

        empty = COOGraph(src=np.array([], dtype=int), dst=np.array([], dtype=int), num_nodes=0)
        assert affected_vertex_ratio(empty, np.array([], dtype=int), 2) == 0.0

    def test_critical_update_ratio_in_range(self, base):
        ratio = critical_update_ratio(base, num_layers=2, target_fraction=0.5, steps=4)
        assert 0.0 <= ratio <= 0.1

    def test_dense_graph_needs_fewer_updates(self):
        sparse = uniform_random_graph(300, 600, seed=3)
        dense = uniform_random_graph(300, 6000, seed=3)
        r_sparse = critical_update_ratio(sparse, num_layers=2, steps=4)
        r_dense = critical_update_ratio(dense, num_layers=2, steps=4)
        assert r_dense <= r_sparse
