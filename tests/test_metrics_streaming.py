"""Streaming latency accumulator: exact fallback + P² sanity.

The fast engine's report aggregates are only sound if
``StreamingLatencyStats.stats()`` is *bit-identical* to
``LatencyStats.from_samples`` over the same push sequence — every field,
not approximately: the golden-report suite compares rendered JSON bytes.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import (
    LatencyStats,
    P2Quantile,
    StreamingLatencyStats,
    percentile,
)

samples_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=200,
)


class TestStreamingExactFallback:
    @settings(max_examples=50, deadline=None)
    @given(samples=samples_lists)
    def test_stats_bit_identical_to_from_samples(self, samples):
        accumulator = StreamingLatencyStats()
        for sample in samples:
            accumulator.push(sample)
        streamed = accumulator.stats()
        batch = LatencyStats.from_samples(samples)
        assert streamed.count == batch.count
        assert streamed.mean == batch.mean
        assert streamed.p50 == batch.p50
        assert streamed.p95 == batch.p95
        assert streamed.p99 == batch.p99
        assert streamed.max == batch.max

    def test_empty_accumulator(self):
        accumulator = StreamingLatencyStats()
        assert len(accumulator) == 0
        assert accumulator.stats() == LatencyStats()

    def test_running_totals(self):
        accumulator = StreamingLatencyStats()
        for sample in (0.5, 1.5, 1.0):
            accumulator.push(sample)
        assert accumulator.count == 3
        assert accumulator.total == pytest.approx(3.0)

    def test_percentile_helper_unchanged(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.5
        with pytest.raises(ValueError):
            percentile(values, -1)


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        estimator = P2Quantile(50)
        for sample in (3.0, 1.0):
            estimator.push(sample)
        assert estimator.estimate() == 2.0

    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0)
        with pytest.raises(ValueError):
            P2Quantile(100)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_tracks_exact_percentile_on_uniform_samples(self, seed):
        import random

        rng = random.Random(seed)
        samples = [rng.random() for _ in range(800)]
        accumulator = StreamingLatencyStats()
        for sample in samples:
            accumulator.push(sample)
        for q in StreamingLatencyStats.APPROX_QUANTILES:
            exact = percentile(samples, q)
            approx = accumulator.approx_percentile(q)
            # P² converges to within a few percent of the exact quantile on
            # well-behaved distributions; this is a monitoring estimate, not
            # a report value, so the tolerance is loose but bounded.
            assert math.isfinite(approx)
            assert abs(approx - exact) <= 0.08

    def test_unknown_quantile_rejected(self):
        accumulator = StreamingLatencyStats()
        with pytest.raises(KeyError):
            accumulator.approx_percentile(42.0)

    def test_track_approx_off_skips_markers_but_keeps_exact_stats(self):
        tracked = StreamingLatencyStats()
        untracked = StreamingLatencyStats(track_approx=False)
        for sample in (0.3, 0.1, 0.9, 0.4, 0.7, 0.2):
            tracked.push(sample)
            untracked.push(sample)
        assert untracked.stats() == tracked.stats()
        with pytest.raises(KeyError):
            untracked.approx_percentile(50.0)
