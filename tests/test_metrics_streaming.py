"""Streaming latency accumulator: exact fallback + P² sanity.

The fast engine's report aggregates are only sound if
``StreamingLatencyStats.stats()`` is *bit-identical* to
``LatencyStats.from_samples`` over the same push sequence — every field,
not approximately: the golden-report suite compares rendered JSON bytes.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import (
    LatencyStats,
    P2Quantile,
    StreamingLatencyStats,
    percentile,
)

samples_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=200,
)


class TestStreamingExactFallback:
    @settings(max_examples=50, deadline=None)
    @given(samples=samples_lists)
    def test_stats_bit_identical_to_from_samples(self, samples):
        accumulator = StreamingLatencyStats()
        for sample in samples:
            accumulator.push(sample)
        streamed = accumulator.stats()
        batch = LatencyStats.from_samples(samples)
        assert streamed.count == batch.count
        assert streamed.mean == batch.mean
        assert streamed.p50 == batch.p50
        assert streamed.p95 == batch.p95
        assert streamed.p99 == batch.p99
        assert streamed.max == batch.max

    def test_empty_accumulator(self):
        accumulator = StreamingLatencyStats()
        assert len(accumulator) == 0
        assert accumulator.stats() == LatencyStats()

    def test_running_totals(self):
        accumulator = StreamingLatencyStats()
        for sample in (0.5, 1.5, 1.0):
            accumulator.push(sample)
        assert accumulator.count == 3
        assert accumulator.total == pytest.approx(3.0)

    def test_percentile_helper_unchanged(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.5
        with pytest.raises(ValueError):
            percentile(values, -1)


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        estimator = P2Quantile(50)
        for sample in (3.0, 1.0):
            estimator.push(sample)
        assert estimator.estimate() == 2.0

    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0)
        with pytest.raises(ValueError):
            P2Quantile(100)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_tracks_exact_percentile_on_uniform_samples(self, seed):
        import random

        rng = random.Random(seed)
        samples = [rng.random() for _ in range(800)]
        accumulator = StreamingLatencyStats()
        for sample in samples:
            accumulator.push(sample)
        for q in StreamingLatencyStats.APPROX_QUANTILES:
            exact = percentile(samples, q)
            approx = accumulator.approx_percentile(q)
            # P² converges to within a few percent of the exact quantile on
            # well-behaved distributions; this is a monitoring estimate, not
            # a report value, so the tolerance is loose but bounded.
            assert math.isfinite(approx)
            assert abs(approx - exact) <= 0.08

    def test_unknown_quantile_rejected(self):
        accumulator = StreamingLatencyStats()
        with pytest.raises(KeyError):
            accumulator.approx_percentile(42.0)

    def test_track_approx_off_skips_markers_but_keeps_exact_stats(self):
        tracked = StreamingLatencyStats()
        untracked = StreamingLatencyStats(track_approx=False)
        for sample in (0.3, 0.1, 0.9, 0.4, 0.7, 0.2):
            tracked.push(sample)
            untracked.push(sample)
        assert untracked.stats() == tracked.stats()
        with pytest.raises(KeyError):
            untracked.approx_percentile(50.0)

    def test_empty_estimate_raises_not_zero(self):
        """An empty sample has no quantile; 0.0 would be indistinguishable
        from a true zero estimate."""
        estimator = P2Quantile(95)
        assert estimator.count == 0
        with pytest.raises(ValueError, match="empty"):
            estimator.estimate()
        estimator.push(0.0)
        assert estimator.count == 1
        assert estimator.estimate() == 0.0

    def test_count_tracks_pushes(self):
        estimator = P2Quantile(50)
        for i in range(10):
            estimator.push(float(i))
        assert estimator.count == 10

    def test_constant_stream_stays_exact(self):
        """Duplicate heights among the first five samples (degenerate
        markers) must not drift the estimate off the constant."""
        estimator = P2Quantile(95)
        for _ in range(500):
            estimator.push(2.5)
        assert estimator.estimate() == 2.5

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        q=st.sampled_from([50.0, 95.0, 99.0]),
        shape=st.sampled_from(["constant", "near-constant", "heavy-tailed"]),
    )
    def test_tracks_exact_percentile_on_adversarial_streams(self, seed, q, shape):
        """P² stays near the exact quantile on the marker-degenerate shapes:
        constant, near-constant (rare outliers on a flat stream) and
        heavy-tailed draws — and the marker heights stay bracketed."""
        import random

        rng = random.Random(seed)
        if shape == "constant":
            samples = [1.0] * 400
        elif shape == "near-constant":
            samples = [1.0 if rng.random() > 0.02 else 50.0 for _ in range(400)]
        else:
            samples = [rng.paretovariate(1.5) for _ in range(400)]
        estimator = P2Quantile(q)
        for sample in samples:
            estimator.push(sample)
            heights = estimator._heights
            assert heights == sorted(heights)
        exact = percentile(samples, q)
        span = max(samples) - min(samples)
        if span == 0.0:
            assert estimator.estimate() == exact
        elif shape == "near-constant":
            # The estimate may sit between the flat mass and an outlier,
            # but never outside the sample range.
            assert min(samples) <= estimator.estimate() <= max(samples)
        else:
            # Heavy tails are P²'s worst case; bound the error loosely by
            # the central mass, not the extreme tail.
            assert abs(estimator.estimate() - exact) <= max(
                0.5 * exact, percentile(samples, 99.5) - percentile(samples, 50.0)
            )


class TestBulkExtend:
    """``StreamingLatencyStats.extend`` must be bit-identical to pushes."""

    @settings(max_examples=50, deadline=None)
    @given(samples=samples_lists, split=st.integers(min_value=0, max_value=200))
    def test_extend_bit_identical_to_pushes(self, samples, split):
        import numpy as np

        split = min(split, len(samples))
        pushed = StreamingLatencyStats(track_approx=False)
        for sample in samples:
            pushed.push(sample)
        extended = StreamingLatencyStats(track_approx=False)
        # Prefix via pushes, remainder via one ndarray extend: the chunked
        # engine's pattern (per-tenant folds resume mid-stream).
        for sample in samples[:split]:
            extended.push(sample)
        extended.extend(np.asarray(samples[split:], dtype=np.float64))
        assert extended.count == pushed.count
        assert extended.total == pushed.total
        assert extended.stats() == pushed.stats()

    def test_extend_accepts_plain_iterables(self):
        extended = StreamingLatencyStats(track_approx=False)
        extended.extend([0.5, 1.5, 2.5])
        pushed = StreamingLatencyStats(track_approx=False)
        for sample in (0.5, 1.5, 2.5):
            pushed.push(sample)
        assert extended.stats() == pushed.stats()

    def test_extend_with_p2_tracking_falls_back_to_pushes(self):
        tracked = StreamingLatencyStats()
        tracked.extend([0.3, 0.1, 0.9, 0.4, 0.7, 0.2, 0.8])
        reference = StreamingLatencyStats()
        for sample in (0.3, 0.1, 0.9, 0.4, 0.7, 0.2, 0.8):
            reference.push(sample)
        assert tracked.stats() == reference.stats()
        for q in StreamingLatencyStats.APPROX_QUANTILES:
            assert tracked.approx_percentile(q) == reference.approx_percentile(q)

    def test_extend_empty_chunk_is_noop(self):
        import numpy as np

        accumulator = StreamingLatencyStats(track_approx=False)
        accumulator.push(1.0)
        accumulator.extend(np.empty(0, dtype=np.float64))
        assert accumulator.count == 1
        assert accumulator.total == 1.0
