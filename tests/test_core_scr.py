"""Tests for the SCR datapath: comparators, trees, reshaper and reindexer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scr import SCR, AdderTree, ComparatorBank, FilterTree, Reindexer, Reshaper
from repro.graph.convert import build_pointer_array, edge_order
from repro.graph.generators import GraphSpec, power_law_graph
from repro.graph.reindex import reindex_edges


class TestComparatorBank:
    def test_ge(self):
        bank = ComparatorBank(width=8)
        out = bank.compare_ge(np.array([1, 5, 7, 3]), 4)
        assert out.tolist() == [False, True, True, False]

    def test_eq(self):
        bank = ComparatorBank(width=8)
        out = bank.compare_eq(np.array([1, 5, 7, 5]), 5)
        assert out.tolist() == [False, True, False, True]

    def test_width_enforced(self):
        bank = ComparatorBank(width=2)
        with pytest.raises(ValueError):
            bank.compare_ge(np.array([1, 2, 3]), 0)


class TestTrees:
    def test_adder_tree_counts(self):
        tree = AdderTree(width=16)
        assert tree.reduce(np.array([1, 0, 1, 1])) == 3
        assert tree.depth == 4
        assert tree.output_bits == 5

    def test_filter_tree_hit(self):
        tree = FilterTree(width=8)
        hit, value = tree.reduce(np.array([False, True, False]), np.array([10, 42, 7]))
        assert hit and value == 42

    def test_filter_tree_miss(self):
        tree = FilterTree(width=8)
        hit, value = tree.reduce(np.zeros(3, dtype=bool), np.array([1, 2, 3]))
        assert not hit and value == 0

    def test_filter_tree_lane_bits(self):
        assert FilterTree(width=8, payload_bits=32).lane_bits == 33


class TestSCR:
    def test_count_ge_and_lt(self):
        scr = SCR(width=16)
        seg = np.array([0, 1, 2, 3, 4, 5])
        assert scr.count_ge(seg, 3) == 3
        assert scr.count_lt(seg, 3) == 3
        assert scr.cycles_consumed == 2

    def test_lookup(self):
        scr = SCR(width=16)
        keys = np.array([9, 4, 11])
        payloads = np.array([0, 1, 2])
        hit, value = scr.lookup(keys, payloads, 4)
        assert hit and value == 1
        hit, _ = scr.lookup(keys, payloads, 99)
        assert not hit

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SCR(width=0)


class TestReshaper:
    def _reference(self, graph):
        ordered = edge_order(graph)
        return ordered, build_pointer_array(ordered.dst, graph.num_nodes)

    @pytest.mark.parametrize("width,slots", [(4, 1), (8, 2), (16, 4), (64, 1)])
    def test_matches_reference(self, width, slots):
        graph = power_law_graph(GraphSpec(num_nodes=40, num_edges=300, degree_skew=0.5, seed=3))
        ordered, expected = self._reference(graph)
        reshaper = Reshaper([SCR(width=width) for _ in range(slots)])
        indptr = reshaper.build_pointer_array(ordered.dst, graph.num_nodes)
        assert np.array_equal(indptr, expected)

    def test_empty_input(self):
        reshaper = Reshaper([SCR(width=8)])
        indptr = reshaper.build_pointer_array(np.array([], dtype=int), 5)
        assert indptr.tolist() == [0, 0, 0, 0, 0, 0]

    def test_requires_slots(self):
        with pytest.raises(ValueError):
            Reshaper([])

    def test_cycle_accounting_positive(self):
        graph = power_law_graph(GraphSpec(num_nodes=30, num_edges=200, seed=4))
        ordered = edge_order(graph)
        reshaper = Reshaper([SCR(width=16)])
        reshaper.build_pointer_array(ordered.dst, graph.num_nodes)
        assert reshaper.stats.cycles > 0
        assert reshaper.stats.cycles >= reshaper.estimated_cycles(graph.num_edges, graph.num_nodes) * 0.5

    @given(st.integers(1, 30), st.integers(0, 150), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_reshaper_property(self, num_nodes, num_edges, seed):
        rng = np.random.default_rng(seed)
        dst = np.sort(rng.integers(0, num_nodes, size=num_edges))
        expected = build_pointer_array(dst, num_nodes)
        reshaper = Reshaper([SCR(width=8), SCR(width=8)])
        assert np.array_equal(reshaper.build_pointer_array(dst, num_nodes), expected)


class TestReindexer:
    def test_matches_reference(self):
        rng = np.random.default_rng(5)
        src = rng.integers(0, 50, size=80)
        dst = rng.integers(0, 50, size=80)
        reference = reindex_edges(src, dst)
        reindexer = Reindexer(SCR(width=16))
        new_src, new_dst = reindexer.reindex_edges(src, dst)
        assert np.array_equal(new_src, reference.edges.src)
        assert np.array_equal(new_dst, reference.edges.dst)
        assert reindexer.mapping == reference.mapping

    def test_original_vids(self):
        reindexer = Reindexer(SCR(width=8))
        reindexer.reindex_edges(np.array([7, 9]), np.array([9, 11]))
        original = reindexer.original_vids()
        for vid, new in reindexer.mapping.items():
            assert original[new] == vid

    def test_counter_matches_unique_nodes(self):
        reindexer = Reindexer(SCR(width=4))
        src = np.array([1, 2, 3, 1])
        dst = np.array([2, 3, 1, 3])
        reindexer.reindex_edges(src, dst)
        assert reindexer.counter == 3

    def test_sram_capacity_enforced(self):
        reindexer = Reindexer(SCR(width=4), sram_capacity=2)
        with pytest.raises(MemoryError):
            reindexer.reindex_edges(np.array([1, 2, 3]), np.array([4, 5, 6]))

    def test_reset(self):
        reindexer = Reindexer(SCR(width=4))
        reindexer.reindex_edges(np.array([1]), np.array([2]))
        reindexer.reset()
        assert reindexer.counter == 0
        assert reindexer.mapping == {}
        assert reindexer.stats.cycles == 0

    def test_cycles_accumulate(self):
        reindexer = Reindexer(SCR(width=2))
        reindexer.reindex_edges(np.arange(10), np.arange(10, 20))
        assert reindexer.stats.cycles >= 20
