"""Tests for the inference engine and its latency model."""

import numpy as np

from repro.core.accelerator import AutoGNNDevice
from repro.core.config import HardwareConfig
from repro.gnn.embeddings import EmbeddingTable
from repro.gnn.inference import InferenceEngine, InferenceLatencyModel
from repro.gnn.models import GraphSAGE, build_model
from repro.graph.convert import coo_to_csc
from repro.preprocessing.pipeline import PreprocessingConfig


class TestLatencyModel:
    def test_monotone_in_subgraph_size(self):
        model = InferenceLatencyModel()
        sage = GraphSAGE(in_dim=64, hidden_dim=64)
        assert model.latency(sage, 100, 1000) < model.latency(sage, 10_000, 100_000)

    def test_fixed_overhead_floor(self):
        model = InferenceLatencyModel(fixed_overhead=0.005)
        sage = GraphSAGE(in_dim=8, hidden_dim=8)
        assert model.latency(sage, 1, 1) >= 0.005

    def test_latency_from_counts_by_model(self):
        model = InferenceLatencyModel()
        gat = model.latency_from_counts(1000, 10_000, model_name="gat")
        gin = model.latency_from_counts(1000, 10_000, model_name="gin")
        assert gat > gin

    def test_more_layers_cost_more(self):
        model = InferenceLatencyModel()
        two = model.latency_from_counts(1000, 10_000, num_layers=2)
        six = model.latency_from_counts(1000, 10_000, num_layers=6)
        assert six > two


class TestInferenceEngine:
    def test_runs_on_preprocessed_subgraph(self, medium_graph):
        device = AutoGNNDevice(HardwareConfig(num_upes=8, upe_width=32, num_scrs=2, scr_width=64))
        out = device.preprocess(medium_graph, PreprocessingConfig(batch_size=8, k=3, num_layers=2))
        embeddings = EmbeddingTable.random(medium_graph.num_nodes, dim=16, seed=1)
        engine = InferenceEngine(build_model("graphsage", in_dim=16, hidden_dim=16))
        result = engine.run(out.result.subgraph_csc, embeddings, reindex=out.result.reindex)
        assert result.outputs.shape[0] == out.result.subgraph_csc.num_nodes
        assert np.all(np.isfinite(result.outputs))
        assert result.latency_seconds > 0
        assert result.flops > 0

    def test_run_without_reindex(self, small_graph):
        csc = coo_to_csc(small_graph)
        embeddings = EmbeddingTable.random(small_graph.num_nodes, dim=8)
        engine = InferenceEngine(build_model("gcn", in_dim=8, hidden_dim=8))
        result = engine.run(csc, embeddings)
        assert result.outputs.shape == (csc.num_nodes, 8)

    def test_feature_padding_for_extra_nodes(self, small_graph):
        csc = coo_to_csc(small_graph)
        short = EmbeddingTable.random(small_graph.num_nodes - 5, dim=8)
        engine = InferenceEngine(build_model("gin", in_dim=8, hidden_dim=8))
        result = engine.run(csc, short)
        assert result.outputs.shape[0] == csc.num_nodes

    def test_estimate_latency(self):
        engine = InferenceEngine(build_model("graphsage", in_dim=8, hidden_dim=8))
        assert engine.estimate_latency(100, 500) > 0
