"""Tests for workload profiles, the PCIe model, boards, power and metrics."""

import pytest

from repro.analysis.metrics import (
    EndToEndLatency,
    TaskLatencies,
    breakdown_percentages,
    geometric_mean,
    normalize,
    speedup,
)
from repro.analysis.report import Table, format_series, format_table
from repro.system.boards import BOARD_CATALOG, GPU_REFERENCE_PRICE, board_by_name, boards_by_tier
from repro.system.pcie import PCIeLink, TransferBreakdown
from repro.system.power import PowerModel, power_ratio
from repro.system.workload import WorkloadProfile


class TestWorkloadProfile:
    def test_from_dataset_full_scale(self):
        w = WorkloadProfile.from_dataset("AM")
        assert w.num_edges == 123_000_000
        assert w.total_selections == 3000 * 111
        assert w.sampled_edges == 3000 * 110
        assert w.graph_bytes == w.num_edges * 8

    def test_from_graph(self, small_graph):
        w = WorkloadProfile.from_graph(small_graph, batch_size=10_000)
        assert w.num_nodes == small_graph.num_nodes
        assert w.batch_size == small_graph.num_nodes  # capped

    def test_update_and_scaling_helpers(self):
        w = WorkloadProfile.from_dataset("SO")
        w2 = w.with_updates(0.2)
        assert w2.update_fraction == 0.2
        assert w2.update_bytes == int(w2.graph_bytes * 0.2)
        w3 = w.scaled_edges(2.0)
        assert w3.num_edges == 2 * w.num_edges

    def test_subgraph_smaller_than_graph(self):
        w = WorkloadProfile.from_dataset("AM")
        assert w.subgraph_bytes < w.graph_bytes

    def test_to_cost_params(self):
        w = WorkloadProfile.from_dataset("AX", k=5, num_layers=3, batch_size=100)
        params = w.to_cost_params()
        assert params.k == 5
        assert params.num_layers == 3
        assert params.num_edges == w.num_edges

    def test_per_seed_nodes_capped_by_graph(self):
        w = WorkloadProfile(name="tiny", num_nodes=20, num_edges=100, avg_degree=5, k=10, num_layers=2)
        assert w.per_seed_subgraph_nodes == 20


class TestPCIe:
    def test_dma_main_scales(self):
        link = PCIeLink()
        assert link.dma_main(1 << 30) > link.dma_main(1 << 20)
        assert link.dma_main(0) == 0.0

    def test_bypass_slower_per_byte(self):
        link = PCIeLink()
        assert link.dma_bypass(1 << 20) > link.dma_main(1 << 20)

    def test_best_path_picks_bypass_for_small(self):
        link = PCIeLink()
        small = link.best_path(1 << 10)
        assert small == pytest.approx(link.dma_bypass(1 << 10))
        big = link.best_path(1 << 30)
        assert big == pytest.approx(link.dma_main(1 << 30))

    def test_transfer_breakdown_total(self):
        t = TransferBreakdown(host_to_accelerator=1.0, accelerator_to_gpu=0.5)
        assert t.total == 1.5


class TestBoards:
    def test_catalog_spans_range(self):
        luts = [b.luts for b in BOARD_CATALOG]
        assert min(luts) < 200_000 and max(luts) >= 4_000_000

    def test_lookup(self):
        assert board_by_name("Versal VPK180").luts == 4_100_000
        with pytest.raises(KeyError):
            board_by_name("nonexistent")

    def test_tiers(self):
        assert boards_by_tier("low")
        assert boards_by_tier("high")

    def test_normalized_price(self):
        board = board_by_name("Versal VPK180")
        assert board.normalized_price == pytest.approx(board.price_usd / GPU_REFERENCE_PRICE)


class TestPower:
    def test_power_ratio_matches_paper(self):
        assert power_ratio() == pytest.approx(19.7, rel=0.01)

    def test_fpga_preprocessing_energy_lower(self):
        latency = EndToEndLatency(
            preprocessing=TaskLatencies(ordering=0.05, reshaping=0.05), transfer=0.01, inference=0.05
        )
        fpga = PowerModel("fpga").energy(latency)
        gpu = PowerModel("gpu").energy(latency)
        assert fpga.preprocessing_joules < gpu.preprocessing_joules
        assert fpga.total_joules < gpu.total_joules
        assert fpga.inference_joules == gpu.inference_joules

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            PowerModel("tpu")


class TestMetrics:
    def test_task_latencies_arithmetic(self):
        a = TaskLatencies(ordering=1, reshaping=2, selecting=3, reindexing=4)
        b = a.scaled(0.5)
        assert b.total == pytest.approx(5.0)
        c = a + b
        assert c.total == pytest.approx(15.0)
        assert TaskLatencies.from_dict({"ordering": 2.0}).ordering == 2.0

    def test_end_to_end_shares(self):
        latency = EndToEndLatency(
            preprocessing=TaskLatencies(ordering=0.7), transfer=0.1, inference=0.2
        )
        assert latency.total == pytest.approx(1.0)
        assert latency.preprocessing_share == pytest.approx(0.8)

    def test_speedup_and_means(self):
        assert speedup(10, 2) == 5
        assert speedup(10, 0) == float("inf")
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert normalize([2, 4], 2) == [1.0, 2.0]
        assert normalize([2, 4], 0) == [0.0, 0.0]

    def test_breakdown_percentages(self):
        pct = breakdown_percentages({"a": 1.0, "b": 3.0})
        assert pct["a"] == pytest.approx(25.0)
        assert breakdown_percentages({"a": 0.0}) == {"a": 0.0}


class TestReport:
    def test_table_rendering(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(1, 2.5)
        text = table.render()
        assert "t" in text and "2.500" in text
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_series(self):
        text = format_series("s", "x", [1, 2], {"y": [10, 20]})
        assert "10" in text and "x" in text

    def test_format_table_scientific(self):
        text = format_table("t", ["v"], [[1e-6]])
        assert "e-06" in text
