"""Property-based tests of the SLO-aware serving control plane.

Invariants under test (see ISSUE/DESIGN "Control plane"):

* admission never violates its own prediction: a request is admitted iff
  its predicted sojourn at arrival is within the workload's SLO, and every
  shed record carries a violating prediction;
* conservation: shed + served == offered, for open- and closed-loop sources;
* goodput never exceeds throughput;
* the autoscaler's shard count stays within [min_shards, max_shards] and is
  hysteresis-stable on constant in-band load;
* the online event loop with no control attached is an exact replay of the
  offline ``serve_trace`` path (same report, byte for byte).
"""

import json
from dataclasses import replace

import pytest
from conftest import WORKLOAD_POOL, make_profile
from hypothesis import given, settings, strategies as st

from repro.serving import (
    QUALITY_DEGRADED,
    QUALITY_FULL,
    Autoscaler,
    BatchScheduler,
    ClosedLoopClients,
    DegradationPolicy,
    OpenLoopArrivals,
    ServingConfig,
    ServingController,
    ShardedServiceCluster,
    SLOPolicy,
    TraceArrivals,
)


def _mean_cost(services, name="CPU"):
    svc = services[name]
    return sum(svc.estimate_service_seconds(w) for w in WORKLOAD_POOL) / len(WORKLOAD_POOL)


# ---------------------------------------------------------------- admission
@settings(max_examples=20, deadline=None)
@given(
    num_clients=st.integers(min_value=1, max_value=12),
    think_ms=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=2**16),
    max_requests=st.integers(min_value=10, max_value=40),
    slo_factor=st.floats(min_value=0.5, max_value=4.0),
)
def test_admission_prediction_invariant_closed_loop(
    services, num_clients, think_ms, seed, max_requests, slo_factor
):
    """Admit ⇔ predicted sojourn ≤ SLO, and shed + served == offered."""
    slo = SLOPolicy(default_slo_seconds=slo_factor * _mean_cost(services))
    cluster = ShardedServiceCluster(
        services["CPU"],
        num_shards=2,
        scheduler=BatchScheduler(max_batch_size=2, max_wait_seconds=0.002),
    )
    clients = ClosedLoopClients(
        WORKLOAD_POOL,
        num_clients=num_clients,
        think_seconds=think_ms * 1e-3,
        seed=seed,
        max_requests=max_requests,
        retry_backoff_seconds=0.005,
    )
    report = ServingController(cluster, slo=slo).serve(clients)

    assert len(report.decisions) == report.num_offered
    for decision in report.decisions:
        assert decision.admitted == (decision.predicted_sojourn <= decision.slo_seconds)
    for record in report.shed:
        assert record.predicted_sojourn > record.slo_seconds
    # Conservation: every issued request was either served or shed.
    assert report.num_requests + report.num_shed == report.num_offered
    assert report.num_offered == clients.num_issued
    assert clients.num_outstanding == 0


@settings(max_examples=15, deadline=None)
@given(
    rate_factor=st.floats(min_value=0.25, max_value=4.0),
    seed=st.integers(min_value=0, max_value=2**16),
    num_requests=st.integers(min_value=8, max_value=40),
    slo_factor=st.floats(min_value=0.5, max_value=3.0),
)
def test_goodput_bounded_by_throughput_open_loop(
    services, rate_factor, seed, num_requests, slo_factor
):
    """goodput <= throughput, and conservation holds for trace sources too."""
    cost = _mean_cost(services)
    slo = SLOPolicy(default_slo_seconds=slo_factor * cost)
    trace = OpenLoopArrivals(
        WORKLOAD_POOL, rate_rps=rate_factor / cost, seed=seed
    ).trace(num_requests)
    cluster = ShardedServiceCluster(
        services["CPU"],
        num_shards=2,
        scheduler=BatchScheduler(max_batch_size=2, max_wait_seconds=0.002),
    )
    source = TraceArrivals(trace)
    report = ServingController(cluster, slo=slo).serve(source)
    assert report.goodput_rps <= report.throughput_rps + 1e-9
    assert report.num_requests + report.num_shed == len(trace)
    assert source.num_issued == len(trace)
    goodput = report.goodput
    assert goodput.offered == goodput.served + goodput.shed
    assert 0.0 <= goodput.shed_rate <= 1.0
    assert 0.0 <= goodput.slo_attainment <= 1.0


# --------------------------------------------------------------- autoscaler
@settings(max_examples=30, deadline=None)
@given(
    min_shards=st.integers(min_value=1, max_value=3),
    extra=st.integers(min_value=0, max_value=3),
    down=st.floats(min_value=0.0, max_value=2.0),
    band=st.floats(min_value=0.5, max_value=4.0),
    hysteresis=st.integers(min_value=1, max_value=4),
    depths=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=40),
)
def test_autoscaler_stays_within_bounds(min_shards, extra, down, band, hysteresis, depths):
    """Any observation sequence keeps the shard count in [min, max]."""
    scaler = Autoscaler(
        min_shards=min_shards,
        max_shards=min_shards + extra,
        scale_up_depth=down + band,
        scale_down_depth=down,
        hysteresis_observations=hysteresis,
    )
    scaler.start(0.0)
    for i, depth in enumerate(depths):
        active = scaler.observe(float(i), depth)
        assert scaler.min_shards <= active <= scaler.max_shards
    for event in scaler.timeline():
        assert scaler.min_shards <= event.active_shards <= scaler.max_shards


@settings(max_examples=30, deadline=None)
@given(
    min_shards=st.integers(min_value=1, max_value=4),
    extra=st.integers(min_value=1, max_value=4),
    hysteresis=st.integers(min_value=1, max_value=4),
    num_observations=st.integers(min_value=1, max_value=50),
)
def test_autoscaler_hysteresis_stable_on_constant_load(
    min_shards, extra, hysteresis, num_observations
):
    """Constant per-shard depth inside the dead band never changes the count."""
    scaler = Autoscaler(
        min_shards=min_shards,
        max_shards=min_shards + extra,
        scale_up_depth=4.0,
        scale_down_depth=1.0,
        hysteresis_observations=hysteresis,
    )
    scaler.start(0.0)
    for i in range(num_observations):
        # Mid-band depth, scaled by the current active count so the
        # per-shard depth stays in the dead band whatever the count is.
        active = scaler.observe(float(i), 2.5 * scaler.active)
        assert active == min_shards
    assert [event.reason for event in scaler.timeline()] == ["init"]


def test_autoscaler_ramps_to_max_under_sustained_overload():
    scaler = Autoscaler(
        min_shards=1, max_shards=4, scale_up_depth=2.0, scale_down_depth=0.5,
        hysteresis_observations=2,
    )
    scaler.start(0.0)
    for i in range(20):
        scaler.observe(float(i), 100.0)
    assert scaler.active == 4
    reasons = [event.reason for event in scaler.timeline()]
    assert reasons == ["init", "scale-up", "scale-up", "scale-up"]


def test_autoscaler_scales_down_when_idle():
    scaler = Autoscaler(
        min_shards=1, max_shards=3, scale_up_depth=2.0, scale_down_depth=0.5,
        hysteresis_observations=2,
    )
    scaler.start(0.0)
    for i in range(10):
        scaler.observe(float(i), 50.0)
    assert scaler.active == 3
    for i in range(10, 20):
        scaler.observe(float(i), 0.0)
    assert scaler.active == 1


def test_autoscaler_rejects_bad_params():
    with pytest.raises(ValueError):
        Autoscaler(min_shards=0)
    with pytest.raises(ValueError):
        Autoscaler(min_shards=3, max_shards=2)
    with pytest.raises(ValueError):
        Autoscaler(scale_up_depth=1.0, scale_down_depth=1.0)
    with pytest.raises(ValueError):
        Autoscaler(hysteresis_observations=0)
    with pytest.raises(ValueError):
        Autoscaler(warmup_seconds=-1.0)


def test_autoscaler_in_loop_respects_bounds_and_warmup(services):
    """Scaling inside the event loop stays within bounds; a newly activated
    shard serves nothing before its warm-up elapses."""
    warmup = 0.05
    cluster = ShardedServiceCluster(
        services["CPU"], num_shards=3, scheduler=BatchScheduler(max_batch_size=1)
    )
    scaler = Autoscaler(
        min_shards=1, max_shards=3, scale_up_depth=1.0, scale_down_depth=0.25,
        hysteresis_observations=2, warmup_seconds=warmup,
    )
    cost = _mean_cost(services)
    clients = ClosedLoopClients(
        WORKLOAD_POOL, num_clients=8, seed=5, max_requests=60
    )
    report = ServingController(cluster, autoscaler=scaler).serve(clients)
    assert report.num_requests == 60
    activated_at = {}
    for event in report.scaling_timeline:
        assert 1 <= event.active_shards <= 3
        if event.reason == "scale-up":
            activated_at.setdefault(event.active_shards - 1, event.seconds)
    assert activated_at, "the overloaded run should have scaled up"
    for served in report.served:
        if served.shard_id in activated_at:
            start = (
                served.request.arrival_seconds
                + served.batching_delay
                + served.dispatch_delay
            )
            assert start >= activated_at[served.shard_id] + warmup - 1e-12
    assert cost > 0  # sanity: estimates calibrated


# ----------------------------------------------------- event-loop equivalence
@settings(max_examples=15, deadline=None)
@given(
    rate_rps=st.sampled_from([50.0, 200.0, 1000.0]),
    seed=st.integers(min_value=0, max_value=2**16),
    num_requests=st.integers(min_value=4, max_value=30),
    max_batch_size=st.integers(min_value=1, max_value=4),
    num_shards=st.integers(min_value=1, max_value=4),
)
def test_online_loop_replays_offline_trace_exactly(
    services, rate_rps, seed, num_requests, max_batch_size, num_shards
):
    """With no control attached, serve_online == serve_trace, byte for byte.

    Poisson arrivals keep timestamps distinct, so batching-event ties (the
    only place the two loops could legally order work differently) do not
    occur; under that condition the reworked online event loop must be an
    exact replay of the offline scheduler-driven path.
    """
    trace = OpenLoopArrivals(WORKLOAD_POOL, rate_rps=rate_rps, seed=seed).trace(num_requests)
    scheduler = BatchScheduler(max_batch_size=max_batch_size, max_wait_seconds=0.003)
    offline = ShardedServiceCluster(
        services["CPU"], num_shards=num_shards, scheduler=scheduler
    ).serve_trace(trace)
    online = ShardedServiceCluster(
        services["CPU"], num_shards=num_shards, scheduler=scheduler
    ).serve_online(TraceArrivals(trace))
    assert json.dumps(offline.as_dict(), sort_keys=True) == json.dumps(
        online.as_dict(), sort_keys=True
    )


# ------------------------------------------------------------- closed loop
def test_closed_loop_arrivals_follow_actual_finish_times(services):
    """With one client and no think time, request i+1 arrives exactly when
    request i finishes — the loop is fed by real completions, not estimates."""
    cluster = ShardedServiceCluster(
        services["CPU"], num_shards=1, scheduler=BatchScheduler(max_batch_size=1)
    )
    clients = ClosedLoopClients(
        [make_profile()], num_clients=1, think_seconds=0.0, seed=0, max_requests=8
    )
    report = cluster.serve_online(clients)
    ordered = sorted(report.served, key=lambda s: s.request.request_id)
    assert len(ordered) == 8
    for previous, current in zip(ordered, ordered[1:]):
        assert current.request.arrival_seconds == pytest.approx(
            previous.finish_seconds
        )


def test_closed_loop_shed_clients_retry_after_backoff(services):
    """A shed request re-arrives exactly backoff later (think time zero)."""
    slo = SLOPolicy(default_slo_seconds=1e-9)  # impossible: everything sheds
    cluster = ShardedServiceCluster(services["CPU"], num_shards=1)
    clients = ClosedLoopClients(
        [make_profile()], num_clients=1, seed=0, max_requests=5,
        retry_backoff_seconds=0.5,
    )
    report = ServingController(cluster, slo=slo).serve(clients)
    assert report.num_requests == 0
    assert report.num_shed == 5
    arrivals = [record.request.arrival_seconds for record in report.shed]
    assert arrivals == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])
    assert report.goodput_rps == 0.0


def test_closed_loop_clients_validation():
    w = [make_profile()]
    with pytest.raises(ValueError):
        ClosedLoopClients(w, num_clients=0, max_requests=1)
    with pytest.raises(ValueError):
        ClosedLoopClients(w, num_clients=1, max_requests=0)
    with pytest.raises(ValueError):
        ClosedLoopClients(w, num_clients=1, max_requests=1, think_seconds=-1.0)
    with pytest.raises(ValueError):
        ClosedLoopClients(w, num_clients=1, max_requests=1, retry_backoff_seconds=-0.1)
    with pytest.raises(ValueError):
        ClosedLoopClients([], num_clients=1, max_requests=1)
    exhausted = ClosedLoopClients(w, num_clients=1, max_requests=1)
    exhausted.pop()
    assert exhausted.peek_time() is None
    with pytest.raises(IndexError):
        exhausted.pop()


# ------------------------------------------------------- graceful degradation
def test_workload_degrade_produces_cheaper_own_batch_profile():
    w = make_profile()
    degraded = w.degrade(k_factor=0.5, layer_drop=1)
    assert degraded.quality == QUALITY_DEGRADED
    assert w.quality == QUALITY_FULL
    assert degraded.k == w.k // 2
    assert degraded.num_layers == w.num_layers - 1
    assert degraded.name == w.name  # SLO/quota policies resolve identically
    assert degraded.batch_key != w.batch_key  # own batches
    assert degraded.total_selections < w.total_selections
    # Floors clamp but never raise k / layers above the original.
    floor = w.degrade(k_factor=0.01, min_k=3, layer_drop=10, min_layers=1)
    assert floor.k == 3
    assert floor.num_layers == 1
    small = replace(w, k=2)
    assert small.degrade(k_factor=0.5, min_k=5).k == 2


def test_workload_degrade_and_policy_validation():
    w = make_profile()
    for kwargs in (
        {"k_factor": 0.0},
        {"k_factor": 1.5},
        {"min_k": 0},
        {"layer_drop": -1},
        {"min_layers": 0},
    ):
        with pytest.raises(ValueError):
            w.degrade(**kwargs)
    with pytest.raises(ValueError):
        DegradationPolicy(k_factor=0.0)
    with pytest.raises(ValueError):
        DegradationPolicy(degraded_utility=1.5)
    with pytest.raises(ValueError):
        replace(w, quality="premium")
    # apply() is idempotent: a degraded profile never degrades twice.
    policy = DegradationPolicy(k_factor=0.5, layer_drop=1)
    once = policy.apply(w)
    assert policy.apply(once) == once


@settings(max_examples=15, deadline=None)
@given(
    rate_factor=st.floats(min_value=1.0, max_value=4.0),
    seed=st.integers(min_value=0, max_value=2**16),
    num_requests=st.integers(min_value=10, max_value=50),
    slo_factor=st.floats(min_value=0.5, max_value=2.0),
)
def test_tiered_serving_conservation_and_decision_invariants(
    services, rate_factor, seed, num_requests, slo_factor
):
    """Exact integer conservation with the degraded tier active:
    ``offered == served_full + served_degraded + shed + failed``, the
    tier split agrees with the served records, and every degraded
    admission carries the "degraded" reason with an in-SLO prediction."""
    cost = _mean_cost(services)
    slo = SLOPolicy(default_slo_seconds=slo_factor * cost)
    trace = OpenLoopArrivals(
        WORKLOAD_POOL, rate_rps=rate_factor / cost, seed=seed
    ).trace(num_requests)
    cluster = ShardedServiceCluster(
        services["CPU"],
        num_shards=2,
        scheduler=BatchScheduler(max_batch_size=2, max_wait_seconds=0.002),
    )
    source = TraceArrivals(trace)
    report = cluster.serve_online(
        source,
        config=ServingConfig(
            slo=slo,
            admit=True,
            degradation=DegradationPolicy(k_factor=0.5, layer_drop=1),
        ),
    )
    goodput = report.goodput
    assert (
        goodput.offered
        == goodput.served_full + goodput.served_degraded + goodput.shed + goodput.failed
    )
    assert goodput.served_full == goodput.served - goodput.served_degraded
    assert goodput.slo_met_full + goodput.slo_met_degraded == goodput.slo_met
    assert goodput.slo_met_degraded <= goodput.served_degraded
    assert goodput.served_degraded == sum(
        1 for s in report.served if s.request.workload.quality == QUALITY_DEGRADED
    )
    # Per-tenant tier splits sum to the cluster-wide ones.
    tenants = report.tenant_stats.values()
    assert sum(t.served_degraded for t in tenants) == goodput.served_degraded
    assert sum(t.slo_met_degraded for t in tenants) == goodput.slo_met_degraded
    for decision in report.decisions:
        if decision.degraded:
            assert decision.admitted
            assert decision.reason == "degraded"
            assert decision.predicted_sojourn <= decision.slo_seconds
    for record in report.shed:
        # Shed means *both* tiers violated the prediction.
        assert record.predicted_sojourn > record.slo_seconds


def test_degraded_tier_admits_instead_of_shedding(services):
    """Requests the full-quality prediction would shed are served degraded
    when their cheaper profile fits the SLO, lifting goodput above binary
    shedding on the same trace."""
    w = make_profile()
    svc = services["CPU"]
    degraded = DegradationPolicy(k_factor=0.3, layer_drop=1)
    full_cost = svc.estimate_service_seconds(w)
    degraded_cost = svc.estimate_service_seconds(degraded.apply(w))
    assert degraded_cost < full_cost
    # SLO between the two costs: full-quality sheds, degraded fits.
    slo = SLOPolicy(default_slo_seconds=(degraded_cost + full_cost) / 2.0)
    trace = OpenLoopArrivals([w], rate_rps=0.01 / full_cost, seed=3).trace(6)
    cluster = ShardedServiceCluster(
        svc, num_shards=1, scheduler=BatchScheduler(max_batch_size=1)
    )
    binary = cluster.serve_online(
        TraceArrivals(trace), config=ServingConfig(slo=slo, admit=True)
    )
    tiered = cluster.serve_online(
        TraceArrivals(trace),
        config=ServingConfig(slo=slo, admit=True, degradation=degraded),
    )
    assert binary.num_requests == 0 and binary.num_shed == len(trace)
    assert tiered.num_shed == 0
    assert tiered.goodput.served_degraded == len(trace)
    assert all(
        s.request.workload.quality == QUALITY_DEGRADED for s in tiered.served
    )
    assert tiered.goodput.slo_weighted_goodput_rps(0.5) > 0.0
    assert binary.goodput.slo_weighted_goodput_rps(0.5) == 0.0


def test_degradation_noop_when_profile_already_at_floor(services):
    """A policy whose floors make degradation free (no cheaper profile)
    behaves exactly like binary shedding — no degraded batches appear."""
    w = make_profile()
    at_floor = DegradationPolicy(k_factor=1.0, layer_drop=0)
    cost = services["CPU"].estimate_service_seconds(w)
    slo = SLOPolicy(default_slo_seconds=0.5 * cost)
    trace = OpenLoopArrivals([w], rate_rps=1.0 / cost, seed=1).trace(8)
    cluster = ShardedServiceCluster(
        services["CPU"], num_shards=1, scheduler=BatchScheduler(max_batch_size=1)
    )
    tiered = cluster.serve_online(
        TraceArrivals(trace),
        config=ServingConfig(slo=slo, admit=True, degradation=at_floor),
    )
    assert tiered.goodput.served_degraded == 0
    assert tiered.num_shed == len(trace)


# ------------------------------------------------------------------ policies
def test_slo_policy_overrides_and_validation():
    policy = SLOPolicy(default_slo_seconds=0.5, per_workload={"wl-s": 0.1})
    assert policy.slo_for(WORKLOAD_POOL[0]) == 0.1
    assert policy.slo_for(WORKLOAD_POOL[1]) == 0.5
    payload = json.loads(json.dumps(policy.as_dict()))
    assert payload["default_slo_seconds"] == 0.5
    with pytest.raises(ValueError):
        SLOPolicy(default_slo_seconds=0.0)
    with pytest.raises(ValueError):
        SLOPolicy(default_slo_seconds=1.0, per_workload={"x": -1.0})


def test_serving_controller_validates_autoscaler_bounds(services):
    cluster = ShardedServiceCluster(services["CPU"], num_shards=2)
    with pytest.raises(ValueError):
        ServingController(cluster, autoscaler=Autoscaler(min_shards=1, max_shards=4))


def test_serve_online_validates_autoscaler_bounds_directly(services):
    # Regression: bypassing ServingController must not IndexError mid-run
    # when the autoscaler can grow past the cluster's shard count.
    cluster = ShardedServiceCluster(services["CPU"], num_shards=2)
    clients = ClosedLoopClients([make_profile()], num_clients=4, seed=0, max_requests=8)
    oversized = Autoscaler(min_shards=1, max_shards=8, scale_up_depth=0.5,
                           scale_down_depth=0.1, hysteresis_observations=1)
    with pytest.raises(ValueError, match="max_shards"):
        cluster.serve_online(clients, autoscaler=oversized)


def test_report_with_control_sections_is_json_serializable(services):
    slo = SLOPolicy(default_slo_seconds=0.25)
    cluster = ShardedServiceCluster(
        services["CPU"], num_shards=2, scheduler=BatchScheduler(max_batch_size=2)
    )
    scaler = Autoscaler(min_shards=1, max_shards=2, scale_up_depth=1.0,
                        scale_down_depth=0.25, hysteresis_observations=2)
    clients = ClosedLoopClients(
        WORKLOAD_POOL, num_clients=6, seed=1, max_requests=30,
        retry_backoff_seconds=0.01,
    )
    report = ServingController(cluster, slo=slo, autoscaler=scaler).serve(clients)
    payload = json.loads(json.dumps(report.as_dict()))
    goodput = payload["goodput"]
    assert goodput["offered"] == goodput["served"] + goodput["shed"]
    assert payload["slo"]["default_slo_seconds"] == 0.25
    assert payload["scaling_timeline"][0][2] == "init"


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
