"""Million-request fast-engine smoke test (dedicated CI job, not tier-1).

Gated on ``RUN_MILLION=1``: a 1M-request chunked replay plus a full
byte-identity check against the per-event fast loop.  This is the scale the
array-native loop exists for — tier-1 covers correctness at small scale;
this job proves the chunked path holds its contract (and a sane wall-clock)
where per-request Python work would dominate.
"""

import json
import os
import time

import pytest

from repro.serving import (
    BatchScheduler,
    ENGINE_FAST,
    OpenLoopArrivals,
    POLICY_LEAST_LOADED,
    ShardedServiceCluster,
)
from repro.serving.engine import _ChunkedServedLog, serve_trace_fast
from repro.system.service import build_services
from repro.system.workload import WorkloadProfile

pytestmark = pytest.mark.skipif(
    not os.environ.get("RUN_MILLION"),
    reason="1M-request smoke test; set RUN_MILLION=1 (dedicated CI job)",
)

NUM_REQUESTS = 1_000_000
#: Generous machine-independent ceiling; the chunked loop runs this in a few
#: seconds on a laptop, so hitting the ceiling means a >10x regression.
WALL_BUDGET_SECONDS = 120.0


def _cluster(services):
    return ShardedServiceCluster(
        services["DynPre"],
        num_shards=4,
        scheduler=BatchScheduler(max_batch_size=4, max_wait_seconds=0.005),
        policy=POLICY_LEAST_LOADED,
        engine=ENGINE_FAST,
    )


def test_million_request_chunked_replay_smoke():
    services = build_services()
    mix = [WorkloadProfile.from_dataset(key) for key in ("PH", "AX", "MV")]
    trace = OpenLoopArrivals(mix, rate_rps=500.0, seed=1).trace(NUM_REQUESTS)

    started = time.perf_counter()
    chunked = serve_trace_fast(_cluster(services), trace, chunked=True)
    chunked_seconds = time.perf_counter() - started
    assert isinstance(chunked.served, _ChunkedServedLog)
    assert chunked.num_requests == NUM_REQUESTS
    assert sum(chunked.shard_requests) == NUM_REQUESTS
    assert chunked_seconds < WALL_BUDGET_SECONDS, (
        f"chunked 1M replay took {chunked_seconds:.1f}s "
        f"(budget {WALL_BUDGET_SECONDS:.0f}s)"
    )

    event = serve_trace_fast(_cluster(services), trace, chunked=False)
    assert json.dumps(chunked.as_dict(), sort_keys=True) == json.dumps(
        event.as_dict(), sort_keys=True
    )

    # compact() keeps every summary without materializing 1M records.
    log = chunked.served
    rendered = json.dumps(chunked.compact().as_dict(), sort_keys=True)
    assert log._records is None
    assert rendered == json.dumps(event.as_dict(), sort_keys=True)
