"""Reference vs. vectorized fast-path equivalence tests.

The contract (DESIGN.md, "Reference vs. vectorized fast path"): for the same
inputs and seed, the two execution modes produce bit-identical samples,
bit-identical reindexing output and identical cycle counts.
"""

import math

import numpy as np
import pytest

from repro.core.accelerator import AutoGNNDevice
from repro.core.config import HardwareConfig
from repro.core.kernels import (
    SCRKernel,
    UPEKernel,
    reindexer_scan_width,
    reindexing_cycle_count,
    reshaping_cycle_count,
)
from repro.graph.convert import coo_to_csc, edge_order
from repro.graph.coo import VID_DTYPE
from repro.graph.generators import GraphSpec, power_law_graph
from repro.graph.reindex import (
    factorize_first_occurrence,
    interleave_endpoints,
    reindex_edges,
    reindex_mapping_sizes,
)
from repro.graph.sampling import (
    MODE_REFERENCE,
    MODE_VECTORIZED,
    SampledSubgraph,
    layer_wise_sample,
    node_wise_sample,
    node_wise_sample_with_stats,
)
from repro.preprocessing.pipeline import PreprocessingConfig, preprocess
from repro.preprocessing.tasks import empty_sample


@pytest.fixture
def graph():
    return power_law_graph(GraphSpec(num_nodes=400, num_edges=5000, degree_skew=0.6, seed=13))


@pytest.fixture
def csc(graph):
    return coo_to_csc(graph)


@pytest.fixture
def config():
    return HardwareConfig(num_upes=8, upe_width=32, num_scrs=2, scr_width=64)


def assert_samples_equal(a: SampledSubgraph, b: SampledSubgraph):
    assert a.num_layers == b.num_layers
    for la, lb in zip(a.layers, b.layers):
        assert np.array_equal(la.src, lb.src)
        assert np.array_equal(la.dst, lb.dst)
    assert np.array_equal(a.sampled_nodes, b.sampled_nodes)
    assert np.array_equal(a.batch_nodes, b.batch_nodes)
    assert a.num_nodes == b.num_nodes


class TestCSCBatchHelpers:
    def test_in_neighbors_batch_matches_per_node(self, csc):
        nodes = np.arange(0, csc.num_nodes, 3)
        flat, offsets = csc.in_neighbors_batch(nodes)
        for i, node in enumerate(nodes.tolist()):
            segment = flat[int(offsets[i]) : int(offsets[i + 1])]
            assert np.array_equal(segment, csc.in_neighbors(node))

    def test_in_degrees_of_matches_in_degree(self, csc):
        nodes = np.arange(csc.num_nodes)
        degs = csc.in_degrees_of(nodes)
        for node in range(csc.num_nodes):
            assert int(degs[node]) == csc.in_degree(node)

    def test_out_of_range_rejected(self, csc):
        with pytest.raises(IndexError):
            csc.in_neighbors_batch(np.array([csc.num_nodes]))
        with pytest.raises(IndexError):
            csc.in_degrees_of(np.array([-1]))


class TestSamplerEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 23])
    def test_node_wise_bit_identical(self, csc, seed):
        batch = list(range(0, 60, 2))
        ref = node_wise_sample(csc, batch, k=4, num_layers=3, seed=seed, mode=MODE_REFERENCE)
        vec = node_wise_sample(csc, batch, k=4, num_layers=3, seed=seed, mode=MODE_VECTORIZED)
        assert_samples_equal(ref, vec)

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_layer_wise_bit_identical(self, csc, seed):
        batch = list(range(0, 40, 2))
        ref = layer_wise_sample(csc, batch, k=6, num_layers=3, seed=seed, mode=MODE_REFERENCE)
        vec = layer_wise_sample(csc, batch, k=6, num_layers=3, seed=seed, mode=MODE_VECTORIZED)
        assert_samples_equal(ref, vec)

    def test_stats_identical(self, csc):
        _, ref = node_wise_sample_with_stats(csc, [0, 1, 2], 3, 2, seed=5, mode=MODE_REFERENCE)
        _, vec = node_wise_sample_with_stats(csc, [0, 1, 2], 3, 2, seed=5, mode=MODE_VECTORIZED)
        assert ref.arrays == vec.arrays
        assert ref.draws == vec.draws
        assert vec.draws > 0

    def test_vectorized_deterministic(self, csc):
        a = node_wise_sample(csc, [0, 1, 5], k=3, num_layers=2, seed=9, mode=MODE_VECTORIZED)
        b = node_wise_sample(csc, [0, 1, 5], k=3, num_layers=2, seed=9, mode=MODE_VECTORIZED)
        assert_samples_equal(a, b)

    def test_vectorized_per_node_cap_unique_membership(self, csc):
        k = 4
        sample = node_wise_sample(csc, list(range(10)), k=k, num_layers=2, seed=2,
                                  mode=MODE_VECTORIZED)
        for layer in sample.layers:
            for dst in np.unique(layer.dst):
                srcs = layer.src[layer.dst == dst]
                assert srcs.shape[0] <= k
                assert len(set(srcs.tolist())) == srcs.shape[0]
                neighbors = set(csc.in_neighbors(int(dst)).tolist())
                assert set(srcs.tolist()).issubset(neighbors)

    def test_layer_wise_vectorized_k_per_layer(self, csc):
        k = 5
        sample = layer_wise_sample(csc, list(range(8)), k=k, num_layers=2, seed=0,
                                   mode=MODE_VECTORIZED)
        for layer in sample.layers:
            assert len(np.unique(layer.src)) <= k

    def test_empty_batch(self, csc):
        ref = node_wise_sample(csc, [], k=3, num_layers=2, seed=0, mode=MODE_REFERENCE)
        vec = node_wise_sample(csc, [], k=3, num_layers=2, seed=0, mode=MODE_VECTORIZED)
        assert_samples_equal(ref, vec)
        assert vec.num_sampled_nodes == 0

    def test_unknown_mode_rejected(self, csc):
        with pytest.raises(ValueError):
            node_wise_sample(csc, [0], k=2, num_layers=1, mode="bogus")


class TestReindexEquivalence:
    def test_bit_identical_modes(self, csc):
        sample = node_wise_sample(csc, [0, 1, 2, 3], k=4, num_layers=2, seed=1)
        combined = sample.all_edges()
        ref = reindex_edges(combined.src, combined.dst, mode=MODE_REFERENCE)
        vec = reindex_edges(combined.src, combined.dst, mode=MODE_VECTORIZED)
        assert ref.mapping == vec.mapping
        assert np.array_equal(ref.edges.src, vec.edges.src)
        assert np.array_equal(ref.edges.dst, vec.edges.dst)
        assert np.array_equal(ref.original_vids, vec.original_vids)

    def test_factorize_lut_matches_sort_path(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 50, size=500).astype(VID_DTYPE)
        codes_lut, orig_lut = factorize_first_occurrence(values, num_vids=50)
        codes_gen, orig_gen = factorize_first_occurrence(values)
        assert np.array_equal(codes_lut, codes_gen)
        assert np.array_equal(orig_lut, orig_gen)

    def test_mapping_sizes_closed_form(self):
        rng = np.random.default_rng(6)
        values = rng.integers(0, 30, size=200).astype(VID_DTYPE)
        codes, _ = factorize_first_occurrence(values)
        sizes = reindex_mapping_sizes(codes)
        mapping = {}
        expected = []
        for v in values.tolist():
            expected.append(max(len(mapping), 1))
            if v not in mapping:
                mapping[v] = len(mapping)
        assert sizes.tolist() == expected

    def test_interleave_order(self):
        src = np.array([1, 2], dtype=VID_DTYPE)
        dst = np.array([3, 4], dtype=VID_DTYPE)
        assert interleave_endpoints(src, dst).tolist() == [3, 1, 4, 2]

    def test_empty(self):
        ref = reindex_edges(np.array([], dtype=int), np.array([], dtype=int),
                            mode=MODE_REFERENCE)
        vec = reindex_edges(np.array([], dtype=int), np.array([], dtype=int),
                            mode=MODE_VECTORIZED)
        assert ref.mapping == vec.mapping == {}
        assert vec.num_sampled_nodes == 0


class TestCycleFormulaEquivalence:
    def test_reshaping_vectorized_matches_loop(self, graph, config):
        ordered = edge_order(graph)
        sorted_dst = np.asarray(ordered.dst, dtype=np.int64)
        # Inline re-statement of the original per-segment walk.
        width, slots = config.scr_width, config.num_scrs
        cycles, target = 0, 0
        for seg_index in range(math.ceil(sorted_dst.shape[0] / width)):
            seg = sorted_dst[seg_index * width : (seg_index + 1) * width]
            last_target = min(int(seg[-1]) + 1, graph.num_nodes)
            cycles += math.ceil((last_target - target + 1) / slots)
            target = last_target
        assert reshaping_cycle_count(ordered.dst, graph.num_nodes, config) == cycles

    def test_reindexing_vectorized_matches_loop(self, config):
        sizes = [1, 10, 200, 300, 5000]
        width = reindexer_scan_width(config)
        expected = sum(max(math.ceil(s / width), 1) for s in sizes)
        assert reindexing_cycle_count(sizes, config) == expected
        assert reindexing_cycle_count(np.array(sizes), config) == expected
        assert reindexing_cycle_count([], config) == 0


class TestKernelEquivalence:
    def test_upe_selection_modes_identical(self, csc, config):
        ref_kernel = UPEKernel(config, mode=MODE_REFERENCE)
        vec_kernel = UPEKernel(config, mode=MODE_VECTORIZED)
        ref, ref_cycles, ref_stats = ref_kernel.unique_random_selection(
            csc, list(range(12)), k=5, num_layers=2, seed=3
        )
        vec, vec_cycles, vec_stats = vec_kernel.unique_random_selection(
            csc, list(range(12)), k=5, num_layers=2, seed=3
        )
        assert_samples_equal(ref, vec)
        assert ref_cycles == vec_cycles
        assert ref_stats.selection_draws == vec_stats.selection_draws
        assert ref_stats.selection_arrays == vec_stats.selection_arrays

    def test_scr_reindexing_modes_identical(self, csc, config):
        sample = node_wise_sample(csc, list(range(8)), k=4, num_layers=2, seed=2)
        ref_result, ref_cycles = SCRKernel(config, mode=MODE_REFERENCE).subgraph_reindexing(sample)
        vec_result, vec_cycles = SCRKernel(config, mode=MODE_VECTORIZED).subgraph_reindexing(sample)
        assert ref_result.mapping == vec_result.mapping
        assert np.array_equal(ref_result.edges.src, vec_result.edges.src)
        assert np.array_equal(ref_result.edges.dst, vec_result.edges.dst)
        assert np.array_equal(ref_result.original_vids, vec_result.original_vids)
        assert ref_cycles == vec_cycles


class TestPipelineEquivalence:
    def test_end_to_end_bit_exact(self, graph):
        ref = preprocess(graph, k=4, num_layers=2, batch_size=32, seed=6, mode=MODE_REFERENCE)
        vec = preprocess(graph, k=4, num_layers=2, batch_size=32, seed=6, mode=MODE_VECTORIZED)
        assert np.array_equal(ref.ordered.src, vec.ordered.src)
        assert np.array_equal(ref.csc.indptr, vec.csc.indptr)
        assert_samples_equal(ref.sample, vec.sample)
        assert ref.reindex.mapping == vec.reindex.mapping
        assert np.array_equal(ref.reindex.edges.src, vec.reindex.edges.src)
        assert np.array_equal(ref.reindex.edges.dst, vec.reindex.edges.dst)
        assert np.array_equal(ref.subgraph_csc.indptr, vec.subgraph_csc.indptr)
        assert np.array_equal(ref.subgraph_csc.indices, vec.subgraph_csc.indices)

    def test_device_cycles_identical(self, graph):
        workload = PreprocessingConfig(k=4, num_layers=2, batch_size=32, seed=6)
        ref = AutoGNNDevice(mode=MODE_REFERENCE).preprocess(graph, workload)
        vec = AutoGNNDevice(mode=MODE_VECTORIZED).preprocess(graph, workload)
        assert ref.timing.breakdown() == vec.timing.breakdown()
        assert ref.timing.total_cycles == vec.timing.total_cycles
        assert vec.timing.total_cycles > 0

    def test_config_mode_none_inherits_device_mode(self, graph):
        workload = PreprocessingConfig(k=4, num_layers=2, batch_size=16, seed=2)
        assert workload.mode is None
        ref_dev = AutoGNNDevice(mode=MODE_REFERENCE).preprocess(graph, workload)
        vec_dev = AutoGNNDevice(mode=MODE_VECTORIZED).preprocess(graph, workload)
        # Inherit: a default config must not silently flip a reference device
        # to the vectorized path (results are identical either way, so check
        # via an explicit-mode config instead).
        explicit = PreprocessingConfig(k=4, num_layers=2, batch_size=16, seed=2,
                                       mode=MODE_REFERENCE)
        delegated = AutoGNNDevice(mode=MODE_VECTORIZED).preprocess(graph, explicit)
        assert ref_dev.timing.breakdown() == vec_dev.timing.breakdown()
        assert delegated.timing.breakdown() == ref_dev.timing.breakdown()

    def test_layer_wise_pipeline_modes(self, graph):
        ref = preprocess(graph, k=4, num_layers=2, batch_size=16, seed=1,
                         sampling_strategy="layer", mode=MODE_REFERENCE)
        vec = preprocess(graph, k=4, num_layers=2, batch_size=16, seed=1,
                         sampling_strategy="layer", mode=MODE_VECTORIZED)
        assert np.array_equal(ref.reindex.edges.src, vec.reindex.edges.src)
        assert np.array_equal(ref.reindex.original_vids, vec.reindex.original_vids)


class TestSatelliteFixes:
    def test_all_edges_empty_layers_keeps_num_nodes(self):
        sample = empty_sample(37)
        combined = sample.all_edges()
        assert combined.num_edges == 0
        assert combined.num_nodes == 37

    def test_sampler_sets_num_nodes(self, csc):
        sample = node_wise_sample(csc, [0], k=2, num_layers=1, seed=0)
        assert sample.num_nodes == csc.num_nodes

    def test_out_degrees_cached(self, graph):
        first = graph.out_degrees()
        assert graph.out_degrees() is first

    def test_degree_caches_not_inherited(self, graph):
        graph.in_degrees()
        graph.out_degrees()
        derived = graph.with_edges(graph.src[:10], graph.dst[:10])
        assert derived._degree_cache is None
        assert derived._out_degree_cache is None
        appended = graph.add_edges(np.array([0]), np.array([1]))
        assert appended._degree_cache is None
        assert appended._out_degree_cache is None
        assert int(appended.out_degrees()[0]) == int(graph.out_degrees()[0]) + 1
