"""Tests for COO <-> CSC conversion, including property-based checks."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.coo import COOGraph
from repro.graph.convert import (
    build_pointer_array,
    coo_to_csc,
    csc_to_coo,
    edge_order,
    sorted_coo_arrays,
    validate_conversion,
)


def random_graph(num_nodes, num_edges, seed):
    rng = np.random.default_rng(seed)
    return COOGraph(
        src=rng.integers(0, num_nodes, size=num_edges),
        dst=rng.integers(0, num_nodes, size=num_edges),
        num_nodes=num_nodes,
    )


class TestEdgeOrder:
    def test_sorted_by_dst_then_src(self):
        g = random_graph(20, 100, 0)
        ordered = edge_order(g)
        keys = ordered.dst * 100 + ordered.src
        assert np.all(np.diff(keys) >= 0)

    def test_preserves_edge_multiset(self):
        g = random_graph(10, 50, 1)
        ordered = edge_order(g)
        original = sorted(zip(g.src.tolist(), g.dst.tolist()))
        new = sorted(zip(ordered.src.tolist(), ordered.dst.tolist()))
        assert original == new

    def test_empty_graph(self):
        g = COOGraph(src=np.array([], dtype=int), dst=np.array([], dtype=int), num_nodes=3)
        assert edge_order(g).num_edges == 0


class TestPointerArray:
    def test_known_example(self):
        indptr = build_pointer_array(np.array([0, 0, 1, 3]), 4)
        assert indptr.tolist() == [0, 2, 3, 3, 4]

    def test_empty(self):
        assert build_pointer_array(np.array([], dtype=int), 3).tolist() == [0, 0, 0, 0]

    def test_counts_match_degrees(self):
        g = random_graph(30, 200, 2)
        ordered = edge_order(g)
        indptr = build_pointer_array(ordered.dst, g.num_nodes)
        assert np.array_equal(np.diff(indptr), g.in_degrees())


class TestConversion:
    def test_roundtrip(self):
        g = random_graph(25, 150, 3)
        csc = coo_to_csc(g)
        back = csc_to_coo(csc)
        assert back.num_edges == g.num_edges
        assert sorted(zip(back.src.tolist(), back.dst.tolist())) == sorted(
            zip(g.src.tolist(), g.dst.tolist())
        )

    def test_neighbors_match_bruteforce(self):
        g = random_graph(15, 80, 4)
        csc = coo_to_csc(g)
        for dst in range(g.num_nodes):
            expected = sorted(g.src[g.dst == dst].tolist())
            assert sorted(csc.in_neighbors(dst).tolist()) == expected

    def test_validate_conversion_accepts_reference(self):
        g = random_graph(12, 60, 5)
        assert validate_conversion(g, coo_to_csc(g))

    def test_validate_conversion_rejects_wrong_csc(self):
        g = random_graph(12, 60, 6)
        other = coo_to_csc(random_graph(12, 60, 7))
        assert not validate_conversion(g, other)

    def test_sorted_coo_arrays(self):
        g = random_graph(10, 40, 8)
        src, dst = sorted_coo_arrays(g)
        assert np.all(np.diff(dst) >= 0)
        assert len(src) == g.num_edges

    @given(
        st.integers(1, 60),
        st.integers(0, 300),
        st.integers(0, 1_000_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_conversion_property(self, num_nodes, num_edges, seed):
        g = random_graph(num_nodes, num_edges, seed)
        csc = coo_to_csc(g)
        csc.validate()
        assert csc.num_edges == g.num_edges
        assert int(csc.indptr[-1]) == g.num_edges
        assert np.array_equal(np.diff(csc.indptr), g.in_degrees())
