"""Batch-formation boundary conditions: ``schedule`` vs the array-level plan.

The chunked engine consumes :meth:`BatchScheduler.schedule_arrays` directly
and ``schedule_fast`` is a thin wrapper over it, so a tie-break divergence
from the reference ``schedule`` sweep would silently skew *every* fast-engine
run.  These tests pin the boundaries where such a bug would first appear:
``max_wait_seconds=0`` (the opener-joins-own-batch clamp), duplicated
arrival timestamps, an arrival exactly on a batching deadline (timer fires
first), and a batch filling to the cap on the same tick its deadline
expires.
"""

import numpy as np
import pytest
from conftest import make_profile
from hypothesis import given, settings, strategies as st

from repro.serving import BatchScheduler, InferenceRequest, RequestTrace


def _trace(arrivals, workloads):
    return RequestTrace(
        [
            InferenceRequest(request_id=i, arrival_seconds=t, workload=w)
            for i, (t, w) in enumerate(zip(arrivals, workloads))
        ]
    )


def _assert_same_batches(scheduler, trace):
    reference = scheduler.schedule(trace)
    fast = scheduler.schedule_fast(trace)
    assert len(reference) == len(fast)
    for ref_batch, fast_batch in zip(reference, fast):
        assert ref_batch.ready_seconds == fast_batch.ready_seconds
        assert [r.request_id for r in ref_batch.requests] == [
            r.request_id for r in fast_batch.requests
        ]


class TestBoundaryPins:
    def test_zero_wait_duplicate_arrivals(self):
        """wait=0: each opener closes its own batch; duplicates don't merge."""
        w = make_profile()
        scheduler = BatchScheduler(max_batch_size=4, max_wait_seconds=0.0)
        trace = _trace([0.0, 0.0, 0.0, 1.0, 1.0], [w] * 5)
        _assert_same_batches(scheduler, trace)
        batches = scheduler.schedule_fast(trace)
        assert [len(b) for b in batches] == [1, 1, 1, 1, 1]

    def test_zero_wait_cap_one(self):
        w = make_profile()
        scheduler = BatchScheduler(max_batch_size=1, max_wait_seconds=0.0)
        trace = _trace([0.0, 0.0, 0.5], [w] * 3)
        _assert_same_batches(scheduler, trace)

    def test_arrival_exactly_at_deadline_starts_next_batch(self):
        """The timer fires before a same-instant arrival (left bisection)."""
        w = make_profile()
        scheduler = BatchScheduler(max_batch_size=4, max_wait_seconds=0.005)
        trace = _trace([0.0, 0.003, 0.005, 0.006], [w] * 4)
        _assert_same_batches(scheduler, trace)
        batches = scheduler.schedule_fast(trace)
        assert [len(b) for b in batches] == [2, 2]
        assert batches[0].ready_seconds == 0.005
        assert [r.request_id for r in batches[1].requests] == [2, 3]

    def test_cap_fill_on_deadline_tick(self):
        """Batch reaches the cap by arrivals strictly inside the window."""
        w = make_profile()
        scheduler = BatchScheduler(max_batch_size=3, max_wait_seconds=0.010)
        trace = _trace([0.0, 0.004, 0.008, 0.009], [w] * 4)
        _assert_same_batches(scheduler, trace)
        batches = scheduler.schedule_fast(trace)
        # Cap closes at the filling member's arrival, not the deadline.
        assert batches[0].ready_seconds == 0.008
        assert len(batches[0]) == 3

    def test_cap_equals_boundary_tie(self):
        """Exactly ``cap`` arrivals inside the window: size close wins."""
        w = make_profile()
        scheduler = BatchScheduler(max_batch_size=2, max_wait_seconds=0.005)
        trace = _trace([0.0, 0.002, 0.005, 0.0055], [w] * 4)
        _assert_same_batches(scheduler, trace)
        batches = scheduler.schedule_fast(trace)
        assert batches[0].ready_seconds == 0.002
        assert len(batches[0]) == 2

    def test_duplicate_arrivals_split_across_keys(self):
        a, b = make_profile("a"), make_profile("b", batch_size=7)
        scheduler = BatchScheduler(max_batch_size=2, max_wait_seconds=0.001)
        trace = _trace([0.0, 0.0, 0.0, 0.0], [a, b, a, b])
        _assert_same_batches(scheduler, trace)


class TestBatchPlanStructure:
    def test_plan_rows_consistent(self):
        w = make_profile(batch_size=5)
        scheduler = BatchScheduler(max_batch_size=3, max_wait_seconds=0.002)
        trace = _trace([0.0, 0.0005, 0.001, 0.01, 0.0101], [w] * 5)
        plan = scheduler.schedule_arrays(trace)
        assert plan.num_batches == len(plan.ready_seconds)
        assert plan.batch_offsets[0] == 0
        assert plan.batch_offsets[-1] == len(plan.member_positions)
        # Every trace position appears exactly once across the batches.
        assert sorted(plan.member_positions.tolist()) == list(range(5))
        # Merged size is the member count times the uniform profile size.
        counts = np.diff(plan.batch_offsets)
        assert (plan.merged_sizes == counts * 5).all()
        # Dispatch order is (ready, first member id): ready is sorted.
        ready = plan.ready_seconds
        assert (ready[:-1] <= ready[1:]).all()

    def test_fair_mode_raises(self):
        scheduler = BatchScheduler(
            max_batch_size=2, max_wait_seconds=0.001, tenant_weights={"a": 1.0}
        )
        trace = _trace([0.0], [make_profile()])
        with pytest.raises(ValueError, match="fair"):
            scheduler.schedule_arrays(trace)

    def test_empty_trace_plan(self):
        plan = BatchScheduler(max_batch_size=2).schedule_arrays(RequestTrace([]))
        assert plan.num_batches == 0
        assert len(plan.member_positions) == 0
        assert plan.batch_offsets.tolist() == [0]


class TestTieHeavyFuzz:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        cap=st.integers(min_value=1, max_value=4),
        wait=st.sampled_from([0.0, 0.001, 0.002, 0.01]),
        num_requests=st.integers(min_value=1, max_value=40),
    )
    def test_duplicate_grid_fuzz(self, seed, cap, wait, num_requests):
        """Arrivals on a coarse grid force deadline/arrival/cap collisions."""
        import random

        rng = random.Random(seed)
        profiles = [make_profile("a"), make_profile("b", batch_size=3)]
        arrivals = sorted(rng.choice(range(12)) * 1e-3 for _ in range(num_requests))
        workloads = [rng.choice(profiles) for _ in range(num_requests)]
        scheduler = BatchScheduler(max_batch_size=cap, max_wait_seconds=wait)
        _assert_same_batches(scheduler, _trace(arrivals, workloads))
