"""Tests for the serving layer: requests, batching and the sharded cluster.

Workload/trace/cluster setup shared with the property suites lives in
``conftest.py`` (``make_profile``, ``zero_gap_trace``, the session-scoped
``services`` fixture).
"""

import json

import pytest
from conftest import make_profile as profile, zero_gap_trace

from repro.analysis.metrics import LatencyStats, percentile
from repro.serving import (
    BatchScheduler,
    ClosedLoopArrivals,
    InferenceRequest,
    OpenLoopArrivals,
    POLICY_LOCALITY,
    POLICY_ROUND_ROBIN,
    RequestQueue,
    RequestTrace,
    ShardedServiceCluster,
    build_reference_clusters,
)
from repro.system.service import GNNService, build_reference_systems
from repro.system.workload import WorkloadProfile


# ---------------------------------------------------------------- metrics
class TestLatencyStats:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_percentile_empty_and_single(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_from_samples(self):
        stats = LatencyStats.from_samples([3.0, 1.0, 2.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.p50 == pytest.approx(2.0)
        assert stats.max == 3.0
        assert set(stats.as_dict()) == {"count", "mean", "p50", "p95", "p99", "max"}

    def test_empty_samples(self):
        assert LatencyStats.from_samples([]).count == 0


# ---------------------------------------------------------------- requests
class TestRequestQueue:
    def test_pops_in_arrival_order(self):
        w = profile()
        queue = RequestQueue()
        queue.push(InferenceRequest(1, 2.0, w))
        queue.push(InferenceRequest(0, 1.0, w))
        assert queue.peek_arrival() == 1.0
        assert queue.pop().request_id == 0
        assert queue.pop().request_id == 1
        with pytest.raises(IndexError):
            queue.pop()

    def test_pop_ready_drains_by_time(self):
        w = profile()
        queue = RequestQueue(
            [InferenceRequest(i, float(i), w) for i in range(5)]
        )
        ready = queue.pop_ready(2.5)
        assert [r.request_id for r in ready] == [0, 1, 2]
        assert len(queue) == 2

    def test_simultaneous_arrivals_pop_in_fifo_order(self):
        # Regression: equal timestamps must preserve push (FIFO) order, even
        # when request ids are not pushed in ascending order.
        w = profile()
        queue = RequestQueue()
        for request_id in (5, 1, 3):
            queue.push(InferenceRequest(request_id, 2.0, w))
        queue.push(InferenceRequest(0, 1.0, w))
        assert queue.peek_arrival() == 1.0
        assert [queue.pop().request_id for _ in range(4)] == [0, 5, 1, 3]

    def test_pop_ready_keeps_fifo_order_within_one_timestamp(self):
        w = profile()
        queue = RequestQueue()
        for request_id in (2, 0, 1):
            queue.push(InferenceRequest(request_id, 1.0, w))
        assert [r.request_id for r in queue.pop_ready(1.0)] == [2, 0, 1]

    def test_duplicate_ids_do_not_raise(self):
        # Regression: the heap tiebreaker must never compare the (orderless)
        # request objects themselves, even for identical (time, id) pairs.
        w = profile()
        queue = RequestQueue()
        queue.push(InferenceRequest(7, 1.0, w))
        queue.push(InferenceRequest(7, 1.0, w))
        assert len(queue.pop_ready(1.0)) == 2


class TestArrivals:
    def test_open_loop_deterministic_and_sorted(self):
        mix = [profile("a"), profile("b")]
        gen = OpenLoopArrivals(mix, rate_rps=100.0, seed=3)
        t1, t2 = gen.trace(50), gen.trace(50)
        assert [r.arrival_seconds for r in t1] == [r.arrival_seconds for r in t2]
        arrivals = [r.arrival_seconds for r in t1]
        assert arrivals == sorted(arrivals)
        assert {r.workload.name for r in t1} <= {"a", "b"}

    def test_open_loop_uniform_rate(self):
        trace = OpenLoopArrivals([profile()], rate_rps=200.0, process="uniform").trace(41)
        assert trace.offered_rate_rps == pytest.approx(200.0)

    def test_open_loop_rejects_bad_params(self):
        with pytest.raises(ValueError):
            OpenLoopArrivals([profile()], rate_rps=0.0)
        with pytest.raises(ValueError):
            OpenLoopArrivals([profile()], rate_rps=1.0, process="bursty")
        with pytest.raises(ValueError):
            OpenLoopArrivals([profile()], rate_rps=1.0).trace(0)

    def test_closed_loop_limits_concurrency(self):
        service_time = 0.010
        gen = ClosedLoopArrivals(
            [profile()],
            num_clients=3,
            think_seconds=0.0,
            service_time_fn=lambda w: service_time,
        )
        trace = gen.trace(30)
        # With 3 clients and 10 ms per request, at most 3 requests can share
        # any arrival instant and gaps between waves are the service time.
        arrivals = [r.arrival_seconds for r in trace]
        assert arrivals == sorted(arrivals)
        for wave_start in range(0, 30, 3):
            wave = arrivals[wave_start : wave_start + 3]
            assert max(wave) - min(wave) < 1e-12
        assert arrivals[3] - arrivals[0] == pytest.approx(service_time)


# --------------------------------------------------------------- scheduler
class TestBatchScheduler:
    def test_batch_size_one_is_identity(self):
        trace = OpenLoopArrivals([profile()], rate_rps=50.0).trace(10)
        batches = BatchScheduler(max_batch_size=1).schedule(trace)
        assert len(batches) == 10
        for batch, request in zip(batches, trace):
            assert batch.requests == [request]
            assert batch.ready_seconds == request.arrival_seconds
            assert batch.workload == request.workload

    def test_coalesces_up_to_max_batch_size(self):
        w = profile(batch_size=10)
        trace = zero_gap_trace([w] * 10)
        batches = BatchScheduler(max_batch_size=4, max_wait_seconds=1.0).schedule(trace)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert batches[0].workload.batch_size == 40

    def test_incompatible_keys_never_mix(self):
        trace = zero_gap_trace([profile("a"), profile("b"), profile("a"), profile("b")])
        batches = BatchScheduler(max_batch_size=8, max_wait_seconds=1.0).schedule(trace)
        assert len(batches) == 2
        for batch in batches:
            assert len({r.workload.batch_key for r in batch.requests}) == 1

    def test_timeout_closes_batch(self):
        w = profile()
        trace = RequestTrace(
            [
                InferenceRequest(0, 0.0, w),
                InferenceRequest(1, 0.001, w),
                InferenceRequest(2, 10.0, w),
            ]
        )
        batches = BatchScheduler(max_batch_size=8, max_wait_seconds=0.005).schedule(trace)
        assert [len(b) for b in batches] == [2, 1]
        # The first batch closes at its timeout deadline, not at an arrival.
        assert batches[0].ready_seconds == pytest.approx(0.005)
        assert batches[0].batching_delay(trace[0]) == pytest.approx(0.005)

    def test_ready_times_monotone(self):
        mix = [profile("a"), profile("b"), profile("c")]
        trace = OpenLoopArrivals(mix, rate_rps=300.0, seed=7).trace(60)
        batches = BatchScheduler(max_batch_size=3, max_wait_seconds=0.01).schedule(trace)
        ready = [b.ready_seconds for b in batches]
        assert ready == sorted(ready)
        assert sum(len(b) for b in batches) == 60

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BatchScheduler(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(max_wait_seconds=-1.0)


# ----------------------------------------------------------------- cluster
class TestShardedServiceCluster:
    def test_replicas_are_independent(self, services):
        cluster = ShardedServiceCluster(services["DynPre"], num_shards=2)
        assert cluster.shards[0] is not cluster.shards[1]
        assert cluster.shards[0].preprocessing is not cluster.shards[1].preprocessing
        # Shared immutable library, private mutable reconfiguration state.
        s0, s1 = (shard.preprocessing for shard in cluster.shards)
        assert s0.library is s1.library
        assert s0.reconfig is not s1.reconfig

    def test_replicate_preserves_ablation_names(self):
        from repro.system.variants import make_dyn_ablations

        for name, system in make_dyn_ablations().items():
            assert system.replicate().name == name

    def test_all_seven_systems_replicate(self):
        w = WorkloadProfile.from_dataset("PH")
        for name, system in build_reference_systems().items():
            clone = system.replicate()
            assert clone is not system
            assert clone.name == name
            assert type(clone) is type(system)
            assert clone.evaluate(w).total > 0

    def test_round_robin_cycles(self, services):
        trace = zero_gap_trace([profile()] * 6)
        cluster = ShardedServiceCluster(
            services["CPU"],
            num_shards=3,
            scheduler=BatchScheduler(max_batch_size=1),
            policy=POLICY_ROUND_ROBIN,
        )
        report = cluster.serve_trace(trace)
        assert report.shard_requests == [2, 2, 2]

    def test_locality_pins_workload_to_home_shard(self, services):
        trace = OpenLoopArrivals(
            [profile("a"), profile("b"), profile("c")], rate_rps=100.0, seed=5
        ).trace(30)
        cluster = ShardedServiceCluster(
            services["CPU"],
            num_shards=4,
            scheduler=BatchScheduler(max_batch_size=1),
            policy=POLICY_LOCALITY,
        )
        report = cluster.serve_trace(trace)
        shard_of = {}
        for served in report.served:
            key = served.request.workload.batch_key
            shard_of.setdefault(key, served.shard_id)
            assert served.shard_id == shard_of[key]

    def test_decomposition_sums_to_sojourn(self, services):
        trace = OpenLoopArrivals([profile("a"), profile("b")], rate_rps=400.0, seed=2).trace(24)
        cluster = ShardedServiceCluster(
            services["GPU"],
            num_shards=2,
            scheduler=BatchScheduler(max_batch_size=3, max_wait_seconds=0.004),
        )
        report = cluster.serve_trace(trace)
        assert report.num_requests == 24
        for served in report.served:
            assert served.batching_delay >= 0
            assert served.dispatch_delay >= 0
            assert served.sojourn_seconds == pytest.approx(
                served.batching_delay + served.dispatch_delay + served.service_seconds
            )
            assert served.finish_seconds == pytest.approx(
                served.request.arrival_seconds + served.sojourn_seconds
            )
        decomposition = report.queueing_decomposition
        assert decomposition["batching"] + decomposition["dispatch"] + decomposition[
            "service"
        ] == pytest.approx(report.latency.mean)

    def test_utilization_bounded(self, services):
        trace = OpenLoopArrivals([profile()], rate_rps=1000.0, seed=9).trace(40)
        cluster = ShardedServiceCluster(services["StatPre"], num_shards=3)
        report = cluster.serve_trace(trace)
        assert len(report.shard_utilization) == 3
        for utilization in report.shard_utilization:
            assert 0.0 <= utilization <= 1.0 + 1e-9

    def test_report_is_json_serializable(self, services):
        trace = OpenLoopArrivals([profile()], rate_rps=100.0).trace(8)
        report = ShardedServiceCluster(services["FPGA"], num_shards=2).serve_trace(trace)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["system"] == "FPGA"
        assert payload["num_requests"] == 8
        assert payload["throughput_rps"] > 0

    def test_all_seven_clusters_share_one_trace(self):
        trace = OpenLoopArrivals(
            [WorkloadProfile.from_dataset("PH")], rate_rps=200.0, seed=11
        ).trace(10)
        clusters = build_reference_clusters(
            num_shards=2, scheduler=BatchScheduler(max_batch_size=2, max_wait_seconds=0.01)
        )
        assert set(clusters) == {"CPU", "GPU", "GSamp", "FPGA", "AutoPre", "StatPre", "DynPre"}
        for name, cluster in clusters.items():
            report = cluster.serve_trace(trace)
            assert report.system == name
            assert report.num_requests == 10
            assert report.throughput_rps > 0

    def test_serve_workloads_back_to_back(self, services):
        report = ShardedServiceCluster(services["CPU"], num_shards=2).serve_workloads(
            [profile("a"), profile("b"), profile("a")]
        )
        assert report.num_requests == 3
        assert report.makespan_seconds > 0

    def test_rejects_bad_params(self, services):
        with pytest.raises(ValueError):
            ShardedServiceCluster(services["CPU"], num_shards=0)
        with pytest.raises(ValueError):
            ShardedServiceCluster(services["CPU"], policy="random")
        with pytest.raises(ValueError):
            ShardedServiceCluster(services["CPU"]).serve_trace(RequestTrace([]))


# ------------------------------------------------------------- serve_many
class TestServeManyContract:
    def test_empty_list_raises(self, services):
        with pytest.raises(ValueError, match="non-empty"):
            services["CPU"].serve_many([])

    def test_invalid_mode_fails_fast(self):
        service = GNNService(build_reference_systems()["CPU"])
        service.mode = "turbo"
        with pytest.raises(ValueError):
            service.serve_many([profile()])

    def test_service_replicate_is_fresh(self, services):
        replica = services["DynPre"].replicate()
        assert replica is not services["DynPre"]
        assert replica.preprocessing is not services["DynPre"].preprocessing
        assert replica.mode == services["DynPre"].mode
        assert replica.power.preprocessing_platform == "fpga"
